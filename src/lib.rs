//! # MTC — Mini-Transaction isolation Checking
//!
//! Facade crate re-exporting the whole MTC workspace:
//!
//! * [`history`] — histories, transactions, dependency graphs, the 14-anomaly catalogue;
//! * [`core`] — the mini-transaction verifiers (`CHECKSSER`, `CHECKSER`, `CHECKSI`, `VL-LWT`);
//! * [`workload`] — MT / GT / LWT / Elle-style workload generators;
//! * [`dbsim`] — the in-memory MVCC transactional store used as the system under test;
//! * [`baselines`] — Cobra-, PolySI-, Porcupine- and Elle-style baseline checkers;
//! * [`runner`] — the end-to-end harness (generate → execute → collect → verify → report);
//! * [`store`] — durable history logs, checkpoints and crash recovery;
//! * [`net`] — the framed TCP remote backend (server + pooled client);
//! * [`service`] — the multi-tenant streaming-verification daemon
//!   (`mtc_service_server`) and its client/load-generation library.
//!
//! See `examples/quickstart.rs` for a three-minute tour.

pub use mtc_baselines as baselines;
pub use mtc_core as core;
pub use mtc_dbsim as dbsim;
pub use mtc_history as history;
pub use mtc_net as net;
pub use mtc_runner as runner;
pub use mtc_service as service;
pub use mtc_store as store;
pub use mtc_workload as workload;

// The streaming verification engine, re-exported at the facade root: the
// online checkers share `CheckOptions`/`IsolationLevel` with the batch path.
pub use mtc_core::{
    check_streaming, check_streaming_sharded, CheckOptions, CheckerSnapshot, GcPolicy,
    IncrementalChecker, IncrementalSserChecker, IsolationLevel, ShardedIncrementalChecker,
    StreamStatus,
};
// The unified execution/verification API: one `execute` entry point
// parameterized by `Driver`, and one `LiveVerifier::builder` constructor.
pub use mtc_dbsim::{
    Driver, ExecutionOptions, IngestEvent, LiveOutcome, LiveVerifier, LiveVerifierBuilder,
};
pub use mtc_history::{IncrementalTopo, TimeChain};
pub use mtc_service::{ServiceClient, ServiceConfig, ServiceCore, ServiceServer};
pub use mtc_store::{MtcStore, StreamMeta};
