//! Lightweight-transaction (Compare-And-Set) linearizability checking with
//! `VL-LWT` (Algorithm 2 of the paper), including the two example histories
//! of Figure 4, and a quick comparison against the Porcupine-style search on
//! a larger synthetic history.
//!
//! Run with `cargo run --release --example lwt_linearizability`.

use mtc::baselines::porcupine::porcupine_check_linearizability;
use mtc::core::check_linearizability;
use mtc::history::TimedOp;
use mtc::workload::{generate_lwt_history, LwtHistorySpec};
use std::time::Instant;

fn main() {
    // Figure 4a: linearizable.
    let fig4a = vec![
        TimedOp::insert(0, 0, 0u64, 0u64),
        TimedOp::read_write(3, 6, 0u64, 0u64, 1u64), // O1
        TimedOp::read_write(1, 4, 0u64, 1u64, 2u64), // O2
        TimedOp::read_write(5, 8, 0u64, 2u64, 3u64), // O3
    ];
    println!("Figure 4a: {:?}", check_linearizability(&fig4a).unwrap());

    // Figure 4b: O1 starts only after O2 finished — not linearizable.
    let fig4b = vec![
        TimedOp::insert(0, 0, 0u64, 0u64),
        TimedOp::read_write(6, 9, 0u64, 0u64, 1u64),
        TimedOp::read_write(1, 4, 0u64, 1u64, 2u64),
        TimedOp::read_write(5, 8, 0u64, 2u64, 3u64),
    ];
    match check_linearizability(&fig4b).unwrap() {
        mtc::core::Verdict::Violated(v) => println!("Figure 4b: violated — {v}"),
        ok => println!("Figure 4b: {ok:?}"),
    }

    // A bigger synthetic history: all sessions concurrent.
    let spec = LwtHistorySpec {
        sessions: 12,
        txns_per_session: 60,
        num_keys: 4,
        concurrent_fraction: 1.0,
        inject_violation: false,
        seed: 3,
    };
    let ops = generate_lwt_history(&spec);
    println!(
        "\nsynthetic LWT history: {} operations on 4 objects",
        ops.len()
    );

    let start = Instant::now();
    let vl = check_linearizability(&ops).unwrap();
    let vl_time = start.elapsed();

    let start = Instant::now();
    let porcupine = porcupine_check_linearizability(&ops);
    let porcupine_time = start.elapsed();

    println!("  VL-LWT     : {:?} in {:?}", vl.is_satisfied(), vl_time);
    println!(
        "  Porcupine  : {:?} in {:?} ({} states visited)",
        porcupine.linearizable, porcupine_time, porcupine.states_visited
    );
}
