//! End-to-end checking in the style of the paper's Q2 experiments: the same
//! database is stressed with a mini-transaction workload checked by MTC and a
//! Cobra-style general-transaction workload checked by the polygraph solver,
//! and both stages (history generation and verification) are timed.
//!
//! Run with `cargo run --release --example end_to_end_checking`.

use mtc::dbsim::{ClientOptions, Database, DbConfig, IsolationMode};
use mtc::runner::{end_to_end, Checker};
use mtc::workload::{
    generate_gt_workload, generate_mt_workload, Distribution, GtWorkloadSpec, MtWorkloadSpec,
};

fn main() {
    let sessions = 6;
    let txns_per_session = 150;
    let num_keys = 128;

    let config = DbConfig::correct(IsolationMode::Serializable, num_keys);
    let opts = ClientOptions::default();

    let mt_workload = generate_mt_workload(&MtWorkloadSpec {
        sessions,
        txns_per_session,
        num_keys,
        distribution: Distribution::Zipf { theta: 1.0 },
        read_only_fraction: 0.2,
        two_key_fraction: 0.5,
        seed: 7,
    });
    let gt_workload = generate_gt_workload(&GtWorkloadSpec {
        sessions,
        txns_per_session,
        ops_per_txn: 16,
        num_keys,
        distribution: Distribution::Zipf { theta: 1.0 },
        read_only_fraction: 0.2,
        write_only_fraction: 0.4,
        seed: 7,
    });

    println!("isolation level under test: serializability\n");

    let mtc = end_to_end(
        &Database::new(config.clone()),
        &mt_workload,
        &opts,
        Checker::MtcSer,
    );
    println!(
        "MTC with MT workload ({} transactions):",
        mt_workload.txn_count()
    );
    println!("  history generation : {:?}", mtc.generation);
    println!("  verification       : {:?}", mtc.verification);
    println!("  abort rate         : {:.1}%", 100.0 * mtc.abort_rate);
    println!("  violation reported : {}", mtc.violated);

    let cobra = end_to_end(
        &Database::new(config),
        &gt_workload,
        &opts,
        Checker::CobraSer,
    );
    println!(
        "\nCobra-style checking with GT workload ({} transactions, 16 ops each):",
        gt_workload.txn_count()
    );
    println!("  history generation : {:?}", cobra.generation);
    println!("  verification       : {:?}", cobra.verification);
    println!("  abort rate         : {:.1}%", 100.0 * cobra.abort_rate);
    println!("  violation reported : {}", cobra.violated);

    let speedup = cobra.total().as_secs_f64() / mtc.total().as_secs_f64().max(1e-9);
    println!("\nend-to-end speedup of MTC over the Cobra-style pipeline: {speedup:.1}x");
}
