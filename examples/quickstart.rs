//! Quickstart: the whole MTC pipeline in one page.
//!
//! 1. generate a mini-transaction workload,
//! 2. execute it against the simulated database (claiming serializability),
//! 3. collect the unified history,
//! 4. verify it with the three MTC checkers,
//! 5. do the same against a deliberately buggy database and look at the
//!    counterexample MTC reports.
//!
//! Run with `cargo run --release --example quickstart`.

use mtc::core::{check_ser, check_si, check_sser};
use mtc::dbsim::{Database, DbConfig, ExecutionOptions, FaultKind, FaultSpec, IsolationMode};
use mtc::workload::{generate_mt_workload, Distribution, MtWorkloadSpec};

fn main() {
    // ── 1. A mini-transaction workload: 4 sessions × 200 MTs over 32 keys. ──
    let spec = MtWorkloadSpec {
        sessions: 4,
        txns_per_session: 200,
        num_keys: 32,
        distribution: Distribution::Zipf { theta: 1.0 },
        read_only_fraction: 0.2,
        two_key_fraction: 0.5,
        seed: 42,
    };
    let workload = generate_mt_workload(&spec);
    println!(
        "generated {} mini-transactions ({} operations) across {} sessions",
        workload.txn_count(),
        workload.op_count(),
        workload.sessions.len()
    );

    // ── 2–3. Execute against a correct serializable store. ──────────────────
    let db = Database::new(DbConfig::correct(
        IsolationMode::Serializable,
        spec.num_keys,
    ));
    let (history, report) = ExecutionOptions::threaded().run(&db, &workload);
    println!(
        "executed: {} committed, {} aborted attempts, abort rate {:.1}%, {:?}",
        report.committed,
        report.aborted_attempts,
        100.0 * report.abort_rate(),
        report.wall_time
    );

    // ── 4. Verify. All three strong levels should hold. ─────────────────────
    println!("SSER: {:?}", check_sser(&history).unwrap());
    println!("SER:  {:?}", check_ser(&history).unwrap());
    println!("SI:   {:?}", check_si(&history).unwrap());

    // ── 5. Now a store that occasionally loses first-committer-wins. ────────
    let buggy = Database::new(
        DbConfig::correct(IsolationMode::Snapshot, spec.num_keys)
            .with_latency(
                std::time::Duration::from_micros(100),
                std::time::Duration::from_micros(50),
            )
            .with_faults(vec![FaultSpec::new(FaultKind::SkipWriteValidation, 0.2)], 7),
    );
    let (history, _) = ExecutionOptions::threaded().run(&buggy, &workload);
    match check_si(&history).unwrap() {
        mtc::core::Verdict::Satisfied => {
            println!("buggy store: no SI violation surfaced in this run (try another seed)")
        }
        mtc::core::Verdict::Violated(violation) => {
            println!("buggy store: SI violated!\n  counterexample: {violation}")
        }
    }
}
