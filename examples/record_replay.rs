//! Durable histories end to end: record, crash, resume, replay.
//!
//! ```text
//! cargo run --example record_replay
//! ```
//!
//! 1. **Record** — a fault-injected workload runs under the live verifier
//!    with a write-ahead store attached: every transaction hits the log
//!    before the checker, and the checker is checkpointed periodically.
//! 2. **Crash** — the process "dies" (we drop the verifier without
//!    finishing it and tear the log tail, as a kill mid-write would).
//! 3. **Resume** — recovery loads the newest intact checkpoint and replays
//!    the logged tail: same verdict as the uninterrupted run, in a
//!    fraction of the work.
//! 4. **Replay** — the logged session is re-checked offline with a
//!    completely different checker (batch MTC-SI), long after the
//!    "database" is gone.

use mtc::dbsim::{Database, DbConfig, FaultKind, FaultSpec, IsolationMode};
use mtc::runner::{replay_verify, resume_verification, Checker};
use mtc::store::{MtcStore, StreamMeta};
use mtc::workload::{generate_mt_workload, Distribution, MtWorkloadSpec};
use mtc::{ExecutionOptions, GcPolicy, IsolationLevel, LiveVerifier};
use std::time::Duration;

fn main() {
    let dir = std::env::temp_dir().join(format!("mtc_record_replay_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // ── 1. record ───────────────────────────────────────────────────────
    let spec = MtWorkloadSpec {
        sessions: 4,
        txns_per_session: 400,
        num_keys: 8,
        distribution: Distribution::Uniform,
        read_only_fraction: 0.2,
        two_key_fraction: 0.5,
        seed: 7,
    };
    let workload = generate_mt_workload(&spec);
    let config = DbConfig::correct(IsolationMode::Snapshot, spec.num_keys)
        .with_latency(Duration::from_micros(150), Duration::from_micros(80))
        .with_faults(
            vec![FaultSpec::new(FaultKind::SkipWriteValidation, 0.004)],
            3,
        );
    let level = IsolationLevel::SnapshotIsolation;
    let store = MtcStore::create(
        &dir,
        &StreamMeta {
            level,
            num_keys: spec.num_keys,
        },
    )
    .expect("fresh store");
    let verifier = LiveVerifier::builder(level, spec.num_keys)
        .store(store, 128) // checkpoint every 128 recorded txns
        .gc(GcPolicy {
            window: 4096,
            every: 1024,
            reader_cap: 0,
        }) // bounded resident state for long runs
        .build();
    let db = Database::new(config);
    let (_, report) = ExecutionOptions::threaded()
        .verifier(&verifier)
        .run(&db, &workload);
    println!(
        "recorded {} committed transactions into {}",
        report.committed,
        dir.display()
    );

    // ── 2. crash ────────────────────────────────────────────────────────
    drop(verifier); // no finish(), no final checkpoint: the "kill"
    if let Some(seg) = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".mtclog"))
        .max_by_key(|e| e.file_name())
    {
        // A torn half-frame, as a crash mid-write leaves behind.
        let path = seg.path();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0x33, 0x00, 0x00, 0x00, 0xbe]);
        std::fs::write(&path, bytes).unwrap();
    }
    println!("crashed: verifier dropped mid-session, log tail torn");

    // ── 3. resume ───────────────────────────────────────────────────────
    let resumed = resume_verification(&dir).expect("recovery");
    println!(
        "resumed from log index {} ({} logged txns, checkpoint used: {}, torn tail: {})",
        resumed.resumed_from, resumed.logged_txns, resumed.from_checkpoint, resumed.torn_tail
    );
    match &resumed.verdict {
        Ok(v) if v.is_satisfied() => println!("resumed verdict: satisfied"),
        Ok(v) => println!(
            "resumed verdict: VIOLATED — {}",
            v.violation().map(|x| x.to_string()).unwrap_or_default()
        ),
        Err(e) => println!("resumed verdict: not applicable ({e})"),
    }

    // ── 4. replay offline ───────────────────────────────────────────────
    let replayed = replay_verify(&dir, Checker::MtcSi).expect("replay");
    println!(
        "offline replay with {}: violated = {} ({:?})",
        Checker::MtcSi.label(),
        replayed.violated,
        replayed.duration
    );
    assert_eq!(
        replayed.violated,
        matches!(&resumed.verdict, Ok(v) if v.is_violated()),
        "resume and offline replay must agree"
    );

    let _ = std::fs::remove_dir_all(&dir);
    println!("record → crash → resume → replay: done");
}
