//! The Appendix-C artefact: reducing boolean satisfiability to isolation
//! checking of mini-transaction histories *without* unique values.
//!
//! The reduction shows why the unique-value convention matters: with it the
//! verifiers of `mtc-core` run in linear time; without it, deciding SI (or
//! SER, or SSER) is NP-complete.
//!
//! Run with `cargo run --release --example npc_reduction`.

use mtc::core::npc::{reduce_to_history, Cnf};

fn main() {
    // (x1 ∨ ¬x2) ∧ (x2 ∨ x3) ∧ (¬x1 ∨ ¬x3)
    let satisfiable = Cnf::from_clauses(3, &[&[1, -2], &[2, 3], &[-1, -3]]);
    // x1 ∧ ¬x1
    let unsatisfiable = Cnf::from_clauses(1, &[&[1], &[-1]]);

    for (name, cnf) in [
        ("satisfiable φ", &satisfiable),
        ("unsatisfiable φ", &unsatisfiable),
    ] {
        println!("── {name} ───────────────────────────────────────────");
        println!(
            "  variables: {}, clauses: {}, literal occurrences: {}",
            cnf.num_vars,
            cnf.clauses.len(),
            cnf.literal_count()
        );
        match cnf.is_satisfiable() {
            Some(model) => println!("  brute-force SAT: satisfiable, model = {model:?}"),
            None => println!("  brute-force SAT: unsatisfiable"),
        }
        let h = reduce_to_history(cnf);
        println!(
            "  reduced history h_φ: {} mini-transactions, {} session-order pairs",
            h.len(),
            h.so_pairs.len()
        );
        println!(
            "  duplicate values present (uniqueness intentionally violated): {}",
            h.has_duplicate_values()
        );
        println!("  => φ is satisfiable  ⇔  h_φ satisfies snapshot isolation (Theorem 8)\n");
    }

    println!(
        "The gadget history is linear in |φ| ({} transactions per variable, {} per literal),\n\
         so the reduction is polynomial — deciding SI on histories without unique values is\n\
         therefore NP-complete, which is why MTC insists on unique written values.",
        2, 3
    );
}
