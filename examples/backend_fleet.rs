//! The backend fleet in action — and the "writing your own backend" recipe.
//!
//! Runs one MT workload against every in-tree engine (the OCC simulator at
//! three isolation modes, the strict-2PL wait-die engine, the weak MVCC
//! engine at ReadCommitted and ReadUncommitted) plus a custom backend
//! implemented right here in ~50 lines, then prints which checkers flag
//! which engine. No fault injection anywhere: every violation below is an
//! organic product of the engine's concurrency control.
//!
//! ```text
//! cargo run --release --example backend_fleet
//! ```

use mtc::core::{check_ser, check_si, check_sser, IsolationLevel};
use mtc::dbsim::{AbortReason, BackendSpec, CommitInfo, DbBackend, DbTxn, ExecutionOptions};
use mtc::history::{Key, Value, INIT_VALUE};
use mtc::workload::{generate_mt_workload, Distribution, MtWorkloadSpec};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

// ───────────────────── a custom backend in ~50 lines ────────────────────────
//
// The recipe: (1) an engine type implementing `DbBackend` (must be `Sync`;
// `begin` hands out boxed transaction handles, `promises` declares which
// isolation levels fault-free runs guarantee), and (2) a handle type
// implementing `DbTxn` (handles must be `Send` — the async driver may poll
// them from different worker threads; reads/writes may fail with an
// `AbortReason`; `commit` returns the commit instant). This one holds a
// single global lock for the whole transaction — fully serial execution,
// so it promises everything, at the cost of zero concurrency. The lock is
// an atomic flag rather than a held `MutexGuard` precisely because guards
// are not `Send`; the handle's `Drop` releases it exactly once, whichever
// of commit/abort/drop ends the transaction.

struct GlobalLockDb {
    clock: AtomicU64,
    busy: AtomicBool,
    state: Mutex<HashMap<Key, Value>>,
}

struct GlobalLockTxn<'db> {
    db: &'db GlobalLockDb,
    begin_ts: u64,
}

impl Drop for GlobalLockTxn<'_> {
    fn drop(&mut self) {
        self.db.busy.store(false, Ordering::Release);
    }
}

impl DbBackend for GlobalLockDb {
    fn begin(&self) -> Box<dyn DbTxn + '_> {
        // The trick that makes it serial: the whole-engine flag is held by
        // the handle from begin until its Drop.
        while self
            .busy
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::thread::yield_now();
        }
        Box::new(GlobalLockTxn {
            begin_ts: self.clock.fetch_add(1, Ordering::SeqCst),
            db: self,
        })
    }
    fn now(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }
    fn label(&self) -> &'static str {
        "global-lock"
    }
    fn promises(&self, _level: IsolationLevel) -> bool {
        true // serial execution is strictly serializable
    }
}

impl<'db> DbTxn for GlobalLockTxn<'db> {
    fn begin_ts(&self) -> u64 {
        self.begin_ts
    }
    fn read_register(&mut self, key: Key) -> Result<Value, AbortReason> {
        let state = self.db.state.lock().unwrap();
        Ok(*state.get(&key).unwrap_or(&INIT_VALUE))
    }
    fn write_register(&mut self, key: Key, value: Value) -> Result<(), AbortReason> {
        self.db.state.lock().unwrap().insert(key, value);
        Ok(())
    }
    fn read_list(&mut self, _key: Key) -> Result<Vec<Value>, AbortReason> {
        Ok(Vec::new()) // registers only, for brevity
    }
    fn append(&mut self, _key: Key, _element: Value) -> Result<(), AbortReason> {
        Ok(())
    }
    fn commit(self: Box<Self>) -> Result<CommitInfo, AbortReason> {
        Ok(CommitInfo {
            commit_ts: self.db.clock.fetch_add(1, Ordering::SeqCst),
        })
    }
    fn abort(self: Box<Self>) -> AbortReason {
        AbortReason::UserAbort
    }
}

// ─────────────────────────── the fleet run ──────────────────────────────────

fn main() {
    let spec = MtWorkloadSpec {
        sessions: 4,
        txns_per_session: 100,
        num_keys: 8,
        distribution: Distribution::Uniform,
        read_only_fraction: 0.2,
        two_key_fraction: 0.5,
        seed: 0xF1EE7,
    };
    let workload = generate_mt_workload(&spec);
    println!(
        "workload: {} sessions × {} txns over {} keys\n",
        spec.sessions, spec.txns_per_session, spec.num_keys
    );
    println!(
        "{:<12} {:>9} {:>10}   {:>4} {:>4} {:>4}",
        "backend", "committed", "abort-rate", "SI", "SER", "SSER"
    );

    // (label, blocks-on-other-transactions?, engine). The in-tree specs
    // already know their blocking-ness; the custom engine declares its own
    // (it parks every other `begin` on the global mutex).
    let mut fleet: Vec<(String, bool, Box<dyn DbBackend>)> = BackendSpec::fleet(spec.num_keys)
        .into_iter()
        .map(|s| (s.label().to_string(), s.blocking(), s.build()))
        .collect();
    fleet.push((
        "global-lock".to_string(),
        true,
        Box::new(GlobalLockDb {
            clock: AtomicU64::new(1),
            busy: AtomicBool::new(false),
            state: Mutex::new(HashMap::new()),
        }),
    ));

    for (label, blocking, db) in &fleet {
        // Zero-latency engines barely overlap under free-running threads, so
        // the non-blocking ones run under the deterministic op-by-op
        // interleaved driver instead — real concurrency, reproducible
        // schedule. The locking engines (2PL wait-die, the global-lock
        // example) would deadlock a single-threaded interleaver, so they
        // keep one thread per session.
        let blocking = *blocking;
        let (history, report) = if blocking {
            ExecutionOptions::threaded().run(db.as_ref(), &workload)
        } else {
            ExecutionOptions::interleaved(0xD1CE).run(db.as_ref(), &workload)
        };
        let flag = |v: bool| if v { "✗" } else { "ok" };
        let si = check_si(&history).unwrap().is_violated();
        let ser = check_ser(&history).unwrap().is_violated();
        let sser = check_sser(&history).unwrap().is_violated();
        println!(
            "{label:<12} {:>9} {:>9.1}%   {:>4} {:>4} {:>4}",
            report.committed,
            100.0 * report.abort_rate(),
            flag(si),
            flag(ser),
            flag(sser),
        );
        // A backend must never be flagged at a level it promises.
        for (level, violated) in [
            (IsolationLevel::SnapshotIsolation, si),
            (IsolationLevel::Serializability, ser),
            (IsolationLevel::StrictSerializability, sser),
        ] {
            assert!(
                !(db.promises(level) && violated),
                "{label} violated its promised {level}"
            );
        }
    }
    println!(
        "\nany ✗ above is an organic anomaly (no fault injection in this \
         example) — the weak MVCC rows are expected to collect them."
    );
}
