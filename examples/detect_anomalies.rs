//! Walks the 14-anomaly catalogue of Figure 5 / Table I: prints each
//! anomaly's witness history, which isolation levels it violates, and the
//! counterexample MTC reports.
//!
//! Run with `cargo run --release --example detect_anomalies`.

use mtc::core::{check_ser, check_si, check_sser, Verdict};
use mtc::history::anomalies::AnomalyKind;

fn verdict_mark(v: &Verdict) -> &'static str {
    if v.is_violated() {
        "violated"
    } else {
        "ok"
    }
}

fn main() {
    println!("{:<28} {:>9} {:>9} {:>9}", "anomaly", "SSER", "SER", "SI");
    println!("{}", "-".repeat(60));
    for kind in AnomalyKind::ALL {
        let history = kind.history();
        let sser = check_sser(&history).unwrap();
        let ser = check_ser(&history).unwrap();
        let si = check_si(&history).unwrap();
        println!(
            "{:<28} {:>9} {:>9} {:>9}",
            kind.to_string(),
            verdict_mark(&sser),
            verdict_mark(&ser),
            verdict_mark(&si)
        );
    }

    println!("\n── details ──────────────────────────────────────────────────");
    for kind in [
        AnomalyKind::LostUpdate,
        AnomalyKind::WriteSkew,
        AnomalyKind::LongFork,
        AnomalyKind::CausalityViolation,
    ] {
        let history = kind.history();
        println!("\n{kind}: {}", kind.description());
        for txn in history.txns() {
            println!("  {txn:?}");
        }
        match check_ser(&history).unwrap() {
            Verdict::Violated(violation) => println!("  SER counterexample: {violation}"),
            Verdict::Satisfied => println!("  serializable"),
        }
        match check_si(&history).unwrap() {
            Verdict::Violated(violation) => println!("  SI  counterexample: {violation}"),
            Verdict::Satisfied => println!("  allowed under snapshot isolation"),
        }
    }
}
