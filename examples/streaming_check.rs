//! Online checking: verify the simulated database *while* it executes.
//!
//! Two ways to use the streaming engine are shown:
//!
//! 1. the high-level path — [`LiveVerifier`] plugged into
//!    `execute_workload_live`, with `stop_on_violation` so a buggy database
//!    run ends at the first violation instead of at the end of the workload;
//! 2. the low-level path — driving an [`IncrementalChecker`] by hand,
//!    transaction by transaction, and watching it latch;
//! 3. the strict-serializability path — an [`IncrementalSserChecker`]
//!    catching a commit-timestamp-skew bug that SER cannot see.
//!
//! Run with `cargo run --release --example streaming_check`.

use mtc::core::{IncrementalChecker, IncrementalSserChecker, IsolationLevel, StreamStatus};
use mtc::dbsim::{
    Database, DbConfig, ExecutionOptions, FaultKind, FaultSpec, IsolationMode, LiveVerifier,
};
use mtc::history::Op;
use mtc::workload::{generate_mt_workload, Distribution, MtWorkloadSpec};
use std::time::Duration;

fn main() {
    // ── 0. What geometry did the autotuner pick for this machine? ──
    let tuning = mtc::core::tune();
    println!(
        "autotuned sharded-checker geometry: {} shard(s), hand-off batches of {}",
        tuning.shards, tuning.batch
    );

    // ── 1. Live verification of a buggy snapshot-isolation database. ──
    let spec = MtWorkloadSpec {
        sessions: 4,
        txns_per_session: 200,
        num_keys: 4,
        distribution: Distribution::Zipf { theta: 1.0 },
        read_only_fraction: 0.2,
        two_key_fraction: 0.5,
        seed: 7,
    };
    let workload = generate_mt_workload(&spec);

    // The store promises SI but skips first-committer-wins 60% of the time:
    // the classic lost-update bug.
    let config = DbConfig::correct(IsolationMode::Snapshot, spec.num_keys)
        .with_latency(Duration::from_micros(200), Duration::from_micros(100))
        .with_faults(vec![FaultSpec::new(FaultKind::SkipWriteValidation, 0.6)], 7);
    let db = Database::new(config);

    let verifier = LiveVerifier::builder(IsolationLevel::SnapshotIsolation, spec.num_keys)
        .stop_on_violation(true)
        .build();
    let (_, report) = ExecutionOptions::threaded()
        .verifier(&verifier)
        .run(&db, &workload);
    let outcome = verifier.finish();

    println!("── live verification of a buggy SI store ──");
    println!(
        "executed {} transactions ({} attempts) in {:?}",
        report.committed, report.attempts, report.wall_time
    );
    match (&outcome.verdict, &outcome.first_violation) {
        (Ok(verdict), Some(first)) => {
            println!(
                "violation latched after {} transactions ({:?} into the run):",
                first.at_txn, first.elapsed
            );
            if let Some(v) = verdict.violation() {
                println!("  {v}");
            }
            println!(
                "the workload had {} transactions — the tail was never executed",
                workload.txn_count()
            );
        }
        (Ok(_), None) => println!("no violation found (try a different seed)"),
        (Err(e), _) => println!("history left the checker's domain: {e}"),
    }

    // ── 2. Driving the incremental checker by hand. ──
    println!("\n── hand-fed incremental checker (write skew) ──");
    let mut checker = IncrementalChecker::new_ser().with_init_keys(0..2u64);
    let steps: Vec<(u32, Vec<Op>)> = vec![
        // T1 reads both accounts, withdraws from the first.
        (
            0,
            vec![
                Op::read(0u64, 0u64),
                Op::read(1u64, 0u64),
                Op::write(0u64, 10u64),
            ],
        ),
        // T2 concurrently reads both accounts, withdraws from the second.
        (
            1,
            vec![
                Op::read(0u64, 0u64),
                Op::read(1u64, 0u64),
                Op::write(1u64, 20u64),
            ],
        ),
    ];
    for (i, (session, ops)) in steps.into_iter().enumerate() {
        let status = checker.push_committed(session, ops).unwrap();
        println!(
            "after transaction {}: {}",
            i + 1,
            match status {
                StreamStatus::ConsistentSoFar => "consistent so far".to_string(),
                StreamStatus::Violated =>
                    format!("VIOLATED — {}", checker.violation().expect("latched")),
            }
        );
    }
    let verdict = checker.finish().unwrap();
    assert!(verdict.is_violated(), "write skew must be rejected");

    // ── 3. Online strict serializability: a stale read after commit. ──
    // T1 = [10, 20] installs x = 1; T2 = [30, 40] begins after T1's commit
    // was acknowledged yet still reads the initial value. SER admits the
    // serial order T2, T1 — real time does not.
    println!("\n── hand-fed SSER checker (stale read after commit) ──");
    let mut sser = IncrementalSserChecker::new().with_init_keys(0..1u64);
    sser.push_committed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)], 10, 20)
        .unwrap();
    let status = sser
        .push_committed(1, vec![Op::read(0u64, 0u64)], 30, 40)
        .unwrap();
    println!(
        "after the stale read: {}",
        match status {
            StreamStatus::ConsistentSoFar => "consistent so far".to_string(),
            StreamStatus::Violated => format!("VIOLATED — {}", sser.violation().expect("latched")),
        }
    );
    let verdict = sser.finish().unwrap();
    assert!(
        verdict.is_violated(),
        "stale read after commit must be rejected"
    );
}
