//! Integration tests of the streaming verification engine through the
//! facade: live-verified dbsim runs, facade re-exports, and agreement of the
//! streaming checkers with the batch ones on executed (not synthetic)
//! histories — including the strict-serializability mode with real commit
//! timestamps from the simulated store.

use mtc::core::{check_ser, check_si, check_sser};
use mtc::dbsim::{
    ClientOptions, Database, DbConfig, ExecutionOptions, FaultKind, FaultSpec, IsolationMode,
};
use mtc::history::{HistoryBuilder, Op};
use mtc::runner::{end_to_end_streaming, verify, Checker};
use mtc::workload::{generate_mt_workload, Distribution, MtWorkloadSpec};
// The streaming types are re-exported at the facade root.
use mtc::{
    check_streaming, check_streaming_sharded, CheckOptions, IncrementalSserChecker, IsolationLevel,
    LiveVerifier, StreamStatus,
};

fn mt_spec(seed: u64, num_keys: u64) -> MtWorkloadSpec {
    MtWorkloadSpec {
        sessions: 4,
        txns_per_session: 60,
        num_keys,
        distribution: Distribution::Zipf { theta: 1.0 },
        read_only_fraction: 0.2,
        two_key_fraction: 0.5,
        seed,
    }
}

#[test]
fn streaming_checkers_agree_with_batch_on_executed_histories() {
    for seed in 0..3u64 {
        let spec = mt_spec(seed, 12);
        let workload = generate_mt_workload(&spec);
        let db = Database::new(DbConfig::correct(
            IsolationMode::Serializable,
            spec.num_keys,
        ));
        let (history, _) = ExecutionOptions::threaded().run(&db, &workload);

        let batch_ser = check_ser(&history).unwrap();
        let batch_si = check_si(&history).unwrap();
        let inc_ser = check_streaming(IsolationLevel::Serializability, &history).unwrap();
        let inc_si = check_streaming(IsolationLevel::SnapshotIsolation, &history).unwrap();
        let shard_ser =
            check_streaming_sharded(IsolationLevel::Serializability, &history, 4, 64).unwrap();
        assert_eq!(
            batch_ser.is_violated(),
            inc_ser.is_violated(),
            "seed {seed}"
        );
        assert_eq!(batch_si.is_violated(), inc_si.is_violated(), "seed {seed}");
        assert_eq!(inc_ser, shard_ser, "seed {seed}");
    }
}

#[test]
fn live_verifier_catches_the_fault_before_the_run_ends() {
    let spec = mt_spec(7, 4);
    let workload = generate_mt_workload(&spec);
    let total = workload.txn_count();
    let config = DbConfig::correct(IsolationMode::Snapshot, spec.num_keys)
        .with_latency(
            std::time::Duration::from_micros(200),
            std::time::Duration::from_micros(100),
        )
        .with_faults(vec![FaultSpec::new(FaultKind::SkipWriteValidation, 0.6)], 7);
    let db = Database::new(config);
    let verifier = LiveVerifier::builder(IsolationLevel::SnapshotIsolation, spec.num_keys)
        .stop_on_violation(true)
        .build();
    let (_, _) = ExecutionOptions::threaded()
        .verifier(&verifier)
        .run(&db, &workload);
    let outcome = verifier.finish();
    assert!(outcome.verdict.unwrap().is_violated());
    let first = outcome.first_violation.expect("latched mid-run");
    // Early exit: the violation is latched before the tail of the workload
    // is consumed (time-to-first-violation < full history length).
    assert!(
        first.at_txn < total && outcome.checked_txns < total,
        "latched at {} after checking {} of {} transactions",
        first.at_txn,
        outcome.checked_txns,
        total
    );
}

#[test]
fn runner_streaming_mode_reports_time_to_first_violation() {
    let spec = mt_spec(11, 4);
    let workload = generate_mt_workload(&spec);
    let config = DbConfig::correct(IsolationMode::Snapshot, spec.num_keys)
        .with_latency(
            std::time::Duration::from_micros(200),
            std::time::Duration::from_micros(100),
        )
        .with_faults(
            vec![FaultSpec::new(FaultKind::SkipWriteValidation, 0.6)],
            11,
        );
    let out = end_to_end_streaming(
        &Database::new(config),
        &workload,
        &ClientOptions::default(),
        IsolationLevel::SnapshotIsolation,
        true,
    );
    assert!(out.violated, "{}", out.detail);
    assert!(out.time_to_first_violation.unwrap() <= out.wall_time);
}

#[test]
fn incremental_runner_checkers_are_wired() {
    let spec = mt_spec(3, 16);
    let workload = generate_mt_workload(&spec);
    let db = Database::new(DbConfig::correct(
        IsolationMode::Serializable,
        spec.num_keys,
    ));
    let (history, _) = ExecutionOptions::threaded().run(&db, &workload);
    for checker in [
        Checker::MtcSerIncremental,
        Checker::MtcSiIncremental,
        Checker::MtcSerSharded,
        Checker::MtcSiSharded,
    ] {
        let out = verify(checker, &history);
        assert!(!out.violated, "{}: {}", checker.label(), out.detail);
    }
}

#[test]
fn streaming_sser_agrees_with_batch_on_executed_histories() {
    // Clean serializable executions carry honest commit timestamps: batch
    // CHECKSSER and the streaming time-chain checker must both accept, and
    // the sharded verdict must equal the sequential one exactly.
    for seed in 0..3u64 {
        let spec = mt_spec(seed, 12);
        let workload = generate_mt_workload(&spec);
        let db = Database::new(DbConfig::correct(
            IsolationMode::Serializable,
            spec.num_keys,
        ));
        let (history, _) = ExecutionOptions::threaded().run(&db, &workload);
        let batch = check_sser(&history).unwrap();
        let streaming = check_streaming(IsolationLevel::StrictSerializability, &history).unwrap();
        assert_eq!(batch.is_violated(), streaming.is_violated(), "seed {seed}");
        assert!(batch.is_satisfied(), "seed {seed}: {batch:?}");
        let sharded =
            check_streaming_sharded(IsolationLevel::StrictSerializability, &history, 4, 64)
                .unwrap();
        assert_eq!(streaming, sharded, "seed {seed}");
    }
}

#[test]
fn sser_stop_on_violation_truncates_the_run() {
    // Commit-timestamp skew violates only the real-time order; with
    // stop_on_violation the SSER live verifier must end the run early.
    let spec = mt_spec(13, 4);
    let workload = generate_mt_workload(&spec);
    let total = workload.txn_count();
    let config = DbConfig::correct(IsolationMode::Serializable, spec.num_keys)
        .with_latency(
            std::time::Duration::from_micros(200),
            std::time::Duration::from_micros(100),
        )
        .with_faults(
            vec![FaultSpec::new(FaultKind::CommitTimestampSkew, 0.4)],
            13,
        );
    let db = Database::new(config);
    let verifier = LiveVerifier::builder(IsolationLevel::StrictSerializability, spec.num_keys)
        .stop_on_violation(true)
        .build();
    let (_, _) = ExecutionOptions::threaded()
        .verifier(&verifier)
        .run(&db, &workload);
    let outcome = verifier.finish();
    assert!(outcome.verdict.unwrap().is_violated());
    let first = outcome.first_violation.expect("latched mid-run");
    // Truncation property: once the violation latches, each session may at
    // most finish the template it is currently retrying — consumption must
    // stop within that in-flight bound of the latch point. (`checked_txns`
    // counts *attempts* including aborted retries, so comparing it against
    // the template total would be meaningless under contention.)
    let in_flight_bound = (spec.sessions * (ClientOptions::default().max_retries + 1)) as usize;
    assert!(
        first.at_txn <= outcome.checked_txns
            && outcome.checked_txns <= first.at_txn + in_flight_bound,
        "stop-on-violation must truncate: latched at {} but consumed {} \
         (bound {}, {} templates total)",
        first.at_txn,
        outcome.checked_txns,
        first.at_txn + in_flight_bound,
        total
    );
}

#[test]
fn sser_first_violation_is_no_later_than_batch_prefix_detection() {
    // Time-to-first-violation monotonicity: feeding one transaction at a
    // time, the streaming checker latches at the *shortest* prefix the batch
    // checker would reject — never later.
    let mut b = HistoryBuilder::new().with_init(2);
    // A clean warm-up prefix ...
    b.committed_timed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)], 10, 20);
    b.committed_timed(1, vec![Op::read(0u64, 1u64), Op::write(0u64, 2u64)], 30, 40);
    b.committed_timed(0, vec![Op::read(1u64, 0u64), Op::write(1u64, 3u64)], 50, 60);
    // ... then a stale read after commit (reads x = 1 long after x = 2
    // committed and every earlier writer finished) ...
    b.committed_timed(2, vec![Op::read(0u64, 1u64)], 70, 80);
    // ... and a clean tail that must never be needed.
    b.committed_timed(1, vec![Op::read(1u64, 3u64), Op::write(1u64, 4u64)], 90, 95);
    b.committed_timed(2, vec![Op::read(0u64, 2u64)], 100, 110);
    let history = b.build();

    // Smallest violating prefix according to the batch checker.
    let user: Vec<_> = history
        .txns()
        .iter()
        .filter(|t| Some(t.id) != history.init_txn())
        .collect();
    let mut batch_first = None;
    for j in 1..=user.len() {
        let mut pb = HistoryBuilder::new().with_init(2);
        for t in &user[..j] {
            pb.push_timed(
                t.session.0,
                t.ops.clone(),
                t.status,
                t.begin.unwrap(),
                t.end.unwrap(),
            );
        }
        if check_sser(&pb.build()).unwrap().is_violated() {
            batch_first = Some(j);
            break;
        }
    }
    let batch_first = batch_first.expect("the crafted history must violate SSER");
    assert_eq!(batch_first, 4, "the stale read is the fourth transaction");

    // The streaming checker must latch at exactly that prefix.
    let mut checker = IncrementalSserChecker::new().with_init_keys(0..2u64);
    let mut streaming_first = None;
    for (i, t) in user.iter().enumerate() {
        let status = checker.push((*t).clone()).unwrap();
        if status == StreamStatus::Violated && streaming_first.is_none() {
            streaming_first = Some(i + 1);
        }
    }
    let streaming_first = streaming_first.expect("streaming must latch");
    assert!(
        streaming_first <= batch_first,
        "streaming latched at prefix {streaming_first}, batch already rejects at {batch_first}"
    );
    assert_eq!(streaming_first, batch_first);
    // The j-th user transaction carries id j (⊥T is id 0).
    assert_eq!(
        checker.first_violation_at().map(|t| t.index()),
        Some(batch_first)
    );
}

#[test]
fn sser_runner_checkers_are_wired() {
    let spec = mt_spec(3, 16);
    let workload = generate_mt_workload(&spec);
    let db = Database::new(DbConfig::correct(
        IsolationMode::Serializable,
        spec.num_keys,
    ));
    let (history, _) = ExecutionOptions::threaded().run(&db, &workload);
    for checker in [Checker::MtcSserIncremental, Checker::MtcSserSharded] {
        let out = verify(checker, &history);
        assert!(!out.violated, "{}: {}", checker.label(), out.detail);
    }
    // And with an injected skew the runner's streaming SSER mode reports
    // time-to-first-violation while stopping early.
    let config = DbConfig::correct(IsolationMode::Serializable, spec.num_keys)
        .with_latency(
            std::time::Duration::from_micros(200),
            std::time::Duration::from_micros(100),
        )
        .with_faults(
            vec![FaultSpec::new(FaultKind::CommitTimestampSkew, 0.4)],
            29,
        );
    let out = end_to_end_streaming(
        &Database::new(config),
        &workload,
        &ClientOptions::default(),
        IsolationLevel::StrictSerializability,
        true,
    );
    assert!(out.violated, "{}", out.detail);
    assert!(out.time_to_first_violation.unwrap() <= out.wall_time);
}

#[test]
fn default_options_are_shared_between_batch_and_streaming() {
    // One `CheckOptions` type, one `Default`: the streaming checkers start
    // from exactly the options the batch checkers use.
    let opts = CheckOptions::default();
    assert!(opts.validate_mt && opts.prescan_intra);
    assert!(!opts.reference_build && !opts.skip_divergence_early_exit);
    let checker = mtc::IncrementalChecker::new(IsolationLevel::Serializability);
    assert_eq!(*checker.options(), opts);
}
