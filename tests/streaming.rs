//! Integration tests of the streaming verification engine through the
//! facade: live-verified dbsim runs, facade re-exports, and agreement of the
//! streaming checkers with the batch ones on executed (not synthetic)
//! histories.

use mtc::core::{check_ser, check_si};
use mtc::dbsim::{ClientOptions, Database, DbConfig, FaultKind, FaultSpec, IsolationMode};
use mtc::runner::{end_to_end_streaming, verify, Checker};
use mtc::workload::{generate_mt_workload, Distribution, MtWorkloadSpec};
// The streaming types are re-exported at the facade root.
use mtc::{check_streaming, check_streaming_sharded, CheckOptions, IsolationLevel, LiveVerifier};

fn mt_spec(seed: u64, num_keys: u64) -> MtWorkloadSpec {
    MtWorkloadSpec {
        sessions: 4,
        txns_per_session: 60,
        num_keys,
        distribution: Distribution::Zipf { theta: 1.0 },
        read_only_fraction: 0.2,
        two_key_fraction: 0.5,
        seed,
    }
}

#[test]
fn streaming_checkers_agree_with_batch_on_executed_histories() {
    for seed in 0..3u64 {
        let spec = mt_spec(seed, 12);
        let workload = generate_mt_workload(&spec);
        let db = Database::new(DbConfig::correct(
            IsolationMode::Serializable,
            spec.num_keys,
        ));
        let (history, _) = mtc::dbsim::execute_workload(&db, &workload, &ClientOptions::default());

        let batch_ser = check_ser(&history).unwrap();
        let batch_si = check_si(&history).unwrap();
        let inc_ser = check_streaming(IsolationLevel::Serializability, &history).unwrap();
        let inc_si = check_streaming(IsolationLevel::SnapshotIsolation, &history).unwrap();
        let shard_ser =
            check_streaming_sharded(IsolationLevel::Serializability, &history, 4, 64).unwrap();
        assert_eq!(
            batch_ser.is_violated(),
            inc_ser.is_violated(),
            "seed {seed}"
        );
        assert_eq!(batch_si.is_violated(), inc_si.is_violated(), "seed {seed}");
        assert_eq!(inc_ser, shard_ser, "seed {seed}");
    }
}

#[test]
fn live_verifier_catches_the_fault_before_the_run_ends() {
    let spec = mt_spec(7, 4);
    let workload = generate_mt_workload(&spec);
    let total = workload.txn_count();
    let config = DbConfig::correct(IsolationMode::Snapshot, spec.num_keys)
        .with_latency(
            std::time::Duration::from_micros(200),
            std::time::Duration::from_micros(100),
        )
        .with_faults(vec![FaultSpec::new(FaultKind::SkipWriteValidation, 0.6)], 7);
    let db = Database::new(config);
    let verifier = LiveVerifier::new(IsolationLevel::SnapshotIsolation, spec.num_keys, true);
    let (_, _) =
        mtc::dbsim::execute_workload_live(&db, &workload, &ClientOptions::default(), &verifier);
    let outcome = verifier.finish();
    assert!(outcome.verdict.unwrap().is_violated());
    let first = outcome.first_violation.expect("latched mid-run");
    // Early exit: the violation is latched before the tail of the workload
    // is consumed (time-to-first-violation < full history length).
    assert!(
        first.at_txn < total && outcome.checked_txns < total,
        "latched at {} after checking {} of {} transactions",
        first.at_txn,
        outcome.checked_txns,
        total
    );
}

#[test]
fn runner_streaming_mode_reports_time_to_first_violation() {
    let spec = mt_spec(11, 4);
    let workload = generate_mt_workload(&spec);
    let config = DbConfig::correct(IsolationMode::Snapshot, spec.num_keys)
        .with_latency(
            std::time::Duration::from_micros(200),
            std::time::Duration::from_micros(100),
        )
        .with_faults(
            vec![FaultSpec::new(FaultKind::SkipWriteValidation, 0.6)],
            11,
        );
    let out = end_to_end_streaming(
        &config,
        &workload,
        &ClientOptions::default(),
        IsolationLevel::SnapshotIsolation,
        true,
    );
    assert!(out.violated, "{}", out.detail);
    assert!(out.time_to_first_violation.unwrap() <= out.wall_time);
}

#[test]
fn incremental_runner_checkers_are_wired() {
    let spec = mt_spec(3, 16);
    let workload = generate_mt_workload(&spec);
    let db = Database::new(DbConfig::correct(
        IsolationMode::Serializable,
        spec.num_keys,
    ));
    let (history, _) = mtc::dbsim::execute_workload(&db, &workload, &ClientOptions::default());
    for checker in [
        Checker::MtcSerIncremental,
        Checker::MtcSiIncremental,
        Checker::MtcSerSharded,
        Checker::MtcSiSharded,
    ] {
        let out = verify(checker, &history);
        assert!(!out.violated, "{}: {}", checker.label(), out.detail);
    }
}

#[test]
fn default_options_are_shared_between_batch_and_streaming() {
    // One `CheckOptions` type, one `Default`: the streaming checkers start
    // from exactly the options the batch checkers use.
    let opts = CheckOptions::default();
    assert!(opts.validate_mt && opts.prescan_intra);
    assert!(!opts.reference_build && !opts.skip_divergence_early_exit);
    let checker = mtc::IncrementalChecker::new(IsolationLevel::Serializability);
    assert_eq!(*checker.options(), opts);
}
