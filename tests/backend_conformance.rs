//! Cross-backend conformance: every engine in the fleet is held to exactly
//! what it promises — **with the fault-injection layer never touched**.
//!
//! * Backends that promise an isolation level must produce histories the
//!   matching checker accepts, under arbitrary concurrent workloads
//!   (proptest). The strict-2PL engine promises everything up to SSER and
//!   must therefore be organically clean under every checker, batch,
//!   incremental and sharded alike.
//! * The weak MVCC engine promises none of the checkable levels, and its
//!   anomalies must arise from its concurrency control alone: deterministic
//!   interleavings reproduce a lost update, a read skew, a write skew and an
//!   aborted (dirty) read, each caught at exactly the levels the engine does
//!   not promise — the write skew in particular passes SI and fails SER,
//!   nailing the boundary.
//! * Streaming verdicts must agree with batch verdicts on every collected
//!   history, and the sequential and sharded streaming checkers must be
//!   bit-identical (full [`Verdict`] equality, certificates included).

use mtc::core::{
    check_ser, check_si, check_sser, check_streaming, check_streaming_sharded, IsolationLevel,
    Verdict,
};
use mtc::dbsim::{
    BackendSpec, DbBackend, DbTxn, ExecutionOptions, TwoPlDatabase, WeakLevel, WeakMvccDatabase,
};
use mtc::history::{History, HistoryBuilder, Key, Op, TxnStatus, Value};
use mtc::workload::{generate_mt_workload, Distribution, MtWorkloadSpec};
use proptest::prelude::*;

const LEVELS: [IsolationLevel; 3] = [
    IsolationLevel::SnapshotIsolation,
    IsolationLevel::Serializability,
    IsolationLevel::StrictSerializability,
];

fn batch_check(level: IsolationLevel, history: &History) -> Verdict {
    match level {
        IsolationLevel::SnapshotIsolation => check_si(history),
        IsolationLevel::Serializability => check_ser(history),
        IsolationLevel::StrictSerializability => check_sser(history),
    }
    .expect("collected histories are inside the checkers' domain")
}

/// The conformance core: per level, the backend's promise must hold under
/// the batch checker, the sequential and sharded streaming verdicts must be
/// bit-identical, and streaming must agree with batch on the violation bit.
fn assert_conformant(label: &str, backend: &dyn DbBackend, history: &History) {
    for level in LEVELS {
        let batch = batch_check(level, history);
        let streaming = check_streaming(level, history).unwrap();
        let sharded = check_streaming_sharded(level, history, 3, 16).unwrap();
        assert_eq!(
            streaming, sharded,
            "{label}/{level}: sequential and sharded streaming verdicts must be bit-identical"
        );
        assert_eq!(
            batch.is_violated(),
            streaming.is_violated(),
            "{label}/{level}: streaming disagrees with batch\n batch: {batch:?}\n streaming: {streaming:?}"
        );
        if backend.promises(level) {
            assert!(
                batch.is_satisfied(),
                "{label} promised {level} but was caught: {}",
                batch.violation().unwrap()
            );
        }
    }
}

fn mt_spec(sessions: u32, txns: u32, keys: u64, seed: u64) -> MtWorkloadSpec {
    MtWorkloadSpec {
        sessions,
        txns_per_session: txns,
        num_keys: keys,
        distribution: Distribution::Uniform,
        read_only_fraction: 0.2,
        two_key_fraction: 0.5,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary concurrent workloads against the whole fleet: promises
    /// hold, streaming == batch, sequential streaming == sharded streaming.
    #[test]
    fn fleet_conformance_under_concurrent_workloads(
        sessions in 2u32..5,
        txns in 10u32..40,
        keys in 2u64..12,
        seed in 0u64..1000,
    ) {
        let workload = generate_mt_workload(&mt_spec(sessions, txns, keys, seed));
        for spec in BackendSpec::fleet(keys) {
            let db = spec.build();
            let (history, report) = ExecutionOptions::threaded().run(db.as_ref(), &workload);
            prop_assert!(report.committed > 0, "{}: nothing committed", spec.label());
            assert_conformant(spec.label(), db.as_ref(), &history);
        }
    }

    /// The 2PL engine under deliberately hot contention (tiny key space):
    /// wait-die may abort plenty, but every collected history must be
    /// organically strictly serializable — zero violations, zero faults.
    #[test]
    fn twopl_is_organically_strictly_serializable_under_contention(
        sessions in 2u32..6,
        txns in 20u32..60,
        seed in 0u64..1000,
    ) {
        let workload = generate_mt_workload(&mt_spec(sessions, txns, 3, seed));
        let db = TwoPlDatabase::new();
        let (history, report) = ExecutionOptions::threaded().run(&db, &workload);
        prop_assert!(report.committed > 0);
        prop_assert_eq!(db.locked_key_count(), 0, "locks must all be released");
        for level in LEVELS {
            let verdict = batch_check(level, &history);
            prop_assert!(
                verdict.is_satisfied(),
                "2PL caught at {}: {}",
                level,
                verdict.violation().unwrap()
            );
            let streaming = check_streaming(level, &history).unwrap();
            let sharded = check_streaming_sharded(level, &history, 4, 8).unwrap();
            prop_assert_eq!(&streaming, &sharded);
            prop_assert!(streaming.is_satisfied());
        }
    }

    /// Deterministic interleavings of the weak engines: whatever the
    /// schedule produces, streaming and batch verdicts stay in lockstep and
    /// nothing is ever (wrongly) attributed to a promised level.
    #[test]
    fn weak_engines_streaming_matches_batch_on_interleaved_schedules(
        schedule_seed in 0u64..5000,
        wl_seed in 0u64..1000,
        level in prop::sample::select(vec![WeakLevel::ReadCommitted, WeakLevel::ReadUncommitted]),
    ) {
        let workload = generate_mt_workload(&mt_spec(3, 25, 2, wl_seed));
        let db = WeakMvccDatabase::new(level);
        let (history, _) = ExecutionOptions::interleaved(schedule_seed).run(&db, &workload);
        assert_conformant(level.label(), &db, &history);
    }
}

// ───────────────── deterministic organic anomalies ──────────────────────────
//
// Hand-driven schedules against the weak MVCC engine. No fault layer, no
// threads, no randomness: the anomalies below are produced by the engine's
// concurrency control and nothing else, and each is caught at exactly the
// isolation levels the engine does not promise.

/// Begins a transaction through the trait surface (boxed handle), which is
/// what the hand-driven schedules below interleave.
fn begin<'a>(db: &'a dyn DbBackend) -> Box<dyn DbTxn + 'a> {
    db.begin()
}

/// Records one hand-driven committed transaction into the builder.
fn commit_recorded(
    builder: &mut HistoryBuilder,
    session: u32,
    handle: Box<dyn DbTxn + '_>,
    ops: Vec<Op>,
    begin: u64,
) {
    let info = handle.commit().expect("the weak engine never rejects");
    builder.push_timed(session, ops, TxnStatus::Committed, begin, info.commit_ts);
}

fn read(handle: &mut dyn DbTxn, ops: &mut Vec<Op>, key: u64) -> Value {
    let v = handle.read_register(Key(key)).unwrap();
    ops.push(Op::read(key, v));
    v
}

fn write(handle: &mut dyn DbTxn, ops: &mut Vec<Op>, key: u64, value: u64) {
    handle.write_register(Key(key), Value(value)).unwrap();
    ops.push(Op::write(key, value));
}

/// Lost update: both transactions read the initial version of the same key
/// and both commit a write — possible only because ReadCommitted skips
/// first-committer-wins. Violates SI (DIVERGENCE), SER and SSER.
#[test]
fn weak_rc_produces_an_organic_lost_update() {
    let db = WeakMvccDatabase::new(WeakLevel::ReadCommitted);
    let mut builder = HistoryBuilder::new().with_init(1);

    let mut t1 = begin(&db);
    let b1 = t1.begin_ts();
    let mut t2 = begin(&db);
    let b2 = t2.begin_ts();
    let (mut ops1, mut ops2) = (Vec::new(), Vec::new());
    assert_eq!(read(t1.as_mut(), &mut ops1, 0), Value(0));
    assert_eq!(read(t2.as_mut(), &mut ops2, 0), Value(0));
    write(t1.as_mut(), &mut ops1, 0, 101);
    write(t2.as_mut(), &mut ops2, 0, 202);
    commit_recorded(&mut builder, 0, t1, ops1, b1);
    commit_recorded(&mut builder, 1, t2, ops2, b2);

    let history = builder.build();
    for level in LEVELS {
        let batch = batch_check(level, &history);
        assert!(
            batch.is_violated(),
            "the lost update must be caught at {level}"
        );
        let streaming = check_streaming(level, &history).unwrap();
        assert!(streaming.is_violated(), "{level}: streaming must agree");
        assert_eq!(
            streaming,
            check_streaming_sharded(level, &history, 2, 4).unwrap(),
            "{level}: sequential and sharded streaming must be bit-identical"
        );
    }
}

/// Write skew: each transaction reads both keys and updates a different
/// one. SI *accepts* this history (it is the canonical SI-legal anomaly);
/// SER and SSER reject it — caught at exactly the levels beyond what the
/// engine provides, and nowhere below.
#[test]
fn weak_rc_produces_an_organic_write_skew_caught_exactly_above_si() {
    let db = WeakMvccDatabase::new(WeakLevel::ReadCommitted);
    let mut builder = HistoryBuilder::new().with_init(2);

    let mut t1 = begin(&db);
    let b1 = t1.begin_ts();
    let mut t2 = begin(&db);
    let b2 = t2.begin_ts();
    let (mut ops1, mut ops2) = (Vec::new(), Vec::new());
    read(t1.as_mut(), &mut ops1, 0);
    read(t1.as_mut(), &mut ops1, 1);
    read(t2.as_mut(), &mut ops2, 0);
    read(t2.as_mut(), &mut ops2, 1);
    write(t1.as_mut(), &mut ops1, 0, 111);
    write(t2.as_mut(), &mut ops2, 1, 222);
    commit_recorded(&mut builder, 0, t1, ops1, b1);
    commit_recorded(&mut builder, 1, t2, ops2, b2);

    let history = builder.build();
    let si = batch_check(IsolationLevel::SnapshotIsolation, &history);
    assert!(
        si.is_satisfied(),
        "write skew is SI-legal; flagging it would be a false positive: {si:?}"
    );
    for level in [
        IsolationLevel::Serializability,
        IsolationLevel::StrictSerializability,
    ] {
        let batch = batch_check(level, &history);
        assert!(batch.is_violated(), "write skew must be caught at {level}");
        let streaming = check_streaming(level, &history).unwrap();
        assert!(streaming.is_violated(), "{level}: streaming must agree");
        assert_eq!(
            streaming,
            check_streaming_sharded(level, &history, 2, 4).unwrap()
        );
    }
}

/// Read skew (non-repeatable snapshot): a reader observes key 0 before and
/// key 1 after a concurrent committed update of both — ReadCommitted has no
/// snapshot to offer. Caught at SI, SER and SSER.
#[test]
fn weak_rc_produces_an_organic_read_skew() {
    let db = WeakMvccDatabase::new(WeakLevel::ReadCommitted);
    let mut builder = HistoryBuilder::new().with_init(2);

    let mut reader = begin(&db);
    let br = reader.begin_ts();
    let mut ops_r = Vec::new();
    assert_eq!(read(reader.as_mut(), &mut ops_r, 0), Value(0));

    let mut writer = begin(&db);
    let bw = writer.begin_ts();
    let mut ops_w = Vec::new();
    read(writer.as_mut(), &mut ops_w, 0);
    write(writer.as_mut(), &mut ops_w, 0, 301);
    read(writer.as_mut(), &mut ops_w, 1);
    write(writer.as_mut(), &mut ops_w, 1, 302);
    commit_recorded(&mut builder, 1, writer, ops_w, bw);

    // The reader's second read now sees the writer's committed value.
    assert_eq!(read(reader.as_mut(), &mut ops_r, 1), Value(302));
    commit_recorded(&mut builder, 0, reader, ops_r, br);

    let history = builder.build();
    for level in LEVELS {
        let batch = batch_check(level, &history);
        assert!(batch.is_violated(), "read skew must be caught at {level}");
        let streaming = check_streaming(level, &history).unwrap();
        assert!(streaming.is_violated(), "{level}: streaming must agree");
        assert_eq!(
            streaming,
            check_streaming_sharded(level, &history, 2, 4).unwrap()
        );
    }
}

/// Aborted read: ReadUncommitted publishes a write before commit, a second
/// transaction reads it, and the writer then rolls back (an ordinary client
/// rollback — not a fault). The committed reader observed a value no
/// committed transaction ever wrote: caught at every level.
#[test]
fn weak_ru_produces_an_organic_aborted_read() {
    let db = WeakMvccDatabase::new(WeakLevel::ReadUncommitted);
    let mut builder = HistoryBuilder::new().with_init(1);

    let mut writer = begin(&db);
    let bw = writer.begin_ts();
    let mut ops_w = Vec::new();
    read(writer.as_mut(), &mut ops_w, 0);
    write(writer.as_mut(), &mut ops_w, 0, 401);

    let mut reader = begin(&db);
    let br = reader.begin_ts();
    let mut ops_r = Vec::new();
    assert_eq!(
        read(reader.as_mut(), &mut ops_r, 0),
        Value(401),
        "RU must expose the dirty write"
    );
    commit_recorded(&mut builder, 1, reader, ops_r, br);

    // The writer rolls back; its published version is withdrawn.
    let aborted_at = mtc::dbsim::DbBackend::now(&db);
    writer.abort();
    builder.push_timed(0, ops_w, TxnStatus::Aborted, bw, aborted_at);

    let history = builder.build();
    for level in LEVELS {
        let batch = batch_check(level, &history);
        assert!(
            batch.is_violated(),
            "the aborted read must be caught at {level}"
        );
        let streaming = check_streaming(level, &history).unwrap();
        assert!(streaming.is_violated(), "{level}: streaming must agree");
        assert_eq!(
            streaming,
            check_streaming_sharded(level, &history, 2, 4).unwrap()
        );
    }
}

/// The interleaved driver surfaces the RC engine's organic anomalies from a
/// plain generated workload within a handful of deterministic schedules —
/// no hand-crafted ops, no faults.
#[test]
fn weak_rc_interleaved_workloads_surface_organic_violations() {
    let workload = generate_mt_workload(&mt_spec(3, 30, 2, 0xC0FFEE));
    let mut caught_si = false;
    let mut caught_ser = false;
    for schedule_seed in 0..32u64 {
        let db = WeakMvccDatabase::new(WeakLevel::ReadCommitted);
        let (history, _) = ExecutionOptions::interleaved(schedule_seed).run(&db, &workload);
        caught_si |= batch_check(IsolationLevel::SnapshotIsolation, &history).is_violated();
        caught_ser |= batch_check(IsolationLevel::Serializability, &history).is_violated();
        if caught_si && caught_ser {
            break;
        }
    }
    assert!(
        caught_si && caught_ser,
        "32 deterministic schedules over a 2-key workload must organically \
         produce SI and SER violations (caught_si={caught_si}, caught_ser={caught_ser})"
    );
}

/// Wait-die is visible at the client: a younger transaction conflicting
/// with an older holder dies with `Deadlock`, and the driver's retry path
/// turns that into progress — the conformance run completes with every
/// template eventually committed or cleanly failed.
#[test]
fn twopl_wait_die_aborts_surface_and_histories_stay_clean() {
    use mtc::dbsim::AbortReason;
    let db = TwoPlDatabase::new();
    let mut older = db.begin();
    older.write_register(Key(0), Value(1)).unwrap();
    let mut younger = db.begin();
    assert_eq!(
        younger.write_register(Key(0), Value(2)),
        Err(AbortReason::Deadlock)
    );
    drop(younger);
    drop(older);

    // And end-to-end: a contended threaded run stays organically clean.
    let workload = generate_mt_workload(&mt_spec(4, 40, 2, 7));
    let db = TwoPlDatabase::new();
    let (history, report) = ExecutionOptions::threaded().run(&db, &workload);
    assert!(report.committed > 0);
    for level in LEVELS {
        assert!(batch_check(level, &history).is_satisfied());
    }
}
