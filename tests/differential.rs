//! Property-based differential testing: MTC's linear-time verifiers must
//! agree with the definition-level brute-force checker and with the
//! baseline solvers on randomly generated small histories — both valid ones
//! (sampled from a random serial execution) and corrupted ones.

use mtc::baselines::{brute_check_ser, brute_check_si, cobra_check_ser, polysi_check_si};
use mtc::core::{check_ser, check_si, CheckOptions};
use mtc::history::{History, HistoryBuilder, Op};
use proptest::prelude::*;

/// A randomly chosen mini-transaction "shape" over up to `keys` objects.
#[derive(Debug, Clone, Copy)]
enum Shape {
    ReadOne,
    ReadTwo,
    Rmw,
    DoubleRmw,
    WriteSkewHalf,
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    prop_oneof![
        Just(Shape::ReadOne),
        Just(Shape::ReadTwo),
        Just(Shape::Rmw),
        Just(Shape::DoubleRmw),
        Just(Shape::WriteSkewHalf),
    ]
}

/// Builds a *valid* history by executing randomly shaped mini-transactions
/// serially (each sees the latest committed state), assigned round-robin to
/// sessions. Such histories satisfy SSER, SER and SI by construction.
fn serial_history(shapes: &[(Shape, u64, u64)], keys: u64, sessions: u32) -> History {
    let keys = keys.max(2);
    let mut state = vec![0u64; keys as usize];
    let mut next_value = 1u64;
    let mut builder = HistoryBuilder::new().with_init(keys);
    for (i, &(shape, k1, k2)) in shapes.iter().enumerate() {
        let a = (k1 % keys) as usize;
        let b = (k2 % keys) as usize;
        let b = if a == b { (a + 1) % keys as usize } else { b };
        let session = (i as u32) % sessions;
        let mut ops = Vec::new();
        match shape {
            Shape::ReadOne => ops.push(Op::read(a as u64, state[a])),
            Shape::ReadTwo => {
                ops.push(Op::read(a as u64, state[a]));
                ops.push(Op::read(b as u64, state[b]));
            }
            Shape::Rmw => {
                ops.push(Op::read(a as u64, state[a]));
                ops.push(Op::write(a as u64, next_value));
                state[a] = next_value;
                next_value += 1;
            }
            Shape::DoubleRmw => {
                ops.push(Op::read(a as u64, state[a]));
                ops.push(Op::write(a as u64, next_value));
                state[a] = next_value;
                next_value += 1;
                ops.push(Op::read(b as u64, state[b]));
                ops.push(Op::write(b as u64, next_value));
                state[b] = next_value;
                next_value += 1;
            }
            Shape::WriteSkewHalf => {
                ops.push(Op::read(a as u64, state[a]));
                ops.push(Op::read(b as u64, state[b]));
                ops.push(Op::write(a as u64, next_value));
                state[a] = next_value;
                next_value += 1;
            }
        }
        builder.committed_timed(session, ops, 10 * i as u64 + 1, 10 * i as u64 + 5);
    }
    builder.build()
}

/// Corrupts a valid history by rewriting one read to return an older (stale)
/// value of its key, possibly introducing an isolation violation (but not
/// necessarily — staleness of a pure read can still be serializable).
fn corrupt(history: &History, txn_pick: usize, stale: u64) -> History {
    let mut builder = HistoryBuilder::new().with_init(history.keys().len() as u64);
    let user_txns: Vec<_> = history
        .txns()
        .iter()
        .filter(|t| Some(t.id) != history.init_txn())
        .collect();
    let target = txn_pick % user_txns.len().max(1);
    for (i, t) in user_txns.iter().enumerate() {
        let mut ops = t.ops.clone();
        if i == target {
            if let Some(Op::Read { value, .. }) = ops.first_mut() {
                // Point the read at an older value of the same key: value 0
                // (the initial value) or an arbitrary smaller unique value.
                *value = mtc::history::Value(stale % value.raw().max(1));
            }
        }
        builder.committed_timed(t.session.0, ops, t.begin.unwrap_or(1), t.end.unwrap_or(2));
    }
    builder.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn valid_serial_histories_are_accepted_by_every_checker(
        shapes in prop::collection::vec((shape_strategy(), 0u64..6, 0u64..6), 1..24),
        keys in 2u64..6,
        sessions in 1u32..4,
    ) {
        let history = serial_history(&shapes, keys, sessions);
        prop_assert!(check_ser(&history).unwrap().is_satisfied());
        prop_assert!(check_si(&history).unwrap().is_satisfied());
        prop_assert!(cobra_check_ser(&history).satisfied);
        prop_assert!(polysi_check_si(&history).satisfied);
        prop_assert!(brute_check_ser(&history));
        prop_assert!(brute_check_si(&history));
    }

    #[test]
    fn mtc_agrees_with_ground_truth_on_corrupted_histories(
        shapes in prop::collection::vec((shape_strategy(), 0u64..4, 0u64..4), 2..6),
        pick in 0usize..8,
        stale in 0u64..3,
    ) {
        // Two keys keep the brute-force ground truth within its budget even
        // when it has to exhaust every version order of a violating history.
        let keys = 2u64;
        let valid = serial_history(&shapes, keys, 2);
        let corrupted = corrupt(&valid, pick, stale);
        // Skip corrupted histories that are no longer well-formed inputs
        // (e.g. thin-air reads make every checker reject them trivially, which
        // is also agreement — so no skipping is actually needed for verdicts).
        let mtc_ser = check_ser(&corrupted).unwrap().is_satisfied();
        let mtc_si = check_si(&corrupted).unwrap().is_satisfied();
        prop_assert_eq!(mtc_ser, brute_check_ser(&corrupted), "SER mismatch");
        prop_assert_eq!(mtc_si, brute_check_si(&corrupted), "SI mismatch");
        let cobra = cobra_check_ser(&corrupted);
        if !cobra.timed_out {
            prop_assert_eq!(mtc_ser, cobra.satisfied, "Cobra mismatch");
        }
        let polysi = polysi_check_si(&corrupted);
        if !polysi.timed_out {
            prop_assert_eq!(mtc_si, polysi.satisfied, "PolySI mismatch");
        }
    }

    #[test]
    fn reference_and_optimized_builds_agree(
        shapes in prop::collection::vec((shape_strategy(), 0u64..5, 0u64..5), 1..16),
        keys in 2u64..5,
    ) {
        let history = serial_history(&shapes, keys, 3);
        let reference = CheckOptions { reference_build: true, ..CheckOptions::default() };
        prop_assert_eq!(
            mtc::core::check_ser_with(&history, &reference).unwrap().is_satisfied(),
            check_ser(&history).unwrap().is_satisfied()
        );
        prop_assert_eq!(
            mtc::core::check_si_with(&history, &reference).unwrap().is_satisfied(),
            check_si(&history).unwrap().is_satisfied()
        );
    }
}
