//! Integration tests for the lightweight-transaction path (VL-LWT vs the
//! Porcupine-style baseline) and for the Elle-style pipeline on the simulated
//! store.

use mtc::baselines::elle::{elle_check_list_append, ElleLevel};
use mtc::baselines::porcupine_check_linearizability;
use mtc::core::check_linearizability;
use mtc::dbsim::{ClientOptions, Database, DbConfig, FaultKind, FaultSpec, IsolationMode};
use mtc::runner::{run_elle_append_workload, run_elle_register_workload, verify, Checker};
use mtc::workload::{
    generate_elle_workload, generate_lwt_history, ElleWorkloadKind, ElleWorkloadSpec,
    LwtHistorySpec,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// VL-LWT and the Porcupine-style checker agree on synthetic LWT
    /// histories, valid or injected-invalid, across concurrency levels.
    #[test]
    fn vl_lwt_agrees_with_porcupine(
        sessions in 2u32..6,
        txns in 5u32..25,
        keys in 1u64..4,
        concurrency in 0.0f64..1.0,
        inject in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let spec = LwtHistorySpec {
            sessions,
            txns_per_session: txns,
            num_keys: keys,
            concurrent_fraction: concurrency,
            inject_violation: inject,
            seed,
        };
        let ops = generate_lwt_history(&spec);
        let vl = check_linearizability(&ops).unwrap();
        let porcupine = porcupine_check_linearizability(&ops);
        prop_assume!(!porcupine.timed_out);
        prop_assert_eq!(vl.is_satisfied(), porcupine.linearizable);
        if inject {
            prop_assert!(vl.is_violated());
        } else {
            prop_assert!(vl.is_satisfied());
        }
    }
}

#[test]
fn elle_append_pipeline_on_a_correct_store_is_clean() {
    let spec = ElleWorkloadSpec {
        kind: ElleWorkloadKind::ListAppend,
        sessions: 4,
        txns_per_session: 60,
        max_txn_len: 4,
        num_keys: 6,
        ..ElleWorkloadSpec::default()
    };
    let workload = generate_elle_workload(&spec);
    let config = DbConfig::correct(IsolationMode::Serializable, 0);
    let (history, report) =
        run_elle_append_workload(&Database::new(config), &workload, &ClientOptions::default());
    assert!(report.committed > 0);
    let out = elle_check_list_append(&history, ElleLevel::Serializability);
    assert!(out.satisfied, "{:?}", out.anomalies);
}

#[test]
fn elle_append_pipeline_detects_injected_lost_updates() {
    // A single hot list plus frequent reads maximizes the chance that some
    // read observes a version that a conflicting (validation-skipping) append
    // later overwrites, which is what Elle's order inference flags.
    let spec = ElleWorkloadSpec {
        kind: ElleWorkloadKind::ListAppend,
        sessions: 4,
        txns_per_session: 150,
        max_txn_len: 4,
        num_keys: 1,
        ..ElleWorkloadSpec::default()
    };
    let workload = generate_elle_workload(&spec);
    let config = DbConfig::correct(IsolationMode::Snapshot, 0)
        .with_latency(
            std::time::Duration::from_micros(200),
            std::time::Duration::from_micros(100),
        )
        .with_faults(vec![FaultSpec::new(FaultKind::SkipWriteValidation, 0.8)], 3);
    let (history, _) =
        run_elle_append_workload(&Database::new(config), &workload, &ClientOptions::default());
    let out = elle_check_list_append(&history, ElleLevel::SnapshotIsolation);
    assert!(
        !out.satisfied,
        "the list-append checker should observe the forked version order"
    );
}

#[test]
fn elle_register_pipeline_on_a_correct_store_is_clean() {
    let spec = ElleWorkloadSpec {
        kind: ElleWorkloadKind::ReadWriteRegister,
        sessions: 4,
        txns_per_session: 40,
        max_txn_len: 6,
        num_keys: 8,
        ..ElleWorkloadSpec::default()
    };
    let workload = generate_elle_workload(&spec);
    let config = DbConfig::correct(IsolationMode::Serializable, 8);
    let (history, report) =
        run_elle_register_workload(&Database::new(config), &workload, &ClientOptions::default());
    assert!(report.committed > 0);
    let out = verify(Checker::ElleRwSer, &history);
    // Blind-write register histories are the NP-hard case: the constraint
    // search runs under a decision budget, and an unlucky thread schedule
    // can produce a history hard enough to exhaust it. A solver give-up is
    // not a violation of the store — only a *completed* search that found a
    // counterexample may fail this test.
    assert!(
        !out.violated || out.detail.contains("TIMEOUT"),
        "{}",
        out.detail
    );
}
