//! Integration test: the full black-box pipeline of Figure 2 — workload
//! generation, execution against the simulated database, history collection,
//! and verification — for correct and fault-injected databases.

use mtc::baselines::{cobra_check_ser, polysi_check_si};
use mtc::core::{check_ser, check_si, check_sser};
use mtc::dbsim::{Database, DbConfig, ExecutionOptions, FaultKind, FaultSpec, IsolationMode};
use mtc::history::serde_io;
use mtc::workload::{generate_mt_workload, Distribution, MtWorkloadSpec};
use std::time::Duration;

fn mt_spec(seed: u64, num_keys: u64) -> MtWorkloadSpec {
    MtWorkloadSpec {
        sessions: 4,
        txns_per_session: 80,
        num_keys,
        distribution: Distribution::Zipf { theta: 1.0 },
        read_only_fraction: 0.2,
        two_key_fraction: 0.5,
        seed,
    }
}

#[test]
fn serializable_store_produces_histories_every_checker_accepts() {
    let spec = mt_spec(1, 24);
    let workload = generate_mt_workload(&spec);
    let db = Database::new(DbConfig::correct(
        IsolationMode::Serializable,
        spec.num_keys,
    ));
    let (history, report) = ExecutionOptions::threaded().run(&db, &workload);

    assert!(report.committed > 200, "too few commits: {report:?}");
    assert!(history.has_unique_values());
    assert!(check_sser(&history).unwrap().is_satisfied());
    assert!(check_ser(&history).unwrap().is_satisfied());
    assert!(check_si(&history).unwrap().is_satisfied());
    assert!(cobra_check_ser(&history).satisfied);
    assert!(polysi_check_si(&history).satisfied);
}

#[test]
fn snapshot_store_satisfies_si_across_seeds() {
    for seed in 0..3u64 {
        let spec = mt_spec(seed, 8);
        let workload = generate_mt_workload(&spec);
        let db = Database::new(DbConfig::correct(IsolationMode::Snapshot, spec.num_keys));
        let (history, _) = ExecutionOptions::threaded().run(&db, &workload);
        let verdict = check_si(&history).unwrap();
        assert!(
            verdict.is_satisfied(),
            "seed {seed}: SI store produced a non-SI history: {:?}",
            verdict.violation()
        );
    }
}

#[test]
fn lost_update_fault_is_caught_by_mtc_si() {
    // Skip first-committer-wins often enough, with per-operation latency so
    // that transactions overlap, and MTC-SI must flag the history.
    let spec = mt_spec(7, 4);
    let workload = generate_mt_workload(&spec);
    let config = DbConfig::correct(IsolationMode::Snapshot, spec.num_keys)
        .with_latency(Duration::from_micros(200), Duration::from_micros(100))
        .with_faults(vec![FaultSpec::new(FaultKind::SkipWriteValidation, 0.6)], 7);
    let db = Database::new(config);
    let (history, _) = ExecutionOptions::threaded().run(&db, &workload);
    let verdict = check_si(&history).unwrap();
    assert!(
        verdict.is_violated(),
        "expected an SI violation from the lost-update fault"
    );
}

#[test]
fn dirty_release_fault_is_caught_as_aborted_read() {
    let spec = mt_spec(9, 4);
    let workload = generate_mt_workload(&spec);
    let config = DbConfig::correct(IsolationMode::Snapshot, spec.num_keys)
        .with_faults(vec![FaultSpec::new(FaultKind::DirtyRelease, 0.2)], 9);
    let db = Database::new(config);
    let (history, _) = ExecutionOptions::threaded().run(&db, &workload);
    let verdict = check_si(&history).unwrap();
    assert!(verdict.is_violated());
}

#[test]
fn histories_survive_a_serialization_round_trip() {
    let spec = mt_spec(11, 16);
    let workload = generate_mt_workload(&spec);
    let db = Database::new(DbConfig::correct(
        IsolationMode::Serializable,
        spec.num_keys,
    ));
    let (history, _) = ExecutionOptions::threaded().run(&db, &workload);

    let text = serde_io::to_json_lines(&history).unwrap();
    let restored = serde_io::from_json_lines(&text).unwrap();
    assert_eq!(history, restored);
    assert_eq!(
        check_ser(&history).unwrap().is_satisfied(),
        check_ser(&restored).unwrap().is_satisfied()
    );
}
