//! Durability and bounded-memory integration tests: the acceptance bar of
//! the mtc-store subsystem.
//!
//! * A long (100k+) synthetic stream verified with GC enabled keeps the
//!   number of retained graph nodes below a fixed cap while producing a
//!   verdict identical to the unbounded checker's.
//! * A kill/resume round trip — record, checkpoint, "crash", recover,
//!   resume, finish — reproduces the clean run's verdict and certificate.

use mtc::core::{
    check_streaming, CheckerSnapshot, GcPolicy, IncrementalChecker, IsolationLevel,
    ShardedIncrementalChecker,
};
use mtc::history::{History, HistoryBuilder, Op, Transaction};
use mtc::store::{recover, MtcStore, StreamMeta};

/// A serial multi-key stream with one write-skew gadget (an in-window
/// SER/SSER violation) planted at `corrupt_at`, mirroring the core GC test
/// generator but at acceptance scale. (Kept as a copy: the core tests
/// cannot depend on a shared crate without a dependency cycle, so changes
/// here must be applied to `crates/core/src/incremental.rs` tests too.)
#[allow(clippy::explicit_counter_loop)] // `value` is state, not a counter
fn long_stream(n: u64, keys: u64, corrupt_at: Option<u64>) -> History {
    assert!(keys >= 3);
    let (ka, kb) = (keys - 2, keys - 1);
    let mut b = HistoryBuilder::new().with_init(keys);
    let mut last = vec![0u64; keys as usize];
    let mut value = 1u64;
    for i in 0..n {
        if corrupt_at == Some(i) {
            b.committed_timed(
                8,
                vec![
                    Op::read(ka, 0u64),
                    Op::read(kb, 0u64),
                    Op::write(ka, 900_000_001u64),
                ],
                10 * i + 1,
                10 * i + 6,
            );
            b.committed_timed(
                9,
                vec![
                    Op::read(ka, 0u64),
                    Op::read(kb, 0u64),
                    Op::write(kb, 900_000_002u64),
                ],
                10 * i + 2,
                10 * i + 7,
            );
        }
        let k = (i * 5) % (keys - 2); // stride coprime to every tested key count
        b.committed_timed(
            (i % 8) as u32,
            vec![Op::read(k, last[k as usize]), Op::write(k, value)],
            10 * i + 1,
            10 * i + 5,
        );
        last[k as usize] = value;
        value += 1;
    }
    b.build()
}

#[test]
fn hundred_thousand_txn_stream_verifies_with_bounded_memory() {
    let n = 100_000u64;
    let window = 2048usize;
    // A fixed cap, independent of n: the GC must keep resident state at
    // window scale. (5 nodes per resident transaction in SSER: the
    // transaction node plus two chain nodes per instant.)
    let txn_cap = 3 * window;
    let node_cap = 5 * txn_cap;
    for level in [
        IsolationLevel::Serializability,
        IsolationLevel::SnapshotIsolation,
        IsolationLevel::StrictSerializability,
    ] {
        let h = long_stream(n, 16, None);
        let unbounded = check_streaming(level, &h).unwrap();
        let mut gc = IncrementalChecker::new(level).with_gc(GcPolicy { window, every: 512 });
        let _ = gc.push_history(&h);
        assert!(
            gc.live_txn_count() <= txn_cap,
            "{level}: {} resident transactions exceed the cap {txn_cap}",
            gc.live_txn_count()
        );
        assert!(
            gc.live_node_count() <= node_cap,
            "{level}: {} live nodes exceed the cap {node_cap}",
            gc.live_node_count()
        );
        assert!(
            gc.pruned_txn_count() as u64 > n / 2,
            "{level}: only {} of {n} transactions were retired",
            gc.pruned_txn_count()
        );
        let verdict = gc.finish().unwrap();
        assert_eq!(verdict, unbounded, "{level}: GC changed the verdict");
        assert!(verdict.is_satisfied());
    }
}

#[test]
fn bounded_memory_stream_still_latches_violations_exactly() {
    let n = 40_000u64;
    let h = long_stream(n, 16, Some(39_000));
    for level in [
        IsolationLevel::Serializability,
        IsolationLevel::StrictSerializability,
    ] {
        let unbounded = check_streaming(level, &h).unwrap();
        assert!(unbounded.is_violated());
        let mut gc = IncrementalChecker::new(level).with_gc(GcPolicy {
            window: 1024,
            every: 256,
        });
        let _ = gc.push_history(&h);
        let first = gc.first_violation_at();
        assert!(first.is_some(), "{level}: must latch mid-stream");
        assert_eq!(
            gc.finish().unwrap(),
            unbounded,
            "{level}: certificate must be identical to the unbounded run's"
        );
    }
}

/// Splits a history into (init keys, user transactions).
fn split(h: &History) -> (Vec<mtc::history::Key>, Vec<Transaction>) {
    let init_keys = h
        .init_txn()
        .map(|id| h.txn(id).write_set())
        .unwrap_or_default();
    let txns = h
        .txns()
        .iter()
        .filter(|t| Some(t.id) != h.init_txn())
        .cloned()
        .collect();
    (init_keys, txns)
}

#[test]
fn kill_resume_round_trip_reproduces_the_clean_verdict_and_certificate() {
    let dir = std::env::temp_dir().join(format!("mtc_durability_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let n = 4_000u64;
    let level = IsolationLevel::StrictSerializability;
    let h = long_stream(n, 8, Some(3_500));
    let clean = check_streaming(level, &h).unwrap();
    assert!(clean.is_violated());

    // Record with write-ahead + periodic checkpoints, then "crash" mid-way
    // by abandoning everything after a torn partial frame.
    let (init_keys, txns) = split(&h);
    let mut store = MtcStore::create(
        &dir,
        &StreamMeta {
            level,
            num_keys: init_keys.len() as u64,
        },
    )
    .unwrap();
    let mut checker = IncrementalChecker::new(level).with_init_keys(init_keys);
    let cut = 3_200usize;
    for (i, t) in txns[..cut].iter().enumerate() {
        store.append_txn(t).unwrap();
        let _ = checker.push(t.clone());
        if (i + 1) % 500 == 0 {
            let snap: CheckerSnapshot = checker.checkpoint();
            store.checkpoint((i + 1) as u64, &snap).unwrap();
        }
    }
    store.sync().unwrap();
    drop(store);
    drop(checker);
    // Torn tail: half a frame of garbage, as a kill mid-write leaves.
    let seg = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".mtclog"))
        .max_by_key(|e| e.file_name())
        .unwrap()
        .path();
    let mut bytes = std::fs::read(&seg).unwrap();
    bytes.extend_from_slice(&[0x17, 0x00, 0x00, 0x00, 0xde, 0xad]);
    std::fs::write(&seg, &bytes).unwrap();

    // Recover: resume from the newest checkpoint, replay the logged tail,
    // then feed the not-yet-logged remainder of the stream.
    let recovery = recover(&dir).unwrap();
    assert!(recovery.torn_tail);
    assert_eq!(recovery.resume_from, 3_000);
    assert_eq!(recovery.txns.len(), cut);
    let mut resumed = IncrementalChecker::resume(recovery.snapshot.clone().unwrap());
    for t in recovery.tail() {
        let _ = resumed.push(t.clone());
    }
    for t in &txns[cut..] {
        let _ = resumed.push(t.clone());
    }
    let verdict = resumed.finish().unwrap();
    assert_eq!(
        verdict, clean,
        "kill/resume must reproduce the clean verdict and certificate"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_checker_resumes_a_sequential_checkpoint_at_scale() {
    let n = 10_000u64;
    let level = IsolationLevel::SnapshotIsolation;
    let h = long_stream(n, 12, None);
    let clean = check_streaming(level, &h).unwrap();
    let (init_keys, txns) = split(&h);
    let mut seq = IncrementalChecker::new(level).with_init_keys(init_keys);
    let cut = 6_000usize;
    for t in &txns[..cut] {
        let _ = seq.push(t.clone());
    }
    let snapshot = seq.checkpoint();
    drop(seq);
    let mut sharded = ShardedIncrementalChecker::resume(snapshot, 4);
    for chunk in txns[cut..].chunks(256) {
        let _ = sharded.push_batch(chunk.to_vec());
    }
    assert_eq!(sharded.finish().unwrap(), clean);
}
