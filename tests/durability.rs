//! Durability and bounded-memory integration tests: the acceptance bar of
//! the mtc-store subsystem.
//!
//! * A long (100k+) synthetic stream verified with GC enabled keeps the
//!   number of retained graph nodes below a fixed cap while producing a
//!   verdict identical to the unbounded checker's.
//! * A kill/resume round trip — record, checkpoint, "crash", recover,
//!   resume, finish — reproduces the clean run's verdict and certificate.

use mtc::core::{
    check_streaming, CheckerSnapshot, GcPolicy, IncrementalChecker, IsolationLevel,
    ShardedIncrementalChecker,
};
use mtc::history::{History, HistoryBuilder, Op, Transaction};
use mtc::store::{recover, MtcStore, StreamMeta};

/// A serial multi-key stream with one write-skew gadget (an in-window
/// SER/SSER violation) planted at `corrupt_at`, mirroring the core GC test
/// generator but at acceptance scale. (Kept as a copy: the core tests
/// cannot depend on a shared crate without a dependency cycle, so changes
/// here must be applied to `crates/core/src/incremental.rs` tests too.)
#[allow(clippy::explicit_counter_loop)] // `value` is state, not a counter
fn long_stream(n: u64, keys: u64, corrupt_at: Option<u64>) -> History {
    assert!(keys >= 3);
    let (ka, kb) = (keys - 2, keys - 1);
    let mut b = HistoryBuilder::new().with_init(keys);
    let mut last = vec![0u64; keys as usize];
    let mut value = 1u64;
    for i in 0..n {
        if corrupt_at == Some(i) {
            b.committed_timed(
                8,
                vec![
                    Op::read(ka, 0u64),
                    Op::read(kb, 0u64),
                    Op::write(ka, 900_000_001u64),
                ],
                10 * i + 1,
                10 * i + 6,
            );
            b.committed_timed(
                9,
                vec![
                    Op::read(ka, 0u64),
                    Op::read(kb, 0u64),
                    Op::write(kb, 900_000_002u64),
                ],
                10 * i + 2,
                10 * i + 7,
            );
        }
        let k = (i * 5) % (keys - 2); // stride coprime to every tested key count
        b.committed_timed(
            (i % 8) as u32,
            vec![Op::read(k, last[k as usize]), Op::write(k, value)],
            10 * i + 1,
            10 * i + 5,
        );
        last[k as usize] = value;
        value += 1;
    }
    b.build()
}

#[test]
fn hundred_thousand_txn_stream_verifies_with_bounded_memory() {
    let n = 100_000u64;
    let window = 2048usize;
    // A fixed cap, independent of n: the GC must keep resident state at
    // window scale. (5 nodes per resident transaction in SSER: the
    // transaction node plus two chain nodes per instant.)
    let txn_cap = 3 * window;
    let node_cap = 5 * txn_cap;
    for level in [
        IsolationLevel::Serializability,
        IsolationLevel::SnapshotIsolation,
        IsolationLevel::StrictSerializability,
    ] {
        let h = long_stream(n, 16, None);
        let unbounded = check_streaming(level, &h).unwrap();
        let mut gc = IncrementalChecker::new(level).with_gc(GcPolicy {
            window,
            every: 512,
            reader_cap: 0,
        });
        let _ = gc.push_history(&h);
        assert!(
            gc.live_txn_count() <= txn_cap,
            "{level}: {} resident transactions exceed the cap {txn_cap}",
            gc.live_txn_count()
        );
        assert!(
            gc.live_node_count() <= node_cap,
            "{level}: {} live nodes exceed the cap {node_cap}",
            gc.live_node_count()
        );
        assert!(
            gc.pruned_txn_count() as u64 > n / 2,
            "{level}: only {} of {n} transactions were retired",
            gc.pruned_txn_count()
        );
        let verdict = gc.finish().unwrap();
        assert_eq!(verdict, unbounded, "{level}: GC changed the verdict");
        assert!(verdict.is_satisfied());
    }
}

#[test]
fn bounded_memory_stream_still_latches_violations_exactly() {
    let n = 40_000u64;
    let h = long_stream(n, 16, Some(39_000));
    for level in [
        IsolationLevel::Serializability,
        IsolationLevel::StrictSerializability,
    ] {
        let unbounded = check_streaming(level, &h).unwrap();
        assert!(unbounded.is_violated());
        let mut gc = IncrementalChecker::new(level).with_gc(GcPolicy {
            window: 1024,
            every: 256,
            reader_cap: 0,
        });
        let _ = gc.push_history(&h);
        let first = gc.first_violation_at();
        assert!(first.is_some(), "{level}: must latch mid-stream");
        assert_eq!(
            gc.finish().unwrap(),
            unbounded,
            "{level}: certificate must be identical to the unbounded run's"
        );
    }
}

/// Splits a history into (init keys, user transactions).
fn split(h: &History) -> (Vec<mtc::history::Key>, Vec<Transaction>) {
    let init_keys = h
        .init_txn()
        .map(|id| h.txn(id).write_set())
        .unwrap_or_default();
    let txns = h
        .txns()
        .iter()
        .filter(|t| Some(t.id) != h.init_txn())
        .cloned()
        .collect();
    (init_keys, txns)
}

#[test]
fn kill_resume_round_trip_reproduces_the_clean_verdict_and_certificate() {
    let dir = std::env::temp_dir().join(format!("mtc_durability_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let n = 4_000u64;
    let level = IsolationLevel::StrictSerializability;
    let h = long_stream(n, 8, Some(3_500));
    let clean = check_streaming(level, &h).unwrap();
    assert!(clean.is_violated());

    // Record with write-ahead + periodic checkpoints, then "crash" mid-way
    // by abandoning everything after a torn partial frame.
    let (init_keys, txns) = split(&h);
    let mut store = MtcStore::create(
        &dir,
        &StreamMeta {
            level,
            num_keys: init_keys.len() as u64,
        },
    )
    .unwrap();
    let mut checker = IncrementalChecker::new(level).with_init_keys(init_keys);
    let cut = 3_200usize;
    for (i, t) in txns[..cut].iter().enumerate() {
        store.append_txn(t).unwrap();
        let _ = checker.push(t.clone());
        if (i + 1) % 500 == 0 {
            let snap: CheckerSnapshot = checker.checkpoint();
            store.checkpoint((i + 1) as u64, &snap).unwrap();
        }
    }
    store.sync().unwrap();
    drop(store);
    drop(checker);
    // Torn tail: half a frame of garbage, as a kill mid-write leaves.
    let seg = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".mtclog"))
        .max_by_key(|e| e.file_name())
        .unwrap()
        .path();
    let mut bytes = std::fs::read(&seg).unwrap();
    bytes.extend_from_slice(&[0x17, 0x00, 0x00, 0x00, 0xde, 0xad]);
    std::fs::write(&seg, &bytes).unwrap();

    // Recover: resume from the newest checkpoint, replay the logged tail,
    // then feed the not-yet-logged remainder of the stream.
    let recovery = recover(&dir).unwrap();
    assert!(recovery.torn_tail);
    assert_eq!(recovery.resume_from, 3_000);
    assert_eq!(recovery.txns.len(), cut);
    let mut resumed = IncrementalChecker::resume(recovery.snapshot.clone().unwrap());
    for t in recovery.tail() {
        let _ = resumed.push(t.clone());
    }
    for t in &txns[cut..] {
        let _ = resumed.push(t.clone());
    }
    let verdict = resumed.finish().unwrap();
    assert_eq!(
        verdict, clean,
        "kill/resume must reproduce the clean verdict and certificate"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_checker_resumes_a_sequential_checkpoint_at_scale() {
    let n = 10_000u64;
    let level = IsolationLevel::SnapshotIsolation;
    let h = long_stream(n, 12, None);
    let clean = check_streaming(level, &h).unwrap();
    let (init_keys, txns) = split(&h);
    let mut seq = IncrementalChecker::new(level).with_init_keys(init_keys);
    let cut = 6_000usize;
    for t in &txns[..cut] {
        let _ = seq.push(t.clone());
    }
    let snapshot = seq.checkpoint();
    drop(seq);
    let mut sharded = ShardedIncrementalChecker::resume(snapshot, 4);
    for chunk in txns[cut..].chunks(256) {
        let _ = sharded.push_batch(chunk.to_vec());
    }
    assert_eq!(sharded.finish().unwrap(), clean);
}

// ───────────────── reader-list caps (GC follow-up) ──────────────────────────

/// A stream in which every transaction reads one *hot* key whose version
/// never changes (`⊥T`'s initial version) and RMWs a rotating cold key.
/// The hot version stays latest forever, so without a cap its reader list
/// accumulates up to the full GC window between sweeps.
#[allow(clippy::explicit_counter_loop)] // `value` is state, not a counter
fn hot_key_stream(n: u64, cold_keys: u64) -> Vec<Transaction> {
    let mut out = Vec::with_capacity(n as usize);
    let mut last = vec![0u64; cold_keys as usize];
    let mut value = 1u64;
    for i in 0..n {
        let k = 1 + (i % cold_keys); // keys 1..=cold_keys; key 0 is the hot one
        let ops = vec![
            Op::read(0u64, 0u64), // hot key, always the initial version
            Op::read(k, last[(k - 1) as usize]),
            Op::write(k, value),
        ];
        out.push(
            Transaction::committed(
                mtc::history::TxnId(0),
                mtc::history::SessionId((i % 4) as u32),
                ops,
            )
            .with_times(10 * i + 1, 10 * i + 5),
        );
        last[(k - 1) as usize] = value;
        value += 1;
    }
    out
}

/// Regression for the ROADMAP follow-up: a hot key whose version never
/// changes accumulates `readers_of` register state up to the window between
/// sweeps; `GcPolicy::reader_cap` bounds it, with explicit eviction markers.
#[test]
fn hot_key_reader_lists_accumulate_without_cap_and_are_bounded_with_cap() {
    let n = 4_000u64;
    let drive = |cap: usize| {
        let mut c = IncrementalChecker::new(IsolationLevel::Serializability)
            .with_init_keys(0..9u64)
            .with_gc(GcPolicy {
                window: 256,
                every: 64,
                reader_cap: cap,
            });
        for t in hot_key_stream(n, 8) {
            let _ = c.push(t);
        }
        c
    };

    let uncapped = drive(0);
    let accumulated = uncapped.max_reader_list_len();
    assert!(
        accumulated > 128,
        "the hot key's reader list must accumulate toward the window \
         between sweeps (got {accumulated})"
    );
    assert_eq!(uncapped.reader_eviction_count(), 0);
    assert!(uncapped.reader_evictions().is_empty());

    let capped = drive(16);
    let bounded = capped.max_reader_list_len();
    assert!(
        bounded <= 16 + 64,
        "the cap must bound resident reader state to cap + sweep cadence \
         (got {bounded})"
    );
    assert!(
        capped.reader_eviction_count() > 0,
        "evictions must be marked"
    );
    let evictions = capped.reader_evictions();
    assert!(
        evictions.iter().any(|e| e.key == mtc::history::Key(0)),
        "the marker must name the hot key: {evictions:?}"
    );
    // Evictions only remove *potential* RW edges of a version that is never
    // overwritten here, so the clean verdict must be preserved.
    let unbounded = drive(0).finish().unwrap();
    assert_eq!(capped.finish().unwrap(), unbounded);
    assert!(unbounded.is_satisfied());
}

/// Eviction markers are part of the checker state proper: they survive a
/// checkpoint/resume round trip and are readable from the snapshot itself.
#[test]
fn reader_eviction_markers_survive_checkpoint_and_resume() {
    let mut c = IncrementalChecker::new(IsolationLevel::Serializability)
        .with_init_keys(0..9u64)
        .with_gc(GcPolicy {
            window: 128,
            every: 32,
            reader_cap: 8,
        });
    let stream = hot_key_stream(2_000, 8);
    let cut = 1_500usize;
    for t in &stream[..cut] {
        let _ = c.push(t.clone());
    }
    assert!(c.reader_eviction_count() > 0);
    let snapshot = c.checkpoint();
    let in_snapshot = snapshot.reader_evictions();
    assert!(
        !in_snapshot.is_empty(),
        "the snapshot must carry the qualified-certificate markers"
    );
    assert_eq!(in_snapshot, c.reader_evictions());

    let mut resumed = IncrementalChecker::resume(snapshot);
    assert_eq!(resumed.reader_evictions(), c.reader_evictions());
    for t in &stream[cut..] {
        let _ = resumed.push(t.clone());
    }
    assert!(resumed.reader_eviction_count() >= c.reader_eviction_count());
    assert!(resumed.finish().unwrap().is_satisfied());
}

/// The sharded checker sweeps per worker; its aggregate eviction count must
/// surface through the same policy knob.
#[test]
fn sharded_checker_reports_reader_evictions() {
    let mut c = ShardedIncrementalChecker::new(IsolationLevel::Serializability, 3)
        .with_init_keys(0..9u64)
        .with_gc(GcPolicy {
            window: 128,
            every: 32,
            reader_cap: 8,
        });
    for chunk in hot_key_stream(2_000, 8).chunks(64) {
        let _ = c.push_batch(chunk.to_vec());
    }
    assert!(c.reader_eviction_count() > 0);
    let snapshot = c.checkpoint();
    assert!(!snapshot.reader_evictions().is_empty());
    assert!(c.finish().unwrap().is_satisfied());
}

/// Markers must outlive the capped version: once readers are evicted, the
/// potentially lost RW edges stay lost even after the version itself is
/// overwritten and retired, so retiring it must not un-qualify the
/// certificate or shrink the cumulative count.
#[test]
fn reader_eviction_markers_outlive_the_capped_version() {
    let mut c = IncrementalChecker::new(IsolationLevel::Serializability)
        .with_init_keys(0..9u64)
        .with_gc(GcPolicy {
            window: 128,
            every: 32,
            reader_cap: 8,
        });
    // Phase 1: key 0 is hot and never written — its reader list gets capped.
    for t in hot_key_stream(1_000, 8) {
        let _ = c.push(t);
    }
    let evicted_hot = c.reader_eviction_count();
    assert!(evicted_hot > 0);
    // Phase 2: overwrite the hot key, then stream long past the window so
    // the GC retires the capped initial version.
    let _ = c.push(
        Transaction::committed(
            mtc::history::TxnId(0),
            mtc::history::SessionId(0),
            vec![Op::read(0u64, 0u64), Op::write(0u64, 900_000_001u64)],
        )
        .with_times(100_000, 100_001),
    );
    let mut last = 900_000_001u64;
    for i in 0..1_000u64 {
        let v = 900_000_002 + i;
        let _ = c.push(
            Transaction::committed(
                mtc::history::TxnId(0),
                mtc::history::SessionId((i % 4) as u32),
                vec![Op::read(0u64, last), Op::write(0u64, v)],
            )
            .with_times(200_000 + 10 * i, 200_005 + 10 * i),
        );
        last = v;
    }
    assert!(
        c.reader_eviction_count() >= evicted_hot,
        "the cumulative eviction count must be monotone across version \
         retirement ({} -> {})",
        evicted_hot,
        c.reader_eviction_count()
    );
    assert!(
        c.reader_evictions()
            .iter()
            .any(|e| e.key == mtc::history::Key(0)),
        "the marker must survive the retirement of the version it qualifies"
    );
    assert!(c.finish().unwrap().is_satisfied());
}

/// A resumed sharded checker must report the restored eviction counts
/// immediately, not only after its next collect.
#[test]
fn resumed_sharded_checker_reports_restored_evictions() {
    let mut seq = IncrementalChecker::new(IsolationLevel::Serializability)
        .with_init_keys(0..9u64)
        .with_gc(GcPolicy {
            window: 128,
            every: 32,
            reader_cap: 8,
        });
    for t in hot_key_stream(1_000, 8) {
        let _ = seq.push(t);
    }
    let count = seq.reader_eviction_count();
    assert!(count > 0);
    let snapshot = seq.checkpoint();
    let resumed = ShardedIncrementalChecker::resume(snapshot, 3);
    assert_eq!(
        resumed.reader_eviction_count(),
        count,
        "restored shard states carry the markers; the count must be \
         visible before the next collect"
    );
    assert!(resumed.finish().unwrap().is_satisfied());
}
