//! Remote isolation probes: hand-driven anomaly scripts against the engine
//! fleet *through the wire* (loopback `mtc-net` servers), asserting each
//! engine's isolation level by its observable behaviour, not its label.
//!
//! Each probe drives two or three overlapping transactions operation by
//! operation over a `NetBackend` and checks exactly what a client at that
//! level must (or must not) be able to observe:
//!
//! * **dirty read** — visible on `weak-ru`, invisible on `weak-rc` and
//!   `sim-rc`;
//! * **non-repeatable read** — observable on `weak-rc` and `sim-rc`,
//!   prevented by `sim-si`'s begin snapshot;
//! * **lost update** — `sim-si` aborts the second committer
//!   (first-committer-wins), `weak-rc` lets both commit;
//! * **write skew** — commits on `sim-si` (disjoint write sets pass
//!   first-committer-wins), refused by `sim-ser`'s read validation — and the
//!   committed SI interleaving is exactly the history the batch checkers
//!   split on: SI satisfied, SER violated.

use mtc::core::{check_ser, check_si};
use mtc::dbsim::DbBackend;
use mtc::history::{HistoryBuilder, Key, Op, Value, INIT_VALUE};
use mtc::net::{spec_for_label, NetBackend, NetServer};
use mtc::IsolationLevel;

const NUM_KEYS: u64 = 4;

/// Spawns a loopback server wrapping the fleet engine `label` and runs
/// `probe` against a connected remote backend.
fn with_remote<T>(label: &str, probe: impl FnOnce(&NetBackend) -> T) -> T {
    let spec = spec_for_label(label, NUM_KEYS).expect("fleet label resolves");
    let server = NetServer::spawn(spec).expect("loopback server spawns");
    let backend = NetBackend::connect(server.addr()).expect("loopback connect");
    assert_eq!(backend.label(), format!("net/{label}"));
    let out = probe(&backend);
    drop(backend);
    server.shutdown().expect("clean shutdown");
    out
}

/// Writer publishes (or buffers) a write, a concurrent reader looks, writer
/// rolls back. Returns what the reader saw.
fn dirty_read_probe(db: &NetBackend) -> Value {
    let mut writer = db.begin();
    writer
        .write_register(Key(0), Value(5))
        .expect("uncontended write");
    let mut reader = db.begin();
    let seen = reader.read_register(Key(0)).expect("uncontended read");
    writer.abort();
    let _ = reader.commit();
    seen
}

#[test]
fn dirty_reads_are_visible_only_on_read_uncommitted() {
    assert_eq!(
        with_remote("weak-ru", dirty_read_probe),
        Value(5),
        "weak-ru must expose the uncommitted write through the wire"
    );
    for label in ["weak-rc", "sim-rc"] {
        assert_eq!(
            with_remote(label, dirty_read_probe),
            INIT_VALUE,
            "{label} must hide uncommitted writes"
        );
    }
}

/// T1 reads, T2 commits a new version, T1 reads again. Returns both reads.
fn non_repeatable_read_probe(db: &NetBackend) -> (Value, Value) {
    let mut t1 = db.begin();
    let first = t1.read_register(Key(0)).expect("first read");
    let mut t2 = db.begin();
    t2.write_register(Key(0), Value(7)).expect("write");
    t2.commit().expect("uncontended writer commits");
    let second = t1.read_register(Key(0)).expect("second read");
    let _ = t1.commit();
    (first, second)
}

#[test]
fn non_repeatable_reads_split_read_committed_from_snapshot() {
    for label in ["weak-rc", "sim-rc"] {
        let (first, second) = with_remote(label, non_repeatable_read_probe);
        assert_eq!(first, INIT_VALUE);
        assert_eq!(
            second,
            Value(7),
            "{label} reads latest-committed, so the repeated read must move"
        );
    }
    let (first, second) = with_remote("sim-si", non_repeatable_read_probe);
    assert_eq!(first, INIT_VALUE);
    assert_eq!(
        second, INIT_VALUE,
        "sim-si reads its begin snapshot, so the repeated read must not move"
    );
}

/// Two read-modify-writes of the same key race. Returns whether the second
/// committer succeeded.
fn lost_update_probe(db: &NetBackend) -> bool {
    let mut t1 = db.begin();
    let mut t2 = db.begin();
    assert_eq!(t1.read_register(Key(0)).expect("read"), INIT_VALUE);
    assert_eq!(t2.read_register(Key(0)).expect("read"), INIT_VALUE);
    t1.write_register(Key(0), Value(1)).expect("write");
    t2.write_register(Key(0), Value(2)).expect("write");
    t1.commit().expect("first committer always wins");
    t2.commit().is_ok()
}

#[test]
fn lost_updates_are_refused_by_first_committer_wins() {
    assert!(
        !with_remote("sim-si", lost_update_probe),
        "sim-si must abort the second writer of a racing RMW pair"
    );
    assert!(
        with_remote("weak-rc", lost_update_probe),
        "weak-rc has no validation: the lost update must commit"
    );
}

/// The classic write skew: both transactions read both keys, then each
/// writes the *other* key. Returns whether both committed.
fn write_skew_probe(db: &NetBackend) -> bool {
    let mut t1 = db.begin();
    let mut t2 = db.begin();
    for t in [&mut t1, &mut t2] {
        assert_eq!(t.read_register(Key(0)).expect("read"), INIT_VALUE);
        assert_eq!(t.read_register(Key(1)).expect("read"), INIT_VALUE);
    }
    t1.write_register(Key(0), Value(1)).expect("write");
    t2.write_register(Key(1), Value(2)).expect("write");
    let first = t1.commit().is_ok();
    let second = t2.commit().is_ok();
    first && second
}

#[test]
fn write_skew_commits_under_si_and_is_refused_under_ser() {
    assert!(
        with_remote("sim-si", write_skew_probe),
        "disjoint write sets pass first-committer-wins: SI admits write skew"
    );
    assert!(
        !with_remote("sim-ser", write_skew_probe),
        "sim-ser validates read sets: one of the skewed pair must abort"
    );
}

/// The interleaving `write_skew_probe` commits on `sim-si`, replayed as a
/// history, is precisely the case the batch checkers split on.
#[test]
fn the_committed_write_skew_history_separates_si_from_ser() {
    let mut b = HistoryBuilder::new().with_init(2);
    b.committed_timed(
        0,
        vec![
            Op::read(0u64, 0u64),
            Op::read(1u64, 0u64),
            Op::write(0u64, 1u64),
        ],
        10,
        20,
    );
    b.committed_timed(
        1,
        vec![
            Op::read(0u64, 0u64),
            Op::read(1u64, 0u64),
            Op::write(1u64, 2u64),
        ],
        12,
        22,
    );
    let history = b.build();
    assert!(
        check_si(&history)
            .expect("write skew is inside the SI checker's domain")
            .is_satisfied(),
        "SI admits write skew"
    );
    assert!(
        check_ser(&history)
            .expect("write skew is inside the SER checker's domain")
            .is_violated(),
        "SER must reject the same interleaving"
    );
    // And the streaming checker agrees with the batch one on both verdicts.
    assert!(
        mtc::check_streaming(IsolationLevel::SnapshotIsolation, &history)
            .expect("in domain")
            .is_satisfied()
    );
    assert!(
        mtc::check_streaming(IsolationLevel::Serializability, &history)
            .expect("in domain")
            .is_violated()
    );
}
