//! Integration test: the 14-anomaly catalogue (Table I / Figure 5) against
//! every checker in the workspace — MTC's verifiers, the Cobra/PolySI
//! baselines and the brute-force ground truth all have to agree with the
//! expected verdict matrix.

use mtc::baselines::{brute_check_ser, brute_check_si, cobra_check_ser, polysi_check_si};
use mtc::core::{check_ser, check_si, check_sser};
use mtc::history::anomalies::AnomalyKind;

#[test]
fn every_anomaly_matches_the_expected_matrix_across_all_checkers() {
    for kind in AnomalyKind::ALL {
        let history = kind.history();
        let expected = kind.expected();

        let mtc_ser = check_ser(&history).unwrap().is_violated();
        let mtc_si = check_si(&history).unwrap().is_violated();
        let mtc_sser = check_sser(&history).unwrap().is_violated();
        assert_eq!(mtc_ser, expected.violates_ser, "MTC-SER on {kind}");
        assert_eq!(mtc_si, expected.violates_si, "MTC-SI on {kind}");
        assert_eq!(mtc_sser, expected.violates_sser, "MTC-SSER on {kind}");

        let cobra = cobra_check_ser(&history);
        assert!(!cobra.timed_out);
        assert_eq!(!cobra.satisfied, expected.violates_ser, "Cobra on {kind}");

        let polysi = polysi_check_si(&history);
        assert!(!polysi.timed_out);
        assert_eq!(!polysi.satisfied, expected.violates_si, "PolySI on {kind}");

        assert_eq!(
            !brute_check_ser(&history),
            expected.violates_ser,
            "brute SER on {kind}"
        );
        assert_eq!(
            !brute_check_si(&history),
            expected.violates_si,
            "brute SI on {kind}"
        );
    }
}

#[test]
fn witness_histories_are_minimal_mini_transaction_histories() {
    for kind in AnomalyKind::ALL {
        let history = kind.history();
        assert!(mtc::core::validate_history(&history).is_ok(), "{kind}");
        // Each witness needs at most four user transactions plus ⊥T.
        assert!(
            history.len() <= 5,
            "{kind} uses {} transactions",
            history.len()
        );
        for txn in history.txns() {
            assert!(txn.len() <= 4, "{kind}: {txn:?}");
        }
    }
}
