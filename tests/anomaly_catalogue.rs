//! Integration test: the 14-anomaly catalogue (Table I / Figure 5) against
//! every checker in the workspace — MTC's verifiers, the Cobra/PolySI
//! baselines and the brute-force ground truth all have to agree with the
//! expected verdict matrix — plus hand-crafted SSER-*specific* anomalies
//! (SER-accepted, SSER-rejected) checked against both batch flavours and the
//! streaming time-chain checker.

use mtc::baselines::{brute_check_ser, brute_check_si, cobra_check_ser, polysi_check_si};
use mtc::core::{
    check_ser, check_si, check_sser, check_sser_naive, check_streaming, Verdict, Violation,
};
use mtc::history::anomalies::AnomalyKind;
use mtc::history::{EdgeKind, History, HistoryBuilder, Op};
use mtc::IsolationLevel;

#[test]
fn every_anomaly_matches_the_expected_matrix_across_all_checkers() {
    for kind in AnomalyKind::ALL {
        let history = kind.history();
        let expected = kind.expected();

        let mtc_ser = check_ser(&history).unwrap().is_violated();
        let mtc_si = check_si(&history).unwrap().is_violated();
        let mtc_sser = check_sser(&history).unwrap().is_violated();
        assert_eq!(mtc_ser, expected.violates_ser, "MTC-SER on {kind}");
        assert_eq!(mtc_si, expected.violates_si, "MTC-SI on {kind}");
        assert_eq!(mtc_sser, expected.violates_sser, "MTC-SSER on {kind}");

        let cobra = cobra_check_ser(&history);
        assert!(!cobra.timed_out);
        assert_eq!(!cobra.satisfied, expected.violates_ser, "Cobra on {kind}");

        let polysi = polysi_check_si(&history);
        assert!(!polysi.timed_out);
        assert_eq!(!polysi.satisfied, expected.violates_si, "PolySI on {kind}");

        assert_eq!(
            !brute_check_ser(&history),
            expected.violates_ser,
            "brute SER on {kind}"
        );
        assert_eq!(
            !brute_check_si(&history),
            expected.violates_si,
            "brute SI on {kind}"
        );
    }
}

/// Stale read after commit: T1 installs x = 1 and finishes; T2 begins
/// strictly later yet still observes the initial value. SER admits the
/// serial order T2, T1 — SSER cannot, because real time pins T1 before T2.
fn stale_read_after_commit() -> History {
    let mut b = HistoryBuilder::new().with_init(1);
    b.committed_timed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)], 10, 20);
    b.committed_timed(1, vec![Op::read(0u64, 0u64)], 30, 40);
    b.build()
}

/// Causality reversal across three transactions: T3 starts after both T1
/// and T2 finished, sees T2's write to y but misses T1's earlier write to x.
/// SER admits the serial order T3 before T1 (T3 only anti-depends on T1);
/// SSER rejects it, because the anti-dependency T3 →rw T1 contradicts the
/// real-time edge RT(T1, T3).
fn causality_reversal() -> History {
    let mut b = HistoryBuilder::new().with_init(2);
    b.committed_timed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)], 10, 20);
    b.committed_timed(1, vec![Op::read(1u64, 0u64), Op::write(1u64, 2u64)], 30, 40);
    b.committed_timed(2, vec![Op::read(1u64, 2u64), Op::read(0u64, 0u64)], 50, 60);
    b.build()
}

/// Backdated commit: T2 reads T1's write but *reports* an interval that lies
/// entirely before T1 began (a skewed clock on the acknowledging node). The
/// WR dependency T1 → T2 contradicts RT(T2, T1).
fn backdated_commit() -> History {
    let mut b = HistoryBuilder::new().with_init(1);
    b.committed_timed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)], 30, 40);
    b.committed_timed(1, vec![Op::read(0u64, 1u64)], 5, 9);
    b.build()
}

#[test]
fn sser_specific_anomalies_are_rejected_only_by_sser() {
    let witnesses: [(&str, History); 3] = [
        ("stale-read-after-commit", stale_read_after_commit()),
        ("causality-reversal", causality_reversal()),
        ("backdated-commit", backdated_commit()),
    ];
    for (name, h) in &witnesses {
        // SER and SI accept: the anomaly lives purely in the real-time order.
        assert!(
            check_ser(h).unwrap().is_satisfied(),
            "SER must accept {name}"
        );
        assert!(check_si(h).unwrap().is_satisfied(), "SI must accept {name}");

        // Both batch SSER flavours and the streaming time-chain checker
        // reject, with a cycle counterexample that names real time.
        let batch = check_sser(h).unwrap();
        let naive = check_sser_naive(h).unwrap();
        let streaming = check_streaming(IsolationLevel::StrictSerializability, h).unwrap();
        for (flavour, verdict) in [
            ("check_sser", &batch),
            ("check_sser_naive", &naive),
            ("streaming", &streaming),
        ] {
            let Verdict::Violated(Violation::Cycle { edges }) = verdict else {
                panic!("{flavour} must reject {name} with a cycle, got {verdict:?}");
            };
            assert!(
                edges.iter().any(|e| e.kind == EdgeKind::Rt),
                "{flavour} counterexample for {name} must contain an RT edge: {edges:?}"
            );
        }
    }
}

#[test]
fn witness_histories_are_minimal_mini_transaction_histories() {
    for kind in AnomalyKind::ALL {
        let history = kind.history();
        assert!(mtc::core::validate_history(&history).is_ok(), "{kind}");
        // Each witness needs at most four user transactions plus ⊥T.
        assert!(
            history.len() <= 5,
            "{kind} uses {} transactions",
            history.len()
        );
        for txn in history.txns() {
            assert!(txn.len() <= 4, "{kind}: {txn:?}");
        }
    }
}
