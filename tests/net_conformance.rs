//! Conformance of the remote (framed TCP) backend — fault-free and under
//! wire faults.
//!
//! * Every fleet engine behind the loopback server must hold exactly the
//!   promises it holds in-process: the promising engines stay clean through
//!   the wire, the weak engines' organic anomalies survive the round trip,
//!   and streaming verdicts (sequential and sharded) agree with batch.
//! * Wire faults must be *boring*: delayed and duplicated replies change
//!   nothing (the sequence-number discipline absorbs them); a server
//!   dropped mid-stream surfaces typed `AbortReason`s — never a panic —
//!   and the recorded history's streaming verdict is bit-identical to a
//!   fault-free replay of the same history.

use mtc::core::{
    check_ser, check_si, check_sser, check_streaming, check_streaming_sharded, IsolationLevel,
    Verdict,
};
use mtc::dbsim::{AbortReason, BackendSpec, DbBackend, ExecutionOptions};
use mtc::history::History;
use mtc::net::{spec_for_label, NetBackend, NetOptions, NetServer};
use mtc::workload::{generate_mt_workload, Distribution, MtWorkloadSpec};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

const LEVELS: [IsolationLevel; 3] = [
    IsolationLevel::SnapshotIsolation,
    IsolationLevel::Serializability,
    IsolationLevel::StrictSerializability,
];

fn batch_check(level: IsolationLevel, history: &History) -> Verdict {
    match level {
        IsolationLevel::SnapshotIsolation => check_si(history),
        IsolationLevel::Serializability => check_ser(history),
        IsolationLevel::StrictSerializability => check_sser(history),
    }
    .expect("collected histories are inside the checkers' domain")
}

/// The same conformance core the in-process suite applies: promises hold,
/// streaming (sequential == sharded) agrees with batch, at every level.
fn assert_conformant(label: &str, backend: &dyn DbBackend, history: &History) {
    for level in LEVELS {
        let batch = batch_check(level, history);
        let streaming = check_streaming(level, history).unwrap();
        let sharded = check_streaming_sharded(level, history, 3, 16).unwrap();
        assert_eq!(
            streaming, sharded,
            "{label}/{level}: sequential and sharded streaming verdicts must be bit-identical"
        );
        assert_eq!(
            batch.is_violated(),
            streaming.is_violated(),
            "{label}/{level}: streaming disagrees with batch"
        );
        if backend.promises(level) {
            assert!(
                batch.is_satisfied(),
                "{label} promised {level} but was caught through the wire: {}",
                batch.violation().unwrap()
            );
        }
    }
}

fn mt_spec(sessions: u32, txns: u32, keys: u64, seed: u64) -> MtWorkloadSpec {
    MtWorkloadSpec {
        sessions,
        txns_per_session: txns,
        num_keys: keys,
        distribution: Distribution::Uniform,
        read_only_fraction: 0.2,
        two_key_fraction: 0.5,
        seed,
    }
}

/// The whole fleet behind loopback TCP: in-process promises must survive
/// the wire, under both the threaded and the async ingest driver.
#[test]
fn remote_fleet_passes_conformance_over_loopback() {
    let spec = mt_spec(3, 25, 8, 71);
    let workload = generate_mt_workload(&spec);
    for backend_spec in BackendSpec::fleet(spec.num_keys) {
        let server = NetServer::spawn(backend_spec.clone()).unwrap();
        let remote = NetBackend::connect(server.addr()).unwrap();
        assert_eq!(
            remote.label(),
            format!("net/{}", backend_spec.label()),
            "handshake must carry the wrapped engine's label"
        );

        let (history, report) = ExecutionOptions::threaded().run(&remote, &workload);
        assert!(
            report.committed > 0,
            "{}: nothing committed over the wire",
            remote.label()
        );
        assert_conformant(remote.label(), &remote, &history);
        drop(remote);
        server.shutdown().unwrap();

        // The async driver, against a *fresh* server (engine state from the
        // first run would read as thin-air values): same invariants, with
        // sessions multiplexed over fewer workers than sessions (blocking
        // engines need one worker per session — see `Driver::Async`).
        let server = NetServer::spawn(backend_spec.clone()).unwrap();
        let remote = NetBackend::connect(server.addr()).unwrap();
        let workers = if backend_spec.blocking() {
            spec.sessions as usize
        } else {
            2
        };
        let (history, report) = ExecutionOptions::async_workers(workers).run(&remote, &workload);
        assert!(report.committed > 0, "{}: async run idle", remote.label());
        assert_conformant(remote.label(), &remote, &history);

        drop(remote);
        server.shutdown().unwrap();
    }
}

// ───────────────────────── wire-fault harness ───────────────────────────────

/// What the proxy does to server→client reply frames.
#[derive(Clone, Copy)]
enum ReplyFault {
    /// Forward each reply twice, after a delay: duplicates exercise the
    /// client's stale-sequence skip, the delay exercises its timeout slack.
    DelayAndDuplicate(Duration),
    /// Sever both directions (RST-ish) after this many replies.
    CutAfter(usize),
}

/// A minimal loopback TCP proxy that understands the frame layout well
/// enough to fault whole replies (never splitting a frame, which would be
/// plain corruption — covered by the proto tests).
struct FaultProxy {
    addr: SocketAddr,
}

impl FaultProxy {
    fn spawn(upstream: SocketAddr, fault: ReplyFault) -> FaultProxy {
        let listener = TcpListener::bind(("127.0.0.1", 0)).expect("proxy bind");
        let addr = listener.local_addr().expect("proxy addr");
        std::thread::spawn(move || {
            // Accept until the test ends; each connection runs detached and
            // dies with its sockets.
            while let Ok((client, _)) = listener.accept() {
                let Ok(server) = TcpStream::connect(upstream) else {
                    break;
                };
                let _ = client.set_nodelay(true);
                let _ = server.set_nodelay(true);
                // client → server: forward verbatim.
                let (Ok(mut c_read), Ok(mut s_write)) = (client.try_clone(), server.try_clone())
                else {
                    continue;
                };
                std::thread::spawn(move || {
                    let mut buf = [0u8; 4096];
                    loop {
                        match c_read.read(&mut buf) {
                            Ok(0) | Err(_) => break,
                            Ok(n) => {
                                if s_write.write_all(&buf[..n]).is_err() {
                                    break;
                                }
                            }
                        }
                    }
                    let _ = s_write.shutdown(std::net::Shutdown::Write);
                });
                // server → client: frame-wise, with the fault applied.
                std::thread::spawn(move || {
                    let mut forwarded = 0usize;
                    let mut server = server;
                    let mut client = client;
                    while let Some(frame) = read_one_frame(&mut server) {
                        match fault {
                            ReplyFault::DelayAndDuplicate(delay) => {
                                std::thread::sleep(delay);
                                if client.write_all(&frame).is_err()
                                    || client.write_all(&frame).is_err()
                                {
                                    break;
                                }
                            }
                            ReplyFault::CutAfter(n) => {
                                if forwarded >= n {
                                    let _ = client.shutdown(std::net::Shutdown::Both);
                                    let _ = server.shutdown(std::net::Shutdown::Both);
                                    break;
                                }
                                if client.write_all(&frame).is_err() {
                                    break;
                                }
                            }
                        }
                        forwarded += 1;
                    }
                });
            }
        });
        FaultProxy { addr }
    }
}

/// Reads one `[len][crc][payload]` frame's raw bytes, or None on EOF/error.
fn read_one_frame(stream: &mut TcpStream) -> Option<Vec<u8>> {
    let mut header = [0u8; mtc::store::frame::FRAME_HEADER];
    stream.read_exact(&mut header).ok()?;
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
    if len > mtc::store::frame::MAX_FRAME_LEN {
        return None;
    }
    let mut frame = header.to_vec();
    frame.resize(header.len() + len, 0);
    stream.read_exact(&mut frame[header.len()..]).ok()?;
    Some(frame)
}

/// Delayed, duplicated replies are invisible to correctness: the client
/// skips stale sequence numbers, the drivers see only clean outcomes, and
/// the collected history conforms exactly as without the proxy.
#[test]
fn delayed_and_duplicated_replies_are_harmless() {
    let spec = mt_spec(3, 20, 8, 72);
    let workload = generate_mt_workload(&spec);
    let server = NetServer::spawn(spec_for_label("sim-ser", spec.num_keys).unwrap()).unwrap();
    let proxy = FaultProxy::spawn(
        server.addr(),
        ReplyFault::DelayAndDuplicate(Duration::from_millis(1)),
    );
    let remote = NetBackend::connect(proxy.addr).unwrap();
    assert_eq!(remote.label(), "net/sim-ser");

    let (history, report) = ExecutionOptions::threaded().run(&remote, &workload);
    assert!(
        report.committed > 0,
        "duplicated/delayed replies starved the run"
    );
    assert_eq!(
        report.committed + report.failed,
        workload.txn_count(),
        "every template must resolve to committed or failed — never hang"
    );
    assert_conformant(remote.label(), &remote, &history);
    drop(remote);
    server.shutdown().unwrap();
}

/// A connection severed mid-stream surfaces typed reasons on every path:
/// `ConnectionLost` for in-flight operations (retryable, recordable) and
/// `CommitStatusUnknown` for a commit whose reply never arrived (neither).
#[test]
fn severed_connections_surface_typed_abort_reasons() {
    let server = NetServer::spawn(spec_for_label("sim-ser", 8).unwrap()).unwrap();
    // Generous allowance: Hello + Begin + one write go through, the cut
    // lands on the read that follows.
    let proxy = FaultProxy::spawn(server.addr(), ReplyFault::CutAfter(3));
    let opts = NetOptions {
        op_timeout: Duration::from_millis(500),
        ..NetOptions::default()
    };
    let remote = NetBackend::connect_with(proxy.addr, opts).unwrap();

    let mut t = remote.begin();
    t.write_register(mtc::history::Key(0), mtc::history::Value(1))
        .unwrap();
    let mut failed = None;
    for _ in 0..8 {
        if let Err(reason) = t.read_register(mtc::history::Key(1)) {
            failed = Some(reason);
            break;
        }
    }
    assert_eq!(
        failed,
        Some(AbortReason::ConnectionLost),
        "an operation on a severed connection must fail with ConnectionLost"
    );
    assert_eq!(t.abort(), AbortReason::ConnectionLost);

    // A commit whose reply the wire swallowed is ambiguous, not aborted:
    // Hello, Begin and the write's reply pass (3 frames), the cut lands on
    // the commit reply itself — the server has committed, we never hear it.
    let proxy = FaultProxy::spawn(server.addr(), ReplyFault::CutAfter(3));
    let opts = NetOptions {
        op_timeout: Duration::from_millis(500),
        ..NetOptions::default()
    };
    let remote = NetBackend::connect_with(proxy.addr, opts).unwrap();
    let mut t = remote.begin();
    t.write_register(mtc::history::Key(0), mtc::history::Value(2))
        .unwrap();
    let err = t.commit().unwrap_err();
    assert_eq!(
        err,
        AbortReason::CommitStatusUnknown,
        "a commit with no reply must be ambiguous, not a recorded abort"
    );
    assert!(!err.outcome_known());
    server.shutdown().unwrap();
}

/// The full mid-stream drop: a workload is running when every connection
/// dies (server gone). The drivers finish cleanly, ambiguous commits stay
/// out of the history, and the streaming verdict over what *was* recorded
/// is bit-identical to a fault-free replay of the same history.
#[test]
fn server_death_mid_stream_keeps_the_recorded_history_verifiable() {
    let spec = mt_spec(4, 400, 8, 73);
    let workload = generate_mt_workload(&spec);
    let server = NetServer::spawn(spec_for_label("sim-ser", spec.num_keys).unwrap()).unwrap();
    let opts = NetOptions {
        op_timeout: Duration::from_millis(500),
        connect_timeout: Duration::from_millis(500),
        ..NetOptions::default()
    };
    let remote = NetBackend::connect_with(server.addr(), opts).unwrap();

    // Kill the server from a side thread once the run is mid-stream.
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(120));
        server.shutdown().unwrap();
    });
    let (history, report) = ExecutionOptions::threaded().run(&remote, &workload);
    killer.join().unwrap();

    assert!(report.committed > 0, "nothing committed before the death");
    assert!(report.failed > 0, "the server cannot have died mid-stream");

    // Verdict must be reproducible bit-for-bit on a clean replay.
    for level in LEVELS {
        let first = check_streaming(level, &history).unwrap();
        let replay = check_streaming(level, &history).unwrap();
        let sharded = check_streaming_sharded(level, &history, 3, 16).unwrap();
        assert_eq!(first, replay, "{level}: replay verdict diverged");
        assert_eq!(first, sharded, "{level}: sharded verdict diverged");
        assert_eq!(
            batch_check(level, &history).is_violated(),
            first.is_violated(),
            "{level}: streaming disagrees with batch"
        );
    }
    // And the partial history must still satisfy what the engine promises.
    assert!(
        batch_check(IsolationLevel::StrictSerializability, &history).is_satisfied(),
        "a partial history of a strict-serializable engine must stay clean"
    );
}
