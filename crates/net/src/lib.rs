//! # mtc-net
//!
//! The remote system-under-test layer: any fleet engine
//! ([`mtc_dbsim::BackendSpec`]) served over TCP, and a client-side
//! [`mtc_dbsim::DbBackend`] that lets every driver, the conformance suite,
//! the experiment matrix and the bench gate talk to it as if it were
//! in-process — with real network latency, reordering and connection loss
//! in the path.
//!
//! The paper's end-to-end claim is black-box checking of a *networked*
//! database; until this crate, every backend lived in the checker's own
//! address space. The wire format is deliberately not new: each message is
//! one CRC-framed [`mtc_store::binval`] record, the exact encoding the
//! durable history log already uses, so corrupt or truncated traffic is
//! rejected by the same code paths recovery trusts (see [`proto`]).
//!
//! * [`proto`] — envelopes, request/reply enums, framed send/recv;
//! * [`server`] — [`serve`] accept loop, [`NetServer`] in-process harness,
//!   and the `mtc_net_server` binary's engine table;
//! * [`client`] — [`NetBackend`]/[`NetTxn`] with connection pooling,
//!   per-op timeouts and typed I/O failure mapping
//!   ([`AbortReason::ConnectionLost`] before commit,
//!   [`AbortReason::CommitStatusUnknown`] after — see
//!   `AbortReason::outcome_known` for why the distinction matters to the
//!   recorded histories).
//!
//! [`AbortReason::ConnectionLost`]: mtc_dbsim::AbortReason::ConnectionLost
//! [`AbortReason::CommitStatusUnknown`]: mtc_dbsim::AbortReason::CommitStatusUnknown

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;

pub use client::{NetBackend, NetOptions, NetTxn};
pub use proto::TenantStatus;
pub use server::{serve, spec_for_label, NetServer};

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_core::IsolationLevel;
    use mtc_dbsim::{BackendSpec, DbBackend};
    use mtc_history::{Key, Value};

    #[test]
    fn loopback_round_trip_commits_and_reads_back() {
        let server = NetServer::spawn(spec_for_label("sim-ser", 4).unwrap()).unwrap();
        let backend = NetBackend::connect(server.addr()).unwrap();
        assert_eq!(backend.label(), "net/sim-ser");
        assert!(backend.promises(IsolationLevel::StrictSerializability));

        let mut t = backend.begin();
        t.write_register(Key(0), Value(7)).unwrap();
        let info = t.commit().unwrap();
        assert!(info.commit_ts > 0);
        assert!(backend.now() >= info.commit_ts);

        let mut t = backend.begin();
        assert_eq!(t.read_register(Key(0)).unwrap(), Value(7));
        t.append(Key(1), Value(1)).unwrap();
        t.append(Key(1), Value(2)).unwrap();
        assert_eq!(t.read_list(Key(1)).unwrap(), vec![Value(1), Value(2)]);
        assert_eq!(t.abort(), mtc_dbsim::AbortReason::UserAbort);

        // The abort rolled the appends back.
        let mut t = backend.begin();
        assert_eq!(t.read_list(Key(1)).unwrap(), Vec::<Value>::new());
        t.commit().unwrap();
        server.shutdown().unwrap();
    }

    #[test]
    fn a_dead_server_dooms_transactions_instead_of_panicking() {
        let server = NetServer::spawn(BackendSpec::TwoPl).unwrap();
        let addr = server.addr();
        let backend = NetBackend::connect(addr).unwrap();
        server.shutdown().unwrap();

        let mut t = backend.begin();
        let err = t.read_register(Key(0)).unwrap_err();
        assert_eq!(err, mtc_dbsim::AbortReason::ConnectionLost);
        assert_eq!(t.abort(), mtc_dbsim::AbortReason::ConnectionLost);
    }

    #[test]
    fn dropped_connections_leave_no_server_side_locks() {
        // A client that vanishes mid-transaction (handle dropped, socket
        // closed) must not wedge a lock-holding engine: the handler aborts
        // leftovers, so a second client can lock the same key.
        let server = NetServer::spawn(BackendSpec::TwoPl).unwrap();
        let backend = NetBackend::connect(server.addr()).unwrap();
        {
            let mut t = backend.begin();
            t.write_register(Key(5), Value(1)).unwrap();
            drop(t); // no abort: simulates a crashed client
        }
        drop(backend); // closes the pooled connection under the server
        let fresh = NetBackend::connect(server.addr()).unwrap();
        let mut t = fresh.begin();
        // May need a moment for the server to notice the closed socket.
        let mut attempts = 0;
        loop {
            match t.write_register(Key(5), Value(2)) {
                Ok(()) => break,
                Err(e) => {
                    assert!(attempts < 100, "lock never released: {e}");
                    attempts += 1;
                    let _ = t.abort();
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    t = fresh.begin();
                }
            }
        }
        t.commit().unwrap();
        server.shutdown().unwrap();
    }
}
