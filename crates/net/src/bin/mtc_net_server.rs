//! Standalone server: one fleet engine behind the framed TCP protocol.
//!
//! ```text
//! mtc_net_server <engine-label> [--addr 127.0.0.1:0] [--keys 64]
//! ```
//!
//! Prints `listening on <addr>` (flushed) once bound, so a parent process
//! can scrape the ephemeral port, then serves until killed. Engine labels
//! are the fleet's: `sim-ser`, `sim-si`, `sim-rc`, `2pl`, `weak-rc`,
//! `weak-ru`.

use mtc_net::server::{serve, spec_for_label};
use std::io::Write;
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::atomic::AtomicBool;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut label: Option<String> = None;
    let mut addr = "127.0.0.1:0".to_string();
    let mut keys: u64 = 64;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" if i + 1 < args.len() => {
                addr = args[i + 1].clone();
                i += 2;
            }
            "--keys" if i + 1 < args.len() => {
                keys = match args[i + 1].parse() {
                    Ok(n) => n,
                    Err(_) => return usage("--keys takes a number"),
                };
                i += 2;
            }
            flag if flag.starts_with("--") => return usage(&format!("unknown flag {flag}")),
            engine if label.is_none() => {
                label = Some(engine.to_string());
                i += 1;
            }
            extra => return usage(&format!("unexpected argument {extra}")),
        }
    }

    let Some(label) = label else {
        return usage("an engine label is required");
    };
    let Some(spec) = spec_for_label(&label, keys) else {
        return usage(&format!("unknown engine label {label:?}"));
    };

    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("mtc_net_server: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let local = listener
        .local_addr()
        .expect("bound listener has an address");
    println!("listening on {local}");
    let _ = std::io::stdout().flush();

    let backend = spec.build();
    let shutdown = AtomicBool::new(false); // runs until killed
    match serve(backend.as_ref(), listener, &shutdown) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mtc_net_server: accept loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!(
        "mtc_net_server: {problem}\n\
         usage: mtc_net_server <engine-label> [--addr 127.0.0.1:0] [--keys 64]\n\
         engine labels: sim-ser sim-si sim-rc 2pl weak-rc weak-ru"
    );
    ExitCode::FAILURE
}
