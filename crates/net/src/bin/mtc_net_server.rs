//! Standalone server: one fleet engine behind the framed TCP protocol.
//!
//! ```text
//! mtc_net_server <engine-label> [--addr 127.0.0.1:0] [--keys 64]
//! mtc_net_server --metrics-json --addr HOST:PORT
//! ```
//!
//! Prints `listening on <addr>` (flushed) once bound, so a parent process
//! can scrape the ephemeral port, then serves until killed. Engine labels
//! are the fleet's: `sim-ser`, `sim-si`, `sim-rc`, `2pl`, `weak-rc`,
//! `weak-ru`.
//!
//! Observability is on: metric recording is enabled, structured one-line
//! JSON events (startup, connection-accepted) go to stderr, and a running
//! server answers `Request::MetricsSnapshot` on its ordinary port. The
//! `--metrics-json` mode is the matching scraper — it dials `--addr`,
//! fetches one snapshot, prints it as JSON on stdout and exits.

use mtc_net::proto::{self, Reply, ReplyEnvelope, Request, RequestEnvelope};
use mtc_net::server::{serve, spec_for_label};
use mtc_obs::events::JsonValue;
use serde::Serialize as _;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::AtomicBool;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut label: Option<String> = None;
    let mut addr = "127.0.0.1:0".to_string();
    let mut keys: u64 = 64;
    let mut metrics_json = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" if i + 1 < args.len() => {
                addr = args[i + 1].clone();
                i += 2;
            }
            "--keys" if i + 1 < args.len() => {
                keys = match args[i + 1].parse() {
                    Ok(n) => n,
                    Err(_) => return usage("--keys takes a number"),
                };
                i += 2;
            }
            "--metrics-json" => {
                metrics_json = true;
                i += 1;
            }
            flag if flag.starts_with("--") => return usage(&format!("unknown flag {flag}")),
            engine if label.is_none() => {
                label = Some(engine.to_string());
                i += 1;
            }
            extra => return usage(&format!("unexpected argument {extra}")),
        }
    }

    if metrics_json {
        return match scrape_metrics(&addr) {
            Ok(json) => {
                println!("{json}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("mtc_net_server: cannot scrape {addr}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let Some(label) = label else {
        return usage("an engine label is required");
    };
    let Some(spec) = spec_for_label(&label, keys) else {
        return usage(&format!("unknown engine label {label:?}"));
    };

    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("mtc_net_server: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let local = listener
        .local_addr()
        .expect("bound listener has an address");
    println!("listening on {local}");
    let _ = std::io::stdout().flush();

    mtc_obs::set_enabled(true);
    mtc_obs::events::log_to_stderr();
    mtc_obs::events::emit(
        "startup",
        &[
            ("role", JsonValue::Str("execution".to_string())),
            ("addr", JsonValue::Str(local.to_string())),
            ("engine", JsonValue::Str(label.clone())),
            ("keys", JsonValue::U64(keys)),
        ],
    );

    let backend = spec.build();
    let shutdown = AtomicBool::new(false); // runs until killed
    match serve(backend.as_ref(), listener, &shutdown) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mtc_net_server: accept loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Dials a running server, fetches one [`Request::MetricsSnapshot`], and
/// renders the reply as one JSON document.
fn scrape_metrics(addr: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    proto::send(
        &mut stream,
        &RequestEnvelope {
            seq: 0,
            request: Request::MetricsSnapshot,
        },
    )?;
    let env: ReplyEnvelope = proto::recv(&mut stream)?;
    match env.reply {
        Reply::Metrics(snapshot) => {
            let mut out = String::new();
            snapshot.to_json_value().render(&mut out);
            Ok(out)
        }
        Reply::Error(e) => Err(std::io::Error::other(e)),
        other => Err(std::io::Error::other(format!(
            "unexpected reply to MetricsSnapshot: {other:?}"
        ))),
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!(
        "mtc_net_server: {problem}\n\
         usage: mtc_net_server <engine-label> [--addr 127.0.0.1:0] [--keys 64]\n\
         \u{20}      mtc_net_server --metrics-json --addr HOST:PORT\n\
         engine labels: sim-ser sim-si sim-rc 2pl weak-rc weak-ru"
    );
    ExitCode::FAILURE
}
