//! The wire protocol: CRC-framed binval records over a byte stream.
//!
//! Every message is one [`mtc_store::frame`] frame —
//! `[len u32 LE][crc32 u32 LE][payload]` — whose payload is the
//! [`mtc_store::binval`] encoding of a [`RequestEnvelope`] or
//! [`ReplyEnvelope`]. Nothing here is new format: the network reuses the
//! exact record encoding the durable history log already trusts, so a
//! corrupt or truncated message surfaces as the same
//! [`FrameError`]/decode errors recovery already distinguishes.
//!
//! Envelopes carry a per-connection sequence number assigned by the client;
//! the server echoes it on the reply. A client waiting for reply `n`
//! discards any reply with a *smaller* sequence number (a duplicate or a
//! stale reply to an earlier request that already timed out on our side)
//! and treats a *larger* one as a protocol violation — that asymmetry is
//! what makes delayed and duplicated replies harmless (see the wire-fault
//! conformance tests). Every reply also carries the server's logical clock,
//! which the client caches to answer [`DbBackend::now`] locally.
//!
//! [`DbBackend::now`]: mtc_dbsim::DbBackend::now

use mtc_core::IsolationLevel;
use mtc_dbsim::{AbortReason, IngestEvent};
use mtc_history::{Key, Value};
use mtc_store::frame::{read_frame, write_frame, FrameError, FRAME_HEADER, MAX_FRAME_LEN};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Protocol version; bumped on any incompatible message change. The
/// `Hello` exchange rejects mismatched peers instead of misdecoding them.
/// Version 2 added the verification-service role (`OpenTenant` / `Ingest` /
/// `TenantStatus` / `CloseTenant` and their replies).
pub const PROTOCOL_VERSION: u32 = 2;

/// A client request, wrapped in a [`RequestEnvelope`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Handshake: version check, engine label and promise discovery.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Begin a transaction; `retry_of` carries the first attempt's begin
    /// timestamp on retries (wait-die ageing, see `DbBackend::begin_retry`).
    Begin {
        /// The first attempt's begin timestamp, if this is a retry.
        retry_of: Option<u64>,
    },
    /// Read the register at `key` in transaction `txn`.
    Read {
        /// Transaction id from [`Reply::Begun`].
        txn: u64,
        /// Register to read.
        key: Key,
    },
    /// Write `value` to the register at `key` in transaction `txn`.
    Write {
        /// Transaction id from [`Reply::Begun`].
        txn: u64,
        /// Register to write.
        key: Key,
        /// Value to write.
        value: Value,
    },
    /// Read the list at `key` in transaction `txn`.
    ReadList {
        /// Transaction id from [`Reply::Begun`].
        txn: u64,
        /// List to read.
        key: Key,
    },
    /// Append `element` to the list at `key` in transaction `txn`.
    Append {
        /// Transaction id from [`Reply::Begun`].
        txn: u64,
        /// List to append to.
        key: Key,
        /// Element to append.
        element: Value,
    },
    /// Attempt to commit transaction `txn`.
    Commit {
        /// Transaction id from [`Reply::Begun`].
        txn: u64,
    },
    /// Roll transaction `txn` back.
    Abort {
        /// Transaction id from [`Reply::Begun`].
        txn: u64,
    },
    /// Clock read; the answer rides in the envelope's `now` field.
    Now,
    /// **Service role.** Open (or resume) the named verification tenant.
    /// Execution servers answer service-role requests with [`Reply::Error`];
    /// only `mtc-service` daemons accept them.
    OpenTenant {
        /// Tenant name — also its per-tenant WAL directory name.
        tenant: String,
        /// Isolation level the tenant's stream is checked against.
        level: IsolationLevel,
        /// Pre-initialized key space of the tenant's database.
        num_keys: u64,
    },
    /// **Service role.** Feed a batch of finished transaction attempts into
    /// tenant `tenant`'s ingest queue. Admission is all-or-nothing: either
    /// the whole batch is queued ([`Reply::Ingested`]) or none of it is
    /// ([`Reply::Backpressure`]) — events are never silently dropped.
    Ingest {
        /// Tenant id from [`Reply::TenantOpened`].
        tenant: u64,
        /// The finished attempts, in session order.
        events: Vec<IngestEvent>,
    },
    /// **Service role.** Live verdict/lag/queue/RSS statistics for tenant
    /// `tenant`.
    TenantStatus {
        /// Tenant id from [`Reply::TenantOpened`].
        tenant: u64,
    },
    /// **Service role.** Drain, checkpoint and close tenant `tenant`,
    /// returning its final verdict summary.
    CloseTenant {
        /// Tenant id from [`Reply::TenantOpened`].
        tenant: u64,
    },
    /// Scrape the server's metric registry ([`Reply::Metrics`]). Answered
    /// by both execution servers and service daemons; all-zero metrics
    /// with `enabled: false` mean the server never turned observability
    /// on. Still protocol version 2: the externally-tagged envelope
    /// encoding makes added variants wire-compatible — an old server
    /// answers an unknown tag with [`Reply::Error`], not a misdecode.
    MetricsSnapshot,
}

impl Request {
    /// Short stable label of the request kind, used as the per-op metric
    /// name suffix in `net.call_micros.<label>`.
    pub fn label(&self) -> &'static str {
        match self {
            Request::Hello { .. } => "hello",
            Request::Begin { .. } => "begin",
            Request::Read { .. } => "read",
            Request::Write { .. } => "write",
            Request::ReadList { .. } => "read_list",
            Request::Append { .. } => "append",
            Request::Commit { .. } => "commit",
            Request::Abort { .. } => "abort",
            Request::Now => "now",
            Request::OpenTenant { .. } => "open_tenant",
            Request::Ingest { .. } => "ingest",
            Request::TenantStatus { .. } => "tenant_status",
            Request::CloseTenant { .. } => "close_tenant",
            Request::MetricsSnapshot => "metrics_snapshot",
        }
    }
}

/// A server reply, wrapped in a [`ReplyEnvelope`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Reply {
    /// Handshake answer: the server's protocol version, the wrapped
    /// engine's label, and the isolation levels it promises.
    Hello {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
        /// The wrapped engine's label (`"sim-ser"`, `"2pl"`, …).
        label: String,
        /// The isolation levels the engine promises.
        promised: Vec<IsolationLevel>,
    },
    /// A transaction is open: its connection-local id and its begin
    /// timestamp on the engine's logical clock.
    Begun {
        /// Connection-local transaction id for subsequent requests.
        txn: u64,
        /// Begin timestamp on the engine's logical clock.
        begin_ts: u64,
    },
    /// A register read's result.
    Value(Value),
    /// A list read's result.
    Values(Vec<Value>),
    /// A write, append, abort or clock read went through.
    Done,
    /// The transaction committed at `commit_ts`.
    Committed {
        /// Commit timestamp on the engine's logical clock.
        commit_ts: u64,
    },
    /// The operation (or commit) aborted the transaction.
    Aborted(AbortReason),
    /// Protocol-level failure (unknown transaction id, bad handshake).
    /// The connection is not usable for the affected transaction.
    Error(String),
    /// **Service role.** The tenant is open; answer to
    /// [`Request::OpenTenant`].
    TenantOpened {
        /// Tenant id for subsequent `Ingest`/`TenantStatus`/`CloseTenant`.
        tenant: u64,
        /// Transactions already durable in the tenant's WAL (non-zero when
        /// the open resumed an existing tenant directory).
        resumed_txns: u64,
        /// Whether the resume restarted from a checkpoint snapshot (as
        /// opposed to a scratch replay of the log).
        from_checkpoint: bool,
    },
    /// **Service role.** The whole `Ingest` batch was admitted to the
    /// tenant's queue.
    Ingested {
        /// Events admitted (the batch size).
        accepted: u64,
    },
    /// **Service role.** The tenant's bounded queue cannot take the batch;
    /// nothing was admitted. The client should drain/wait and retry —
    /// backpressure, not loss.
    Backpressure {
        /// Events currently queued for the tenant.
        queue_depth: u64,
        /// The tenant's queue capacity.
        queue_cap: u64,
    },
    /// **Service role.** Live statistics; answer to
    /// [`Request::TenantStatus`].
    TenantStat(TenantStatus),
    /// The server's metric registry at scrape time; answer to
    /// [`Request::MetricsSnapshot`].
    Metrics(mtc_obs::MetricsSnapshot),
    /// **Service role.** Final verdict summary; answer to
    /// [`Request::CloseTenant`].
    TenantClosed {
        /// Transactions the tenant's checker consumed over its lifetime.
        checked: u64,
        /// Whether an isolation violation latched.
        violated: bool,
        /// Index of the first violating transaction (excluding `⊥T`).
        first_violation_at: Option<u64>,
    },
}

/// Live per-tenant statistics, carried by [`Reply::TenantStat`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TenantStatus {
    /// Tenant name.
    pub name: String,
    /// Events admitted to the queue over the tenant's lifetime (including
    /// any recovered from the WAL on resume).
    pub ingested: u64,
    /// Transactions the checker has consumed (excluding `⊥T`). The
    /// tenant's ingest lag is `ingested - checked`.
    pub checked: u64,
    /// Events currently queued, not yet consumed by the checker.
    pub queue_depth: u64,
    /// The bounded queue's capacity.
    pub queue_cap: u64,
    /// `Ingest` batches refused with [`Reply::Backpressure`] so far.
    pub backpressured: u64,
    /// Whether an isolation violation has latched.
    pub violated: bool,
    /// Index of the first violating transaction, once latched.
    pub first_violation_at: Option<u64>,
    /// Transactions currently resident in the checker (bounded by the GC
    /// window in steady state).
    pub live_txns: u64,
    /// Checkpoints written to the tenant's WAL so far.
    pub checkpoints: u64,
    /// The daemon process's peak resident set (`VmHWM`), in KiB — process
    /// wide, reported identically for every tenant.
    pub rss_kb: u64,
    /// 99th-percentile WAL append latency for this tenant, in
    /// microseconds. Zero until the daemon enables observability (the
    /// per-sink histogram records only while the global switch is on).
    pub wal_append_p99_micros: u64,
    /// Microseconds since the tenant's newest checkpoint finished —
    /// `None` before the first checkpoint. A growing age under steady
    /// ingest is the signature of a stalled WAL.
    pub last_checkpoint_age_micros: Option<u64>,
    /// Failed persistence-sink operations. Non-zero means the durability
    /// guarantee only covers the prefix persisted before the first error
    /// (verification itself continues).
    pub sink_errors: u64,
}

/// A sequenced client request.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RequestEnvelope {
    /// Client-assigned, strictly increasing per connection.
    pub seq: u64,
    /// The request proper.
    pub request: Request,
}

/// A sequenced server reply.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReplyEnvelope {
    /// Echo of the request's sequence number.
    pub seq: u64,
    /// The server engine's logical clock after executing the request.
    pub now: u64,
    /// The reply proper.
    pub reply: Reply,
}

/// Encodes `msg` as one frame and writes it to `w`.
pub fn send<T: Serialize, W: Write>(w: &mut W, msg: &T) -> std::io::Result<()> {
    let payload = mtc_store::binval::to_bytes(msg);
    let mut buf = Vec::with_capacity(FRAME_HEADER + payload.len());
    write_frame(&mut buf, &payload);
    w.write_all(&buf)?;
    w.flush()
}

/// Reads one frame from `r` and decodes it.
///
/// Corrupt frames (checksum mismatch, absurd length) and undecodable
/// payloads map to [`std::io::ErrorKind::InvalidData`]; a cleanly closed
/// peer surfaces as `UnexpectedEof` from the underlying reads.
pub fn recv<T: Deserialize, R: Read>(r: &mut R) -> std::io::Result<T> {
    let mut buf = vec![0u8; FRAME_HEADER];
    r.read_exact(&mut buf)?;
    let len = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_LEN {
        return Err(invalid_data(FrameError::Corrupt));
    }
    buf.resize(FRAME_HEADER + len, 0);
    r.read_exact(&mut buf[FRAME_HEADER..])?;
    // Re-run the store's own frame reader over the reassembled bytes so
    // the CRC check is the exact one the durable log uses.
    let mut pos = 0;
    let payload = read_frame(&buf, &mut pos).map_err(invalid_data)?;
    mtc_store::binval::from_bytes(payload).map_err(invalid_data)
}

fn invalid_data<E: std::error::Error + Send + Sync + 'static>(e: E) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelopes_round_trip_through_the_frame() {
        let reqs = vec![
            Request::Hello {
                version: PROTOCOL_VERSION,
            },
            Request::Begin { retry_of: None },
            Request::Begin { retry_of: Some(42) },
            Request::Read {
                txn: 7,
                key: Key(3),
            },
            Request::Write {
                txn: 7,
                key: Key(3),
                value: Value(91),
            },
            Request::Append {
                txn: 7,
                key: Key(0),
                element: Value(u64::MAX),
            },
            Request::Commit { txn: 7 },
            Request::Abort { txn: 8 },
            Request::Now,
            Request::OpenTenant {
                tenant: "acct-7".to_string(),
                level: IsolationLevel::SnapshotIsolation,
                num_keys: 64,
            },
            Request::Ingest {
                tenant: 3,
                events: vec![IngestEvent::timed(
                    2,
                    vec![mtc_history::Op::write(Key(1), Value(9))],
                    mtc_history::TxnStatus::Committed,
                    10,
                    12,
                )],
            },
            Request::TenantStatus { tenant: 3 },
            Request::CloseTenant { tenant: 3 },
            Request::MetricsSnapshot,
        ];
        let mut wire = Vec::new();
        for (i, request) in reqs.iter().enumerate() {
            send(
                &mut wire,
                &RequestEnvelope {
                    seq: i as u64,
                    request: request.clone(),
                },
            )
            .unwrap();
        }
        let mut r = wire.as_slice();
        for (i, request) in reqs.iter().enumerate() {
            let env: RequestEnvelope = recv(&mut r).unwrap();
            assert_eq!(env.seq, i as u64);
            assert_eq!(&env.request, request);
        }

        let replies = vec![
            Reply::Hello {
                version: PROTOCOL_VERSION,
                label: "2pl".to_string(),
                promised: vec![IsolationLevel::Serializability],
            },
            Reply::Begun {
                txn: 1,
                begin_ts: 10,
            },
            Reply::Value(Value(5)),
            Reply::Values(vec![Value(1), Value(2)]),
            Reply::Done,
            Reply::Committed { commit_ts: 12 },
            Reply::Aborted(AbortReason::Deadlock),
            Reply::Error("unknown txn".to_string()),
            Reply::TenantOpened {
                tenant: 3,
                resumed_txns: 17,
                from_checkpoint: true,
            },
            Reply::Ingested { accepted: 5 },
            Reply::Backpressure {
                queue_depth: 1024,
                queue_cap: 1024,
            },
            Reply::TenantStat(TenantStatus {
                name: "acct-7".to_string(),
                ingested: 100,
                checked: 98,
                queue_depth: 2,
                queue_cap: 1024,
                backpressured: 1,
                violated: false,
                first_violation_at: None,
                live_txns: 40,
                checkpoints: 3,
                rss_kb: 12345,
                wal_append_p99_micros: 87,
                last_checkpoint_age_micros: Some(250_000),
                sink_errors: 0,
            }),
            Reply::Metrics(mtc_obs::MetricsSnapshot {
                enabled: true,
                counters: vec![("net.connection_lost".to_string(), 2)],
                gauges: vec![("service.tenants_open".to_string(), 3)],
                histograms: vec![(
                    "store.wal_append_micros".to_string(),
                    mtc_obs::HistogramSnapshot {
                        count: 10,
                        sum: 1000,
                        min: 50,
                        max: 200,
                        p50: 100,
                        p90: 180,
                        p99: 200,
                        buckets: vec![(50, 4), (101, 6)],
                    },
                )],
            }),
            Reply::TenantClosed {
                checked: 100,
                violated: true,
                first_violation_at: Some(61),
            },
        ];
        for reply in replies {
            let mut wire = Vec::new();
            send(
                &mut wire,
                &ReplyEnvelope {
                    seq: 3,
                    now: 99,
                    reply: reply.clone(),
                },
            )
            .unwrap();
            let env: ReplyEnvelope = recv(&mut wire.as_slice()).unwrap();
            assert_eq!(env.now, 99);
            assert_eq!(env.reply, reply);
        }
    }

    #[test]
    fn corrupt_and_truncated_messages_are_clean_io_errors() {
        let mut wire = Vec::new();
        send(
            &mut wire,
            &RequestEnvelope {
                seq: 0,
                request: Request::Now,
            },
        )
        .unwrap();

        // Flip a payload bit: CRC mismatch → InvalidData.
        let mut bad = wire.clone();
        *bad.last_mut().unwrap() ^= 0x40;
        let err = recv::<RequestEnvelope, _>(&mut bad.as_slice()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

        // Every strict prefix: UnexpectedEof, never a panic.
        for cut in 0..wire.len() {
            let err = recv::<RequestEnvelope, _>(&mut &wire[..cut]).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "cut={cut}");
        }

        // An absurd length field must not allocate: Corrupt → InvalidData.
        let mut huge = (u32::MAX).to_le_bytes().to_vec();
        huge.extend_from_slice(&[0u8; 4]);
        let err = recv::<RequestEnvelope, _>(&mut huge.as_slice()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
