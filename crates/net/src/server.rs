//! The server side: any [`DbBackend`] behind a TCP listener.
//!
//! [`serve`] runs an accept loop and one handler thread per connection
//! inside a [`std::thread::scope`], so handlers can hold open transactions
//! (`Box<dyn DbTxn + '_>`) against the borrowed engine. A connection that
//! drops — cleanly or mid-transaction — has its leftover transactions
//! explicitly aborted before the handler exits: engines like the weak MVCC
//! store do not clean up on `Drop`, and a crashed client must never leave
//! locks or uncommitted versions behind on the server.
//!
//! [`NetServer`] is the in-process convenience wrapper the tests and
//! benches use: it binds an ephemeral loopback port, builds a fresh engine
//! from a [`BackendSpec`] on its own thread, and shuts the loop down on
//! drop.

use crate::proto::{self, Reply, Request, RequestEnvelope, PROTOCOL_VERSION};
use mtc_core::IsolationLevel;
use mtc_dbsim::{BackendSpec, DbBackend, DbTxn};
use mtc_obs::events::JsonValue;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The three levels a `Hello` reply may promise.
const LEVELS: [IsolationLevel; 3] = [
    IsolationLevel::SnapshotIsolation,
    IsolationLevel::Serializability,
    IsolationLevel::StrictSerializability,
];

/// Serves `backend` on `listener` until `shutdown` becomes true.
///
/// Each accepted connection gets its own handler thread; the accept loop
/// polls the shutdown flag every few milliseconds (the listener is switched
/// to non-blocking mode for that). Returns when the flag is set and every
/// handler has finished.
pub fn serve(
    backend: &dyn DbBackend,
    listener: TcpListener,
    shutdown: &AtomicBool,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    std::thread::scope(|scope| {
        while !shutdown.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((stream, peer)) => {
                    mtc_obs::gauge!("net.connections_open").add(1);
                    mtc_obs::events::emit(
                        "connection-accepted",
                        &[
                            ("role", JsonValue::Str("execution".to_string())),
                            ("peer", JsonValue::Str(peer.to_string())),
                        ],
                    );
                    scope.spawn(move || {
                        handle_connection(backend, stream, shutdown);
                        mtc_obs::gauge!("net.connections_open").sub(1);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    })
}

/// One connection: decode requests, run them against `backend`, reply.
/// Exits on any I/O or decode error (the client will re-dial) or when the
/// server shuts down, aborting whatever transactions the connection still
/// holds.
fn handle_connection(backend: &dyn DbBackend, mut stream: TcpStream, shutdown: &AtomicBool) {
    let _ = stream.set_nodelay(true);
    // Connection-local transaction table. Ids are connection-local counters
    // rather than begin timestamps so a retry (which *reuses* its first
    // attempt's timestamp) can never collide with a live transaction.
    let mut txns: HashMap<u64, Box<dyn DbTxn + '_>> = HashMap::new();
    let mut next_txn_id: u64 = 1;

    while !shutdown.load(Ordering::Acquire) {
        // Idle phase: `peek` with a short timeout so the handler notices
        // server shutdown without consuming (and on timeout, losing) any
        // frame bytes.
        if stream
            .set_read_timeout(Some(Duration::from_millis(20)))
            .is_err()
        {
            break;
        }
        match stream.peek(&mut [0u8; 1]) {
            Ok(0) => break, // peer closed cleanly
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
        // A frame has started: read it whole, allowing the peer a bounded
        // stall (a client dribbling a frame slower than this is treated as
        // gone — it will surface a `ConnectionLost` on its side).
        if stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .is_err()
        {
            break;
        }
        let env: RequestEnvelope = match proto::recv(&mut stream) {
            Ok(env) => env,
            Err(_) => break,
        };
        let reply = execute(backend, &mut txns, &mut next_txn_id, env.request);
        let reply_env = proto::ReplyEnvelope {
            seq: env.seq,
            now: backend.now(),
            reply,
        };
        if proto::send(&mut stream, &reply_env).is_err() {
            break;
        }
    }
    for (_, txn) in txns.drain() {
        let _ = txn.abort();
    }
}

fn execute<'b>(
    backend: &'b dyn DbBackend,
    txns: &mut HashMap<u64, Box<dyn DbTxn + 'b>>,
    next_txn_id: &mut u64,
    request: Request,
) -> Reply {
    match request {
        Request::Hello { version } => {
            if version != PROTOCOL_VERSION {
                return Reply::Error(format!(
                    "protocol version mismatch: client {version}, server {PROTOCOL_VERSION}"
                ));
            }
            Reply::Hello {
                version: PROTOCOL_VERSION,
                label: backend.label().to_string(),
                promised: LEVELS
                    .into_iter()
                    .filter(|&l| backend.promises(l))
                    .collect(),
            }
        }
        Request::Begin { retry_of } => {
            let handle = match retry_of {
                None => backend.begin(),
                Some(ts) => backend.begin_retry(ts),
            };
            let begin_ts = handle.begin_ts();
            let txn = *next_txn_id;
            *next_txn_id += 1;
            txns.insert(txn, handle);
            Reply::Begun { txn, begin_ts }
        }
        Request::Read { txn, key } => match txns.get_mut(&txn) {
            None => unknown_txn(txn),
            Some(handle) => match handle.read_register(key) {
                Ok(value) => Reply::Value(value),
                Err(reason) => Reply::Aborted(reason),
            },
        },
        Request::Write { txn, key, value } => match txns.get_mut(&txn) {
            None => unknown_txn(txn),
            Some(handle) => match handle.write_register(key, value) {
                Ok(()) => Reply::Done,
                Err(reason) => Reply::Aborted(reason),
            },
        },
        Request::ReadList { txn, key } => match txns.get_mut(&txn) {
            None => unknown_txn(txn),
            Some(handle) => match handle.read_list(key) {
                Ok(values) => Reply::Values(values),
                Err(reason) => Reply::Aborted(reason),
            },
        },
        Request::Append { txn, key, element } => match txns.get_mut(&txn) {
            None => unknown_txn(txn),
            Some(handle) => match handle.append(key, element) {
                Ok(()) => Reply::Done,
                Err(reason) => Reply::Aborted(reason),
            },
        },
        Request::Commit { txn } => match txns.remove(&txn) {
            None => unknown_txn(txn),
            Some(handle) => match handle.commit() {
                Ok(info) => Reply::Committed {
                    commit_ts: info.commit_ts,
                },
                Err(reason) => Reply::Aborted(reason),
            },
        },
        Request::Abort { txn } => match txns.remove(&txn) {
            None => unknown_txn(txn),
            Some(handle) => {
                let _ = handle.abort();
                Reply::Done
            }
        },
        Request::Now => Reply::Done,
        Request::MetricsSnapshot => Reply::Metrics(mtc_obs::registry().snapshot()),
        // Service-role requests (tenant streams) belong to `mtc-service`
        // daemons; an execution server refuses them explicitly rather than
        // misdecoding or hanging.
        Request::OpenTenant { .. }
        | Request::Ingest { .. }
        | Request::TenantStatus { .. }
        | Request::CloseTenant { .. } => {
            Reply::Error("this is an execution server, not a verification service".to_string())
        }
    }
}

fn unknown_txn(txn: u64) -> Reply {
    Reply::Error(format!("unknown transaction id {txn}"))
}

/// Resolves a fleet label (`"sim-ser"`, `"2pl"`, `"weak-rc"`, …) to its
/// [`BackendSpec`]; the inverse of [`BackendSpec::label`] over the default
/// fleet. `num_keys` sizes the simulator's pre-initialized key space.
pub fn spec_for_label(label: &str, num_keys: u64) -> Option<BackendSpec> {
    BackendSpec::fleet(num_keys)
        .into_iter()
        .find(|spec| spec.label() == label)
}

/// An in-process server on an ephemeral loopback port: the harness the
/// conformance tests, the bench gate and the crash smoke build on.
///
/// The engine is built fresh from the spec on the server thread; dropping
/// the handle (or calling [`NetServer::shutdown`]) stops the accept loop
/// and joins the thread.
pub struct NetServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<io::Result<()>>>,
}

impl NetServer {
    /// Binds `127.0.0.1:0` and serves a fresh `spec` engine on a new thread.
    pub fn spawn(spec: BackendSpec) -> io::Result<NetServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::spawn(move || {
            let backend = spec.build();
            serve(backend.as_ref(), listener, &flag)
        });
        Ok(NetServer {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The server's loopback address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.stop()
    }

    fn stop(&mut self) -> io::Result<()> {
        self.shutdown.store(true, Ordering::Release);
        match self.handle.take() {
            Some(handle) => handle
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("server thread panicked"))),
            None => Ok(()),
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        let _ = self.stop();
    }
}
