//! The client side: a [`DbBackend`] that talks to a remote server.
//!
//! [`NetBackend::connect`] dials the server, handshakes (version check,
//! engine label and promise discovery), and from then on behaves exactly
//! like an in-process engine to the drivers — except that every failure of
//! the wire maps to a typed [`AbortReason`] instead of a panic:
//!
//! * an I/O failure (timeout, reset, refused, corrupt frame) **before** the
//!   commit request is sent aborts the transaction with
//!   [`AbortReason::ConnectionLost`] — nothing can have been applied, so
//!   the attempt is safe to record and retry;
//! * an I/O failure **after** the commit request is sent surfaces as
//!   [`AbortReason::CommitStatusUnknown`] — the commit may have happened
//!   server-side, so the drivers neither record nor retry the attempt (see
//!   `AbortReason::outcome_known`).
//!
//! Connections are pooled: a transaction checks one out for its lifetime
//! (the protocol has at most one open transaction per connection from this
//! client) and returns it on a clean commit/abort; a connection that saw
//! any I/O error is discarded, never reused. Sequence numbers survive pool
//! reuse, so a delayed reply to a request that timed out earlier is
//! recognized as stale and skipped rather than misattributed to the next
//! transaction on that connection.

use crate::proto::{self, Reply, ReplyEnvelope, Request, RequestEnvelope, PROTOCOL_VERSION};
use mtc_core::IsolationLevel;
use mtc_dbsim::{AbortReason, CommitInfo, DbBackend, DbTxn};
use mtc_history::{Key, Value};
use parking_lot::Mutex;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Knobs of a [`NetBackend`].
#[derive(Clone, Copy, Debug)]
pub struct NetOptions {
    /// Maximum idle connections kept for reuse; transactions beyond this
    /// many in flight dial extra connections that are closed on return.
    pub pool_size: usize,
    /// Per-operation reply deadline. A transaction whose reply misses it
    /// aborts with [`AbortReason::ConnectionLost`] (or
    /// [`AbortReason::CommitStatusUnknown`] if the commit request was
    /// already on the wire).
    pub op_timeout: Duration,
    /// Deadline for establishing a connection.
    pub connect_timeout: Duration,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            pool_size: 16,
            op_timeout: Duration::from_secs(2),
            connect_timeout: Duration::from_secs(2),
        }
    }
}

/// One pooled connection with its sequence counter.
struct Conn {
    stream: TcpStream,
    next_seq: u64,
}

impl Conn {
    fn dial(addr: SocketAddr, opts: &NetOptions) -> io::Result<Conn> {
        let stream = TcpStream::connect_timeout(&addr, opts.connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(opts.op_timeout))?;
        stream.set_write_timeout(Some(opts.op_timeout))?;
        Ok(Conn {
            stream,
            next_seq: 0,
        })
    }

    /// One request/reply round trip. Replies with a stale sequence number
    /// (duplicates, or answers to requests that already timed out on our
    /// side) are skipped; a reply from the future is a protocol violation.
    fn call(&mut self, request: Request) -> io::Result<(u64, Reply)> {
        let timer = mtc_obs::enabled().then(|| (request.label(), std::time::Instant::now()));
        let result = self.call_inner(request);
        if let Some((label, t0)) = timer {
            // Dynamic lookup, not the cached-site macro: the name varies
            // per op. Amortized fine — round trips are ≥ tens of µs.
            mtc_obs::registry()
                .histogram(&format!("net.call_micros.{label}"))
                .record(t0.elapsed().as_micros() as u64);
            if result.is_err() {
                mtc_obs::counter!("net.call_io_errors").inc();
            }
        }
        result
    }

    fn call_inner(&mut self, request: Request) -> io::Result<(u64, Reply)> {
        let seq = self.next_seq;
        self.next_seq += 1;
        proto::send(&mut self.stream, &RequestEnvelope { seq, request })?;
        loop {
            let env: ReplyEnvelope = proto::recv(&mut self.stream)?;
            match env.seq.cmp(&seq) {
                std::cmp::Ordering::Less => continue, // stale or duplicate
                std::cmp::Ordering::Equal => return Ok((env.now, env.reply)),
                std::cmp::Ordering::Greater => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("reply sequence {} ahead of request {seq}", env.seq),
                    ));
                }
            }
        }
    }
}

/// Accounts a wire-failure doom under its reason, so an operator can tell
/// retryable [`AbortReason::ConnectionLost`] dooms apart from ambiguous
/// [`AbortReason::CommitStatusUnknown`] ones at a glance.
fn count_doom(reason: AbortReason) {
    match reason {
        AbortReason::CommitStatusUnknown => mtc_obs::counter!("net.commit_status_unknown").inc(),
        _ => mtc_obs::counter!("net.connection_lost").inc(),
    }
}

/// Interns `net/<label>` so [`DbBackend::label`] can hand out
/// `&'static str` without leaking a fresh allocation per backend instance.
fn intern_label(engine_label: &str) -> &'static str {
    static LABELS: std::sync::OnceLock<std::sync::Mutex<Vec<&'static str>>> =
        std::sync::OnceLock::new();
    let full = format!("net/{engine_label}");
    let mut labels = LABELS
        .get_or_init(|| std::sync::Mutex::new(Vec::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    if let Some(hit) = labels.iter().find(|l| **l == full) {
        return hit;
    }
    let leaked: &'static str = Box::leak(full.into_boxed_str());
    labels.push(leaked);
    leaked
}

/// A remote engine behind the framed TCP protocol, usable anywhere a local
/// [`DbBackend`] is.
pub struct NetBackend {
    addr: SocketAddr,
    opts: NetOptions,
    label: &'static str,
    promised: Vec<IsolationLevel>,
    pool: Mutex<Vec<Conn>>,
    /// Highest server clock value observed on any reply; answers
    /// [`DbBackend::now`] without a round trip.
    clock: AtomicU64,
}

impl NetBackend {
    /// Dials `addr` with default options.
    pub fn connect(addr: SocketAddr) -> io::Result<NetBackend> {
        NetBackend::connect_with(addr, NetOptions::default())
    }

    /// Dials `addr`, handshakes, and learns the wrapped engine's label and
    /// promised isolation levels.
    pub fn connect_with(addr: SocketAddr, opts: NetOptions) -> io::Result<NetBackend> {
        let mut conn = Conn::dial(addr, &opts)?;
        let (now, reply) = conn.call(Request::Hello {
            version: PROTOCOL_VERSION,
        })?;
        let (label, promised) = match reply {
            Reply::Hello {
                version,
                label,
                promised,
            } if version == PROTOCOL_VERSION => (label, promised),
            Reply::Hello { version, .. } => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("server speaks protocol {version}, client {PROTOCOL_VERSION}"),
                ));
            }
            Reply::Error(msg) => return Err(io::Error::new(io::ErrorKind::ConnectionRefused, msg)),
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected handshake reply: {other:?}"),
                ));
            }
        };
        Ok(NetBackend {
            addr,
            opts,
            label: intern_label(&label),
            promised,
            pool: Mutex::new(vec![conn]),
            clock: AtomicU64::new(now),
        })
    }

    fn observe(&self, now: u64) {
        self.clock.fetch_max(now, Ordering::AcqRel);
    }

    fn checkout(&self) -> io::Result<Conn> {
        if let Some(conn) = self.pool.lock().pop() {
            return Ok(conn);
        }
        Conn::dial(self.addr, &self.opts)
    }

    fn check_in(&self, conn: Conn) {
        let mut pool = self.pool.lock();
        if pool.len() < self.opts.pool_size {
            pool.push(conn);
        }
    }
}

impl DbBackend for NetBackend {
    fn begin(&self) -> Box<dyn DbTxn + '_> {
        Box::new(self.begin_inner(None))
    }

    fn begin_retry(&self, prior_begin_ts: u64) -> Box<dyn DbTxn + '_> {
        mtc_obs::counter!("net.txn_retries").inc();
        Box::new(self.begin_inner(Some(prior_begin_ts)))
    }

    fn now(&self) -> u64 {
        self.clock.load(Ordering::Acquire)
    }

    fn label(&self) -> &'static str {
        self.label
    }

    fn promises(&self, level: IsolationLevel) -> bool {
        self.promised.contains(&level)
    }
}

impl NetBackend {
    /// Opens a transaction. `begin` cannot fail by signature, so wire
    /// trouble yields a *doomed* handle: every operation on it returns
    /// [`AbortReason::ConnectionLost`], the driver aborts and retries, and
    /// since such an attempt records no operations it never enters the
    /// history.
    fn begin_inner(&self, retry_of: Option<u64>) -> NetTxn<'_> {
        let mut conn = match self.checkout() {
            Ok(conn) => conn,
            Err(_) => return NetTxn::doomed(self),
        };
        match conn.call(Request::Begin { retry_of }) {
            Ok((now, Reply::Begun { txn, begin_ts })) => {
                self.observe(now);
                NetTxn {
                    backend: self,
                    conn: Some(conn),
                    txn,
                    begin_ts,
                    doomed: None,
                }
            }
            // Anything else — I/O failure, protocol error — kills the
            // connection (it may be desynchronized) and dooms the handle.
            _ => NetTxn::doomed(self),
        }
    }
}

/// An open transaction on a checked-out connection.
pub struct NetTxn<'b> {
    backend: &'b NetBackend,
    conn: Option<Conn>,
    txn: u64,
    begin_ts: u64,
    /// Set once the wire failed; every subsequent operation fails fast
    /// with this reason.
    doomed: Option<AbortReason>,
}

impl<'b> NetTxn<'b> {
    fn doomed(backend: &'b NetBackend) -> NetTxn<'b> {
        count_doom(AbortReason::ConnectionLost);
        NetTxn {
            backend,
            conn: None,
            txn: 0,
            begin_ts: backend.now(),
            doomed: Some(AbortReason::ConnectionLost),
        }
    }

    /// One operation round trip; on wire failure the connection is dropped
    /// (never re-pooled) and the transaction is doomed with `on_io_failure`
    /// — [`AbortReason::ConnectionLost`] for reads/writes,
    /// [`AbortReason::CommitStatusUnknown`] once a commit request may have
    /// reached the server.
    fn call(&mut self, request: Request, on_io_failure: AbortReason) -> Result<Reply, AbortReason> {
        if let Some(reason) = self.doomed {
            return Err(reason);
        }
        let conn = self.conn.as_mut().expect("un-doomed txn holds a conn");
        match conn.call(request) {
            Ok((now, reply)) => {
                self.backend.observe(now);
                match reply {
                    Reply::Aborted(reason) => Err(reason),
                    Reply::Error(_) => {
                        // Protocol-level failure: the server no longer
                        // knows this transaction. Drop the connection.
                        self.conn = None;
                        self.doomed = Some(on_io_failure);
                        count_doom(on_io_failure);
                        Err(on_io_failure)
                    }
                    other => Ok(other),
                }
            }
            Err(_) => {
                self.conn = None;
                self.doomed = Some(on_io_failure);
                count_doom(on_io_failure);
                Err(on_io_failure)
            }
        }
    }
}

impl DbTxn for NetTxn<'_> {
    fn begin_ts(&self) -> u64 {
        self.begin_ts
    }

    fn read_register(&mut self, key: Key) -> Result<Value, AbortReason> {
        let txn = self.txn;
        match self.call(Request::Read { txn, key }, AbortReason::ConnectionLost)? {
            Reply::Value(value) => Ok(value),
            _ => Err(self.desync()),
        }
    }

    fn write_register(&mut self, key: Key, value: Value) -> Result<(), AbortReason> {
        let txn = self.txn;
        match self.call(
            Request::Write { txn, key, value },
            AbortReason::ConnectionLost,
        )? {
            Reply::Done => Ok(()),
            _ => Err(self.desync()),
        }
    }

    fn read_list(&mut self, key: Key) -> Result<Vec<Value>, AbortReason> {
        let txn = self.txn;
        match self.call(Request::ReadList { txn, key }, AbortReason::ConnectionLost)? {
            Reply::Values(values) => Ok(values),
            _ => Err(self.desync()),
        }
    }

    fn append(&mut self, key: Key, element: Value) -> Result<(), AbortReason> {
        let txn = self.txn;
        match self.call(
            Request::Append { txn, key, element },
            AbortReason::ConnectionLost,
        )? {
            Reply::Done => Ok(()),
            _ => Err(self.desync()),
        }
    }

    fn commit(mut self: Box<Self>) -> Result<CommitInfo, AbortReason> {
        let txn = self.txn;
        // From here on the request may reach the server even if the reply
        // never reaches us, so failures are ambiguous.
        match self.call(Request::Commit { txn }, AbortReason::CommitStatusUnknown) {
            Ok(Reply::Committed { commit_ts }) => {
                if let Some(conn) = self.conn.take() {
                    self.backend.check_in(conn);
                }
                Ok(CommitInfo { commit_ts })
            }
            Ok(_) => Err(self.desync()),
            Err(reason) => {
                // A *known* server-side abort (e.g. a write conflict) is a
                // clean round trip; `call` only leaves the connection in
                // place on that path, so reclaim it for the pool.
                if let Some(conn) = self.conn.take() {
                    self.backend.check_in(conn);
                }
                Err(reason)
            }
        }
    }

    fn abort(mut self: Box<Self>) -> AbortReason {
        if let Some(reason) = self.doomed {
            return reason;
        }
        let txn = self.txn;
        match self.call(Request::Abort { txn }, AbortReason::ConnectionLost) {
            Ok(Reply::Done) => {
                if let Some(conn) = self.conn.take() {
                    self.backend.check_in(conn);
                }
                AbortReason::UserAbort
            }
            // `call` already dropped the connection on failure paths.
            _ => AbortReason::ConnectionLost,
        }
    }
}

impl NetTxn<'_> {
    /// An in-protocol reply of the wrong shape: the connection cannot be
    /// trusted any more. Doom the transaction and drop the connection.
    fn desync(&mut self) -> AbortReason {
        self.conn = None;
        let reason = self.doomed.unwrap_or(AbortReason::ConnectionLost);
        if self.doomed.is_none() {
            count_doom(reason);
        }
        self.doomed = Some(reason);
        reason
    }
}
