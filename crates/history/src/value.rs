//! Keys, values and the unique-value convention.
//!
//! Black-box isolation checkers assume that every write installs a *unique*
//! value for its object (Section II-A of the paper). In practice the value is
//! a combination of a client identifier and a per-client counter. We model
//! both keys and values as 64-bit integers; [`ValueAllocator`] packs a session
//! identifier into the high bits and a counter into the low bits so that two
//! distinct writes can never collide, regardless of which session issued them.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an object (a key in the key-value data model).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Key(pub u64);

/// A value read from or written to an object.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Value(pub u64);

/// The value installed for every object by the initial transaction `⊥T`.
pub const INIT_VALUE: Value = Value(0);

impl Key {
    /// Returns the raw key number.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl Value {
    /// Returns the raw value number.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// True iff this is the initial value written by `⊥T`.
    #[inline]
    pub fn is_init(self) -> bool {
        self == INIT_VALUE
    }
}

impl From<u64> for Key {
    fn from(k: u64) -> Self {
        Key(k)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value(v)
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Allocates values that are globally unique across sessions.
///
/// The layout is `(session_id + 1) << 40 | counter`, which supports up to
/// 2^24 sessions and 2^40 writes per session — far beyond any workload in
/// this repository. Adding one to the session identifier keeps the whole
/// range disjoint from [`INIT_VALUE`].
#[derive(Debug, Clone)]
pub struct ValueAllocator {
    session: u64,
    counter: u64,
}

impl ValueAllocator {
    /// Number of low bits reserved for the per-session counter.
    pub const COUNTER_BITS: u32 = 40;

    /// Creates an allocator for the given session.
    pub fn new(session: u32) -> Self {
        ValueAllocator {
            session: session as u64,
            counter: 0,
        }
    }

    /// Returns the next unique value for this session.
    #[allow(clippy::should_implement_trait)] // not an Iterator: infinite, infallible
    pub fn next(&mut self) -> Value {
        self.counter += 1;
        Value(((self.session + 1) << Self::COUNTER_BITS) | self.counter)
    }

    /// Decodes the session that allocated `v`, if it came from a
    /// `ValueAllocator` (the initial value and arbitrary foreign values
    /// return `None`).
    pub fn session_of(v: Value) -> Option<u32> {
        let sess = v.0 >> Self::COUNTER_BITS;
        if sess == 0 {
            None
        } else {
            Some((sess - 1) as u32)
        }
    }

    /// Decodes the per-session counter of `v`.
    pub fn counter_of(v: Value) -> u64 {
        v.0 & ((1u64 << Self::COUNTER_BITS) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn init_value_is_zero() {
        assert_eq!(INIT_VALUE, Value(0));
        assert!(INIT_VALUE.is_init());
        assert!(!Value(7).is_init());
    }

    #[test]
    fn allocator_values_are_unique_within_a_session() {
        let mut a = ValueAllocator::new(3);
        let vs: Vec<Value> = (0..1000).map(|_| a.next()).collect();
        let set: HashSet<Value> = vs.iter().copied().collect();
        assert_eq!(set.len(), vs.len());
    }

    #[test]
    fn allocator_values_are_unique_across_sessions() {
        let mut a = ValueAllocator::new(0);
        let mut b = ValueAllocator::new(1);
        let mut all = HashSet::new();
        for _ in 0..1000 {
            assert!(all.insert(a.next()));
            assert!(all.insert(b.next()));
        }
    }

    #[test]
    fn allocator_never_produces_the_initial_value() {
        let mut a = ValueAllocator::new(0);
        for _ in 0..100 {
            assert_ne!(a.next(), INIT_VALUE);
        }
    }

    #[test]
    fn allocator_round_trips_session_and_counter() {
        let mut a = ValueAllocator::new(42);
        let v1 = a.next();
        let v2 = a.next();
        assert_eq!(ValueAllocator::session_of(v1), Some(42));
        assert_eq!(ValueAllocator::counter_of(v1), 1);
        assert_eq!(ValueAllocator::counter_of(v2), 2);
        assert_eq!(ValueAllocator::session_of(INIT_VALUE), None);
    }

    #[test]
    fn key_and_value_display() {
        assert_eq!(format!("{:?}", Key(5)), "k5");
        assert_eq!(format!("{:?}", Value(9)), "v9");
        assert_eq!(format!("{}", Key(5)), "5");
        assert_eq!(format!("{}", Value(9)), "9");
    }
}
