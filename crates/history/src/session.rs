//! Sessions and the session order.
//!
//! Transactions issued by one client are grouped into a *session*: a sequence
//! of transactions. The session order `SO` relates every transaction to all
//! later transactions of the same session, plus the initial transaction `⊥T`
//! to every other transaction.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a session (client).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct SessionId(pub u32);

impl SessionId {
    /// Session reserved for the initial transaction `⊥T`.
    pub const INIT: SessionId = SessionId(u32::MAX);

    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == SessionId::INIT {
            write!(f, "s⊥")
        } else {
            write!(f, "s{}", self.0)
        }
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u32> for SessionId {
    fn from(s: u32) -> Self {
        SessionId(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_session_is_distinct() {
        assert_ne!(SessionId::INIT, SessionId(0));
        assert_eq!(format!("{:?}", SessionId::INIT), "s⊥");
        assert_eq!(format!("{:?}", SessionId(3)), "s3");
    }
}
