//! A tiny, fast, non-cryptographic hasher for the hot-path maps of the
//! streaming checkers (integer-ish keys: transaction ids, node pairs,
//! key/value tuples).
//!
//! The default `SipHash13` is DoS-resistant but costs real time per edge on
//! the verification hot path. Checker inputs are not attacker-controlled
//! hash-table keys in the DoS sense (and the maps are bounded by the GC),
//! so an FxHash-style multiply-xor hash is the right trade. The
//! implementation mirrors the well-known `FxHasher` recipe: per 8-byte
//! word, `state = (state.rotate_left(5) ^ word) * K`.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher over native words.
#[derive(Clone, Copy, Debug, Default)]
pub struct FastHasher {
    state: u64,
}

const K: u64 = 0x517c_c1b7_2722_0a95;

impl FastHasher {
    #[inline]
    fn word(&mut self, w: u64) {
        self.state = (self.state.rotate_left(5) ^ w).wrapping_mul(K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut w = [0u8; 8];
            w[..rest.len()].copy_from_slice(rest);
            self.word(u64::from_le_bytes(w));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.word(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.word(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.word(v as u64);
    }
}

/// `BuildHasher` for [`FastHasher`].
pub type FastBuild = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed with the fast hasher.
pub type FastHashMap<K, V> = std::collections::HashMap<K, V, FastBuild>;

/// A `HashSet` keyed with the fast hasher.
pub type FastHashSet<T> = std::collections::HashSet<T, FastBuild>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_behave_like_maps() {
        let mut m: FastHashMap<(u32, u64), usize> = FastHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, u64::from(i) << 40), i as usize);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i, u64::from(i) << 40)), Some(&(i as usize)));
        }
        assert_eq!(m.get(&(5, 0)), None);
    }

    #[test]
    fn distinct_inputs_rarely_collide() {
        use std::hash::BuildHasher;
        let b = FastBuild::default();
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(b.hash_one((i, i.wrapping_mul(7))));
        }
        assert!(seen.len() > 9_990, "{} distinct hashes", seen.len());
    }
}
