//! The `INT` axiom and the "read-your-writes"-style anomalies of
//! Figures 5a–5g of the paper.
//!
//! Before running any of the graph-based verifiers, MTC first checks the
//! history for *intra-transactional* anomalies and for reads of values that
//! were never (or not validly) installed — `THINAIRREAD`, `ABORTEDREAD`,
//! `FUTUREREAD`, `NOTMYLASTWRITE`, `NOTMYOWNWRITE`, `INTERMEDIATEREAD` and
//! `NONREPEATABLEREADS` (footnote 1, Section IV-B). Histories exhibiting any
//! of them trivially violate every strong isolation level.

use crate::history::History;
use crate::op::Op;
use crate::txn::{Transaction, TxnId, TxnStatus};
use crate::value::{Key, Value, INIT_VALUE};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// The anomalies detectable without building a dependency graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum IntraAnomaly {
    /// A read returned a value no transaction ever wrote (Fig. 5a).
    ThinAirRead,
    /// A read returned a value written only by aborted transactions (Fig. 5b).
    AbortedRead,
    /// A read returned a value the same transaction writes only later (Fig. 5c).
    FutureRead,
    /// A read returned one of the transaction's own earlier writes, but not
    /// the latest one (Fig. 5d).
    NotMyLastWrite,
    /// A read following the transaction's own write returned a foreign value
    /// (Fig. 5e).
    NotMyOwnWrite,
    /// A read returned a value that its writer later overwrote inside the
    /// same writing transaction (Fig. 5f).
    IntermediateRead,
    /// Two reads of the same object within one transaction, with no
    /// intervening own write, returned different values (Fig. 5g).
    NonRepeatableReads,
}

impl fmt::Display for IntraAnomaly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            IntraAnomaly::ThinAirRead => "ThinAirRead",
            IntraAnomaly::AbortedRead => "AbortedRead",
            IntraAnomaly::FutureRead => "FutureRead",
            IntraAnomaly::NotMyLastWrite => "NotMyLastWrite",
            IntraAnomaly::NotMyOwnWrite => "NotMyOwnWrite",
            IntraAnomaly::IntermediateRead => "IntermediateRead",
            IntraAnomaly::NonRepeatableReads => "NonRepeatableReads",
        };
        f.write_str(name)
    }
}

/// A detected occurrence of an [`IntraAnomaly`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct IntraViolation {
    /// Which anomaly was detected.
    pub anomaly: IntraAnomaly,
    /// The transaction containing the offending read.
    pub txn: TxnId,
    /// Index of the offending read in the transaction's program order.
    pub op_index: usize,
    /// Object read.
    pub key: Key,
    /// Value returned.
    pub value: Value,
}

impl fmt::Display for IntraViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at {}[{}]: R({},{})",
            self.anomaly, self.txn, self.op_index, self.key, self.value
        )
    }
}

/// Checks the `INT` axiom for a single transaction: every read of an object
/// must return the value of the latest preceding operation (read or write) on
/// that object within the transaction, if one exists.
pub fn check_int(txn: &Transaction) -> bool {
    let mut last_access: HashMap<Key, Value> = HashMap::new();
    for op in &txn.ops {
        match *op {
            Op::Read { key, value } => {
                if let Some(&prev) = last_access.get(&key) {
                    if prev != value {
                        return false;
                    }
                }
                last_access.insert(key, value);
            }
            Op::Write { key, value } => {
                last_access.insert(key, value);
            }
        }
    }
    true
}

/// Checks the `INT` axiom for every committed transaction of a history.
pub fn check_int_history(history: &History) -> bool {
    history.committed().all(check_int)
}

/// Scans a history for all intra-transactional and read-provenance anomalies.
///
/// Returns every detected violation; an empty result means the history passes
/// the `INT` axiom and contains neither thin-air, aborted, intermediate nor
/// future reads. Only *committed* transactions are scanned for offending
/// reads (aborted transactions never make it into dependency graphs), but
/// aborted transactions do count as potential writers for [`IntraAnomaly::AbortedRead`].
pub fn find_intra_anomalies(history: &History) -> Vec<IntraViolation> {
    let any_writes = history.any_write_index();
    let mut violations = Vec::new();

    for txn in history.committed() {
        scan_transaction(history, txn, &any_writes, &mut violations);
    }
    violations
}

fn scan_transaction(
    history: &History,
    txn: &Transaction,
    any_writes: &HashMap<(Key, Value), Vec<TxnId>>,
    out: &mut Vec<IntraViolation>,
) {
    // Last access (read or write) per key, with the op index and whether it
    // was a write, plus the set of values this transaction has written so far.
    struct Access {
        value: Value,
        was_write: bool,
    }
    let mut last_access: HashMap<Key, Access> = HashMap::new();
    let mut own_writes: HashMap<Key, Vec<Value>> = HashMap::new();

    for (i, op) in txn.ops.iter().enumerate() {
        match *op {
            Op::Write { key, value } => {
                own_writes.entry(key).or_default().push(value);
                last_access.insert(
                    key,
                    Access {
                        value,
                        was_write: true,
                    },
                );
            }
            Op::Read { key, value } => {
                let report = |anomaly| IntraViolation {
                    anomaly,
                    txn: txn.id,
                    op_index: i,
                    key,
                    value,
                };
                match last_access.get(&key) {
                    Some(prev) if prev.value == value => {
                        // Internally consistent read.
                    }
                    Some(prev) => {
                        // INT violation: classify it.
                        let anomaly = if prev.was_write {
                            let earlier = own_writes.get(&key).map(Vec::as_slice).unwrap_or(&[]);
                            if earlier.contains(&value) {
                                IntraAnomaly::NotMyLastWrite
                            } else {
                                IntraAnomaly::NotMyOwnWrite
                            }
                        } else {
                            IntraAnomaly::NonRepeatableReads
                        };
                        out.push(report(anomaly));
                    }
                    None => {
                        // External read: check where the value came from.
                        if let Some(v) =
                            classify_external_read(history, txn, i, key, value, any_writes)
                        {
                            out.push(report(v));
                        }
                    }
                }
                last_access.insert(
                    key,
                    Access {
                        value,
                        was_write: false,
                    },
                );
            }
        }
    }
}

/// Classifies an *external* read (no preceding own access of the object).
fn classify_external_read(
    history: &History,
    reader: &Transaction,
    read_index: usize,
    key: Key,
    value: Value,
    any_writes: &HashMap<(Key, Value), Vec<TxnId>>,
) -> Option<IntraAnomaly> {
    let writers = any_writes.get(&(key, value));
    match writers {
        None => {
            // Nobody ever wrote this value. Reading the conventional initial
            // value is acceptable only when the history has no ⊥T (otherwise
            // ⊥T would appear as a writer).
            if value == INIT_VALUE && !history.has_init() {
                None
            } else {
                Some(IntraAnomaly::ThinAirRead)
            }
        }
        Some(writers) => {
            // A future read: the only writes of this value live later in the
            // reading transaction itself.
            if writers.len() == 1 && writers[0] == reader.id {
                let own_later = reader.ops[read_index + 1..].iter().any(
                    |op| matches!(*op, Op::Write { key: k, value: v } if k == key && v == value),
                );
                if own_later {
                    return Some(IntraAnomaly::FutureRead);
                }
                return Some(IntraAnomaly::ThinAirRead);
            }
            let external: Vec<TxnId> = writers
                .iter()
                .copied()
                .filter(|&w| w != reader.id)
                .collect();
            if external.is_empty() {
                return Some(IntraAnomaly::ThinAirRead);
            }
            // Aborted read: every external writer of the value aborted (or is
            // of unknown status).
            if external
                .iter()
                .all(|&w| history.txn(w).status != TxnStatus::Committed)
            {
                return Some(IntraAnomaly::AbortedRead);
            }
            // Intermediate read: the committed writer overwrote the value
            // before committing.
            let committed_writers: Vec<TxnId> = external
                .iter()
                .copied()
                .filter(|&w| history.txn(w).status == TxnStatus::Committed)
                .collect();
            if committed_writers
                .iter()
                .all(|&w| history.txn(w).last_write(key) != Some(value))
            {
                return Some(IntraAnomaly::IntermediateRead);
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryBuilder;

    fn anomalies_of(h: &History) -> Vec<IntraAnomaly> {
        find_intra_anomalies(h)
            .into_iter()
            .map(|v| v.anomaly)
            .collect()
    }

    #[test]
    fn clean_history_has_no_violations() {
        let mut b = HistoryBuilder::new().with_init(2);
        b.committed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 10u64)]);
        b.committed(1, vec![Op::read(0u64, 10u64), Op::write(1u64, 20u64)]);
        let h = b.build();
        assert!(check_int_history(&h));
        assert!(find_intra_anomalies(&h).is_empty());
    }

    #[test]
    fn thin_air_read_detected() {
        let mut b = HistoryBuilder::new().with_init(1);
        b.committed(0, vec![Op::read(0u64, 777u64)]);
        let h = b.build();
        assert_eq!(anomalies_of(&h), vec![IntraAnomaly::ThinAirRead]);
    }

    #[test]
    fn reading_init_value_without_init_txn_is_allowed() {
        let mut b = HistoryBuilder::new();
        b.committed(0, vec![Op::read(0u64, 0u64)]);
        let h = b.build();
        assert!(find_intra_anomalies(&h).is_empty());
    }

    #[test]
    fn aborted_read_detected() {
        let mut b = HistoryBuilder::new().with_init(1);
        b.aborted(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 5u64)]);
        b.committed(1, vec![Op::read(0u64, 5u64)]);
        let h = b.build();
        assert_eq!(anomalies_of(&h), vec![IntraAnomaly::AbortedRead]);
    }

    #[test]
    fn future_read_detected() {
        // Fig 5c: T reads the value it only writes later.
        let mut b = HistoryBuilder::new().with_init(1);
        b.committed(0, vec![Op::read(0u64, 9u64), Op::write(0u64, 9u64)]);
        let h = b.build();
        assert_eq!(anomalies_of(&h), vec![IntraAnomaly::FutureRead]);
    }

    #[test]
    fn not_my_last_write_detected() {
        // Fig 5d: R(x,0) W(x,1) W(x,2) R(x,1)
        let mut b = HistoryBuilder::new().with_init(1);
        b.committed(
            0,
            vec![
                Op::read(0u64, 0u64),
                Op::write(0u64, 1u64),
                Op::write(0u64, 2u64),
                Op::read(0u64, 1u64),
            ],
        );
        let h = b.build();
        assert_eq!(anomalies_of(&h), vec![IntraAnomaly::NotMyLastWrite]);
        assert!(!check_int_history(&h));
    }

    #[test]
    fn not_my_own_write_detected() {
        // Fig 5e: T writes 2 then reads 1 written by T'.
        let mut b = HistoryBuilder::new().with_init(1);
        b.committed(
            0,
            vec![
                Op::read(0u64, 0u64),
                Op::write(0u64, 2u64),
                Op::read(0u64, 1u64),
            ],
        );
        b.committed(1, vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)]);
        let h = b.build();
        assert_eq!(anomalies_of(&h), vec![IntraAnomaly::NotMyOwnWrite]);
    }

    #[test]
    fn intermediate_read_detected() {
        // Fig 5f: T' writes 1 then 2; T reads 1.
        let mut b = HistoryBuilder::new().with_init(1);
        b.committed(0, vec![Op::read(0u64, 1u64)]);
        b.committed(
            1,
            vec![
                Op::read(0u64, 0u64),
                Op::write(0u64, 1u64),
                Op::write(0u64, 2u64),
            ],
        );
        let h = b.build();
        assert_eq!(anomalies_of(&h), vec![IntraAnomaly::IntermediateRead]);
    }

    #[test]
    fn non_repeatable_reads_detected() {
        // Fig 5g: T reads 1 then 2 from x.
        let mut b = HistoryBuilder::new().with_init(1);
        b.committed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)]);
        b.committed(1, vec![Op::read(0u64, 0u64), Op::write(0u64, 2u64)]);
        b.committed(2, vec![Op::read(0u64, 1u64), Op::read(0u64, 2u64)]);
        let h = b.build();
        assert_eq!(anomalies_of(&h), vec![IntraAnomaly::NonRepeatableReads]);
    }

    #[test]
    fn read_your_own_write_is_fine() {
        let mut b = HistoryBuilder::new().with_init(1);
        b.committed(
            0,
            vec![
                Op::read(0u64, 0u64),
                Op::write(0u64, 3u64),
                Op::read(0u64, 3u64),
            ],
        );
        let h = b.build();
        assert!(find_intra_anomalies(&h).is_empty());
        assert!(check_int_history(&h));
    }

    #[test]
    fn violation_reports_location() {
        let mut b = HistoryBuilder::new().with_init(1);
        let t = b.committed(0, vec![Op::read(0u64, 42u64)]);
        let h = b.build();
        let v = &find_intra_anomalies(&h)[0];
        assert_eq!(v.txn, t);
        assert_eq!(v.op_index, 0);
        assert_eq!(v.key, Key(0));
        assert_eq!(v.value, Value(42));
        let msg = v.to_string();
        assert!(msg.contains("ThinAirRead"));
        assert!(msg.contains("T1"));
    }

    #[test]
    fn aborted_transactions_reads_are_not_scanned() {
        let mut b = HistoryBuilder::new().with_init(1);
        b.aborted(0, vec![Op::read(0u64, 999u64)]);
        let h = b.build();
        assert!(find_intra_anomalies(&h).is_empty());
    }
}
