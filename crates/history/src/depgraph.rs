//! Transactional dependency graphs (Definition 3 of the paper).
//!
//! A dependency graph extends a history with labelled edges between
//! transactions:
//!
//! * `SO` — session order,
//! * `RT` — real-time order (needed only for strict serializability),
//! * `WR(x)` — `T → S` when `S` reads from `x` the value written by `T`,
//! * `WW(x)` — a version order among the transactions writing `x`,
//! * `RW(x)` — the anti-dependency derived from `WR` and `WW`.
//!
//! [`DependencyGraph`] stores the labelled edges and offers projections onto
//! the unlabelled [`DiGraph`] used for cycle detection, plus helpers to label
//! a node cycle back into a readable counterexample.

use crate::fasthash::FastHashMap;
use crate::graph::DiGraph;
use crate::txn::TxnId;
use crate::value::Key;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a dependency edge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Session order.
    So,
    /// Real-time order.
    Rt,
    /// Write-read dependency on a key.
    Wr(Key),
    /// Write-write dependency on a key.
    Ww(Key),
    /// Read-write anti-dependency on a key.
    Rw(Key),
}

impl EdgeKind {
    /// True for `WR(_)`.
    #[inline]
    pub fn is_wr(self) -> bool {
        matches!(self, EdgeKind::Wr(_))
    }

    /// True for `WW(_)`.
    #[inline]
    pub fn is_ww(self) -> bool {
        matches!(self, EdgeKind::Ww(_))
    }

    /// True for `RW(_)`.
    #[inline]
    pub fn is_rw(self) -> bool {
        matches!(self, EdgeKind::Rw(_))
    }

    /// The key the edge is about, if any.
    #[inline]
    pub fn key(self) -> Option<Key> {
        match self {
            EdgeKind::Wr(k) | EdgeKind::Ww(k) | EdgeKind::Rw(k) => Some(k),
            _ => None,
        }
    }
}

impl fmt::Debug for EdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeKind::So => write!(f, "SO"),
            EdgeKind::Rt => write!(f, "RT"),
            EdgeKind::Wr(k) => write!(f, "WR({k})"),
            EdgeKind::Ww(k) => write!(f, "WW({k})"),
            EdgeKind::Rw(k) => write!(f, "RW({k})"),
        }
    }
}

impl fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A labelled dependency edge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Source transaction.
    pub from: TxnId,
    /// Target transaction.
    pub to: TxnId,
    /// Edge label.
    pub kind: EdgeKind,
}

impl fmt::Debug for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -{}-> {}", self.from, self.kind, self.to)
    }
}

/// A dependency graph over the transactions of a history.
///
/// Nodes are transaction indices; `node_count` only bounds the id space
/// (ids are never recycled). The adjacency index is keyed by source node, so
/// a graph whose settled prefix has been pruned
/// ([`DependencyGraph::prune_nodes`]) holds memory proportional to its
/// *live* edges, not to every transaction ever admitted.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DependencyGraph {
    node_count: usize,
    edges: Vec<Edge>,
    /// Labelled edges pruned away by settled-prefix GC (kept so
    /// `edge_count` keeps reporting the historical total).
    pruned_edges: usize,
    /// Adjacency rows (indices into `edges`) for sources `>= adj_base`,
    /// indexed by `from - adj_base`: the hot window of recent transactions
    /// resolves out-edge lookups with plain index arithmetic. Never
    /// serialized; [`DependencyGraph::rebuild_index`] restores it.
    #[serde(skip)]
    dense: Vec<Vec<u32>>,
    /// First source id covered by `dense`. Sources below it are the few
    /// long-lived stragglers GC retains (`⊥T`, session frontiers) and live
    /// in `adj_low`; [`DependencyGraph::rebuild_index`] picks the split so
    /// the dense span stays proportional to the live row count.
    #[serde(skip)]
    adj_base: u32,
    /// Adjacency rows for the sparse sources below `adj_base`.
    #[serde(skip)]
    adj_low: FastHashMap<u32, Vec<u32>>,
}

impl DependencyGraph {
    /// Creates an empty dependency graph over `node_count` transactions.
    pub fn new(node_count: usize) -> Self {
        DependencyGraph {
            node_count,
            edges: Vec::new(),
            pruned_edges: 0,
            dense: Vec::new(),
            adj_base: 0,
            adj_low: FastHashMap::default(),
        }
    }

    /// Number of transactions (nodes).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Appends a fresh node (transaction slot) with no edges, returning its
    /// index. Supports the streaming checkers, whose graphs grow one
    /// committed transaction at a time.
    pub fn add_node(&mut self) -> usize {
        self.node_count += 1;
        self.node_count - 1
    }

    /// Number of labelled edges ever added (including any pruned away by
    /// [`DependencyGraph::prune_nodes`]).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len() + self.pruned_edges
    }

    /// Number of labelled edges currently resident.
    #[inline]
    pub fn live_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds a labelled edge.
    pub fn add_edge(&mut self, from: TxnId, to: TxnId, kind: EdgeKind) {
        debug_assert!(from.index() < self.node_count && to.index() < self.node_count);
        let idx = self.edges.len() as u32;
        self.edges.push(Edge { from, to, kind });
        self.row_mut(from.0).push(idx);
    }

    /// Adds a labelled edge unless an identical one is already present.
    pub fn add_edge_dedup(&mut self, from: TxnId, to: TxnId, kind: EdgeKind) {
        if !self.contains_edge(from, to, kind) {
            self.add_edge(from, to, kind);
        }
    }

    /// The adjacency row of `from` (empty when the node has no out-edges).
    #[inline]
    fn row(&self, from: u32) -> &[u32] {
        if from >= self.adj_base {
            self.dense
                .get((from - self.adj_base) as usize)
                .map(Vec::as_slice)
                .unwrap_or(&[])
        } else {
            self.adj_low.get(&from).map(Vec::as_slice).unwrap_or(&[])
        }
    }

    /// The mutable adjacency row of `from`, growing the dense window on
    /// demand for fresh sources.
    #[inline]
    fn row_mut(&mut self, from: u32) -> &mut Vec<u32> {
        if from >= self.adj_base {
            let i = (from - self.adj_base) as usize;
            if i >= self.dense.len() {
                self.dense.resize_with(i + 1, Vec::new);
            }
            &mut self.dense[i]
        } else {
            self.adj_low.entry(from).or_default()
        }
    }

    /// True iff the exact labelled edge is present.
    pub fn contains_edge(&self, from: TxnId, to: TxnId, kind: EdgeKind) -> bool {
        self.row(from.0)
            .iter()
            .any(|&i| self.edges[i as usize].to == to && self.edges[i as usize].kind == kind)
    }

    /// True iff some edge of any kind goes `from → to`.
    pub fn contains_any_edge(&self, from: TxnId, to: TxnId) -> bool {
        self.row(from.0)
            .iter()
            .any(|&i| self.edges[i as usize].to == to)
    }

    /// All labelled edges.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Labelled out-edges of `from`.
    pub fn out_edges(&self, from: TxnId) -> impl Iterator<Item = &Edge> + '_ {
        self.row(from.0)
            .iter()
            .map(move |&i| &self.edges[i as usize])
    }

    /// Edges whose kind satisfies `pred`.
    pub fn edges_matching<'a, F>(&'a self, pred: F) -> impl Iterator<Item = &'a Edge> + 'a
    where
        F: Fn(EdgeKind) -> bool + 'a,
    {
        self.edges.iter().filter(move |e| pred(e.kind))
    }

    /// Projects the edges whose kind satisfies `pred` onto an unlabelled
    /// [`DiGraph`] for cycle analysis.
    pub fn project<F>(&self, pred: F) -> DiGraph
    where
        F: Fn(EdgeKind) -> bool,
    {
        let mut g = DiGraph::new(self.node_count);
        for e in &self.edges {
            if pred(e.kind) {
                g.add_edge(e.from.index(), e.to.index());
            }
        }
        g
    }

    /// Projects *all* edges onto a [`DiGraph`].
    pub fn project_all(&self) -> DiGraph {
        self.project(|_| true)
    }

    /// True iff the subgraph restricted to edges matching `pred` is acyclic.
    pub fn is_acyclic<F>(&self, pred: F) -> bool
    where
        F: Fn(EdgeKind) -> bool,
    {
        self.project(pred).is_acyclic()
    }

    /// Finds a cycle (over edges matching `pred`) and labels it: for each
    /// consecutive node pair one labelled edge is selected (preferring, in
    /// order, `WW`, `WR`, `RW`, `SO`, `RT`, to match the paper's
    /// counterexample style). Returns `None` if the projection is acyclic.
    pub fn find_labelled_cycle<F>(&self, pred: F) -> Option<Vec<Edge>>
    where
        F: Fn(EdgeKind) -> bool + Copy,
    {
        let projected = self.project(pred);
        let cycle = projected.find_cycle()?;
        Some(self.label_node_cycle(&cycle, pred))
    }

    /// Labels a node cycle obtained from a projection. For each consecutive
    /// pair of nodes, picks a labelled edge of the allowed kinds.
    pub fn label_node_cycle<F>(&self, cycle: &[usize], pred: F) -> Vec<Edge>
    where
        F: Fn(EdgeKind) -> bool,
    {
        let rank = |k: EdgeKind| match k {
            EdgeKind::Ww(_) => 0,
            EdgeKind::Wr(_) => 1,
            EdgeKind::Rw(_) => 2,
            EdgeKind::So => 3,
            EdgeKind::Rt => 4,
        };
        let mut labelled = Vec::with_capacity(cycle.len());
        for i in 0..cycle.len() {
            let u = cycle[i];
            let v = cycle[(i + 1) % cycle.len()];
            let best = self
                .row(u as u32)
                .iter()
                .map(|&idx| &self.edges[idx as usize])
                .filter(|e| e.to.index() == v && pred(e.kind))
                .min_by_key(|e| rank(e.kind));
            if let Some(e) = best {
                labelled.push(*e);
            }
        }
        labelled
    }

    /// The `WW(key)` successors of `from` (direct edges only).
    pub fn ww_successors(&self, from: TxnId, key: Key) -> Vec<TxnId> {
        self.out_edges(from)
            .filter(|e| e.kind == EdgeKind::Ww(key))
            .map(|e| e.to)
            .collect()
    }

    /// Count of edges per kind class `(so, rt, wr, ww, rw)`.
    pub fn edge_kind_counts(&self) -> (usize, usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0, 0);
        for e in &self.edges {
            match e.kind {
                EdgeKind::So => c.0 += 1,
                EdgeKind::Rt => c.1 += 1,
                EdgeKind::Wr(_) => c.2 += 1,
                EdgeKind::Ww(_) => c.3 += 1,
                EdgeKind::Rw(_) => c.4 += 1,
            }
        }
        c
    }

    /// Rebuilds the adjacency index. Needed after deserialization (the
    /// adjacency is not serialized) and after [`DependencyGraph::prune_nodes`].
    ///
    /// The dense/low split is re-chosen here: the smallest base whose dense
    /// span `node_count - base` stays within twice the number of live
    /// sources above it (plus slack). On an un-GC'd graph every source is
    /// dense; under GC the handful of retained low sources (`⊥T`, session
    /// frontiers) spill to the hash map and the dense window tracks the
    /// live tail, keeping resident index memory proportional to live edges.
    pub fn rebuild_index(&mut self) {
        let mut sources: Vec<u32> = self.edges.iter().map(|e| e.from.0).collect();
        sources.sort_unstable();
        sources.dedup();
        let n = self.node_count as u32;
        let m = sources.len();
        let mut base = n;
        for (i, &s) in sources.iter().enumerate() {
            if n.saturating_sub(s) as usize <= 2 * (m - i) + 64 {
                base = s;
                break;
            }
        }
        self.adj_base = base;
        self.dense = Vec::new();
        self.dense.resize_with((n - base) as usize, Vec::new);
        self.adj_low = FastHashMap::default();
        for i in 0..self.edges.len() {
            let from = self.edges[i].from.0;
            self.row_mut(from).push(i as u32);
        }
    }

    /// Drops every labelled edge with an endpoint for which `pruned`
    /// returns true, freeing the corresponding adjacency rows. Used by the
    /// settled-prefix GC of the streaming checkers: pruned transactions can
    /// no longer appear in any counterexample, so their edges are dead
    /// weight. [`DependencyGraph::edge_count`] keeps counting them;
    /// [`DependencyGraph::live_edge_count`] does not.
    pub fn prune_nodes(&mut self, pruned: impl Fn(TxnId) -> bool) {
        let before = self.edges.len();
        self.edges.retain(|e| !pruned(e.from) && !pruned(e.to));
        self.pruned_edges += before - self.edges.len();
        self.rebuild_index();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TxnId {
        TxnId(i)
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = DependencyGraph::new(3);
        g.add_edge(t(0), t(1), EdgeKind::Wr(Key(5)));
        g.add_edge(t(1), t(2), EdgeKind::Ww(Key(5)));
        g.add_edge_dedup(t(1), t(2), EdgeKind::Ww(Key(5)));
        assert_eq!(g.edge_count(), 2);
        assert!(g.contains_edge(t(0), t(1), EdgeKind::Wr(Key(5))));
        assert!(!g.contains_edge(t(0), t(1), EdgeKind::Ww(Key(5))));
        assert!(g.contains_any_edge(t(1), t(2)));
        assert!(!g.contains_any_edge(t(2), t(1)));
        assert_eq!(g.ww_successors(t(1), Key(5)), vec![t(2)]);
        assert_eq!(g.ww_successors(t(1), Key(6)), Vec::<TxnId>::new());
    }

    #[test]
    fn projection_and_acyclicity() {
        let mut g = DependencyGraph::new(3);
        g.add_edge(t(0), t(1), EdgeKind::So);
        g.add_edge(t(1), t(2), EdgeKind::Wr(Key(0)));
        g.add_edge(t(2), t(0), EdgeKind::Rw(Key(0)));
        // Full graph is cyclic ...
        assert!(!g.is_acyclic(|_| true));
        // ... but the SO∪WR projection is acyclic.
        assert!(g.is_acyclic(|k| matches!(k, EdgeKind::So | EdgeKind::Wr(_))));
    }

    #[test]
    fn labelled_cycle_extraction_prefers_dependency_kinds() {
        let mut g = DependencyGraph::new(2);
        g.add_edge(t(0), t(1), EdgeKind::Rt);
        g.add_edge(t(0), t(1), EdgeKind::Ww(Key(1)));
        g.add_edge(t(1), t(0), EdgeKind::Rw(Key(1)));
        let cycle = g.find_labelled_cycle(|_| true).unwrap();
        assert_eq!(cycle.len(), 2);
        // The WW edge is preferred over the RT edge for the 0→1 leg.
        let leg01 = cycle.iter().find(|e| e.from == t(0)).unwrap();
        assert_eq!(leg01.kind, EdgeKind::Ww(Key(1)));
    }

    #[test]
    fn edge_kind_counts_are_tracked() {
        let mut g = DependencyGraph::new(4);
        g.add_edge(t(0), t(1), EdgeKind::So);
        g.add_edge(t(0), t(2), EdgeKind::Rt);
        g.add_edge(t(1), t(2), EdgeKind::Wr(Key(0)));
        g.add_edge(t(1), t(3), EdgeKind::Ww(Key(0)));
        g.add_edge(t(2), t(3), EdgeKind::Rw(Key(0)));
        g.add_edge(t(3), t(0), EdgeKind::Rw(Key(1)));
        assert_eq!(g.edge_kind_counts(), (1, 1, 1, 1, 2));
    }

    #[test]
    fn rebuild_index_restores_adjacency() {
        let mut g = DependencyGraph::new(2);
        g.add_edge(t(0), t(1), EdgeKind::So);
        let json = serde_json::to_string(&g).unwrap();
        let mut back: DependencyGraph = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        assert!(back.contains_edge(t(0), t(1), EdgeKind::So));
    }

    #[test]
    fn prune_nodes_drops_incident_edges_but_keeps_totals() {
        let mut g = DependencyGraph::new(4);
        g.add_edge(t(0), t(1), EdgeKind::So);
        g.add_edge(t(1), t(2), EdgeKind::Wr(Key(0)));
        g.add_edge(t(2), t(3), EdgeKind::Ww(Key(0)));
        g.prune_nodes(|id| id.0 <= 1);
        assert_eq!(g.edge_count(), 3, "historical total is preserved");
        assert_eq!(g.live_edge_count(), 1);
        assert!(g.contains_edge(t(2), t(3), EdgeKind::Ww(Key(0))));
        assert!(!g.contains_edge(t(0), t(1), EdgeKind::So));
        assert!(!g.contains_any_edge(t(1), t(2)));
        // The graph keeps accepting edges among live nodes.
        g.add_edge(t(3), t(2), EdgeKind::Rw(Key(0)));
        assert_eq!(g.live_edge_count(), 2);
        assert!(g.contains_edge(t(3), t(2), EdgeKind::Rw(Key(0))));
    }

    #[test]
    fn display_of_edges() {
        let e = Edge {
            from: t(1),
            to: t(2),
            kind: EdgeKind::Wr(Key(3)),
        };
        assert_eq!(format!("{e:?}"), "T1 -WR(3)-> T2");
    }
}
