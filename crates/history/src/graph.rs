//! Generic directed-graph utilities.
//!
//! The verification algorithms of `mtc-core` and the baselines in
//! `mtc-baselines` all reduce to questions about directed graphs whose nodes
//! are transactions: *is the graph acyclic?*, *extract one cycle as a
//! counterexample*, *compute strongly connected components*. This module
//! provides those primitives on a compact adjacency-list representation with
//! `usize` node identifiers.
//!
//! All traversals are iterative (explicit stacks) so that histories with
//! hundreds of thousands of transactions do not overflow the call stack.

use std::collections::VecDeque;

/// A directed graph over nodes `0..n` with unlabelled edges.
///
/// Parallel edges are tolerated (they do not affect cycle questions) but can
/// be avoided by callers via [`DiGraph::add_edge_dedup`].
#[derive(Clone, Debug, Default)]
pub struct DiGraph {
    adj: Vec<Vec<usize>>,
    edge_count: usize,
}

impl DiGraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph {
            adj: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Appends a fresh node with no edges, returning its id. Supports the
    /// streaming checkers, whose graphs grow one transaction at a time.
    #[inline]
    pub fn add_node(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Number of edges (counting duplicates).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds the edge `from → to`.
    #[inline]
    pub fn add_edge(&mut self, from: usize, to: usize) {
        debug_assert!(from < self.adj.len() && to < self.adj.len());
        self.adj[from].push(to);
        self.edge_count += 1;
    }

    /// Adds `from → to` unless an identical edge is already present.
    ///
    /// This is a linear scan of `from`'s adjacency list; callers with dense
    /// out-degrees should deduplicate externally instead.
    pub fn add_edge_dedup(&mut self, from: usize, to: usize) {
        if !self.adj[from].contains(&to) {
            self.add_edge(from, to);
        }
    }

    /// Successors of `node`.
    #[inline]
    pub fn successors(&self, node: usize) -> &[usize] {
        &self.adj[node]
    }

    /// Iterator over all edges.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (u, v)))
    }

    /// True iff the graph contains no directed cycle.
    pub fn is_acyclic(&self) -> bool {
        self.topological_order().is_some()
    }

    /// Kahn's algorithm. Returns a topological order, or `None` if the graph
    /// has a cycle.
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let n = self.node_count();
        let mut indeg = vec![0usize; n];
        for (_, v) in self.edges() {
            indeg[v] += 1;
        }
        let mut queue: VecDeque<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &v in &self.adj[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push_back(v);
                }
            }
        }
        if order.len() == n {
            Some(order)
        } else {
            None
        }
    }

    /// Finds one directed cycle and returns its nodes in order
    /// (`c[0] → c[1] → … → c[k-1] → c[0]`), or `None` if the graph is acyclic.
    pub fn find_cycle(&self) -> Option<Vec<usize>> {
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let n = self.node_count();
        let mut color = vec![WHITE; n];
        let mut parent = vec![usize::MAX; n];

        for start in 0..n {
            if color[start] != WHITE {
                continue;
            }
            // Iterative DFS: stack of (node, next-successor-index).
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            color[start] = GRAY;
            while let Some(&mut (u, ref mut i)) = stack.last_mut() {
                if *i < self.adj[u].len() {
                    let v = self.adj[u][*i];
                    *i += 1;
                    match color[v] {
                        WHITE => {
                            color[v] = GRAY;
                            parent[v] = u;
                            stack.push((v, 0));
                        }
                        GRAY => {
                            // Back edge u → v closes a cycle v → … → u → v.
                            let mut cycle = vec![u];
                            let mut cur = u;
                            while cur != v {
                                cur = parent[cur];
                                cycle.push(cur);
                            }
                            cycle.reverse();
                            return Some(cycle);
                        }
                        _ => {}
                    }
                } else {
                    color[u] = BLACK;
                    stack.pop();
                }
            }
        }
        None
    }

    /// Tarjan's strongly-connected-components algorithm (iterative).
    ///
    /// Returns the list of components; every node appears in exactly one
    /// component. Components are emitted in reverse topological order of the
    /// condensation.
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        let n = self.node_count();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut result: Vec<Vec<usize>> = Vec::new();
        let mut next_index = 0usize;

        // call stack of (node, next child index)
        let mut call: Vec<(usize, usize)> = Vec::new();

        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            call.push((start, 0));
            index[start] = next_index;
            low[start] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start] = true;

            while let Some(&mut (u, ref mut i)) = call.last_mut() {
                if *i < self.adj[u].len() {
                    let v = self.adj[u][*i];
                    *i += 1;
                    if index[v] == usize::MAX {
                        index[v] = next_index;
                        low[v] = next_index;
                        next_index += 1;
                        stack.push(v);
                        on_stack[v] = true;
                        call.push((v, 0));
                    } else if on_stack[v] {
                        low[u] = low[u].min(index[v]);
                    }
                } else {
                    call.pop();
                    if let Some(&(p, _)) = call.last() {
                        low[p] = low[p].min(low[u]);
                    }
                    if low[u] == index[u] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack invariant");
                            on_stack[w] = false;
                            comp.push(w);
                            if w == u {
                                break;
                            }
                        }
                        result.push(comp);
                    }
                }
            }
        }
        result
    }

    /// The set of nodes reachable from `start` (including `start`).
    pub fn reachable_from(&self, start: usize) -> Vec<bool> {
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(u) = stack.pop() {
            for &v in &self.adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        seen
    }

    /// Shortest path (in edge count) from `from` to `to`, as the list of
    /// nodes visited, or `None` if unreachable. Used to build readable
    /// counterexample cycles.
    pub fn shortest_path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        let n = self.node_count();
        let mut parent = vec![usize::MAX; n];
        let mut seen = vec![false; n];
        let mut queue = VecDeque::new();
        queue.push_back(from);
        seen[from] = true;
        while let Some(u) = queue.pop_front() {
            if u == to {
                let mut path = vec![to];
                let mut cur = to;
                while cur != from {
                    cur = parent[cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            for &v in &self.adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    parent[v] = u;
                    queue.push_back(v);
                }
            }
        }
        None
    }

    /// Computes the transitive closure restricted to the given node subset,
    /// returning, for every node in `nodes`, the subset members reachable
    /// from it. Quadratic in `nodes.len()`; used only by the reference
    /// (non-optimized) `BUILDDEPENDENCY` on per-key write sets, which are
    /// small for mini-transaction histories.
    pub fn closure_within(&self, nodes: &[usize]) -> Vec<(usize, Vec<usize>)> {
        nodes
            .iter()
            .map(|&u| {
                let seen = self.reachable_from(u);
                let reach = nodes
                    .iter()
                    .copied()
                    .filter(|&v| v != u && seen[v])
                    .collect();
                (u, reach)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize, edges: &[(usize, usize)]) -> DiGraph {
        let mut g = DiGraph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    #[test]
    fn empty_graph_is_acyclic() {
        let g = DiGraph::new(0);
        assert!(g.is_acyclic());
        assert_eq!(g.find_cycle(), None);
        assert_eq!(g.topological_order(), Some(vec![]));
    }

    #[test]
    fn dag_is_acyclic_and_topo_sorted() {
        let g = graph(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert!(g.is_acyclic());
        let order = g.topological_order().unwrap();
        let pos = |x: usize| order.iter().position(|&v| v == x).unwrap();
        assert!(pos(0) < pos(1) && pos(0) < pos(2));
        assert!(pos(1) < pos(3) && pos(2) < pos(3));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let g = graph(2, &[(1, 1)]);
        assert!(!g.is_acyclic());
        assert_eq!(g.find_cycle(), Some(vec![1]));
    }

    #[test]
    fn two_node_cycle_found() {
        let g = graph(3, &[(0, 1), (1, 2), (2, 1)]);
        assert!(!g.is_acyclic());
        let cycle = g.find_cycle().unwrap();
        assert_eq!(cycle.len(), 2);
        assert!(cycle.contains(&1) && cycle.contains(&2));
    }

    #[test]
    fn cycle_nodes_form_a_closed_walk() {
        let g = graph(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 1), (0, 5)]);
        let cycle = g.find_cycle().unwrap();
        // verify each consecutive pair is an edge, and last → first
        for i in 0..cycle.len() {
            let u = cycle[i];
            let v = cycle[(i + 1) % cycle.len()];
            assert!(g.successors(u).contains(&v), "missing edge {u}->{v}");
        }
    }

    #[test]
    fn sccs_partition_the_nodes() {
        let g = graph(7, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 3), (5, 6)]);
        let mut sccs = g.sccs();
        for c in &mut sccs {
            c.sort_unstable();
        }
        sccs.sort();
        assert!(sccs.contains(&vec![0, 1, 2]));
        assert!(sccs.contains(&vec![3, 4]));
        assert!(sccs.contains(&vec![5]));
        assert!(sccs.contains(&vec![6]));
        let total: usize = sccs.iter().map(|c| c.len()).sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn reachability_and_shortest_path() {
        let g = graph(5, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let r = g.reachable_from(0);
        assert_eq!(r, vec![true, true, true, true, false]);
        assert_eq!(g.shortest_path(0, 3), Some(vec![0, 3]));
        assert_eq!(g.shortest_path(1, 3), Some(vec![1, 2, 3]));
        assert_eq!(g.shortest_path(3, 0), None);
    }

    #[test]
    fn dedup_edges() {
        let mut g = DiGraph::new(2);
        g.add_edge_dedup(0, 1);
        g.add_edge_dedup(0, 1);
        assert_eq!(g.edge_count(), 1);
        g.add_edge(0, 1);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn closure_within_subset() {
        let g = graph(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let closure = g.closure_within(&[0, 2, 4]);
        let get = |u: usize| {
            closure
                .iter()
                .find(|(n, _)| *n == u)
                .map(|(_, r)| r.clone())
                .unwrap()
        };
        assert_eq!(get(0), vec![2, 4]);
        assert_eq!(get(2), vec![4]);
        assert_eq!(get(4), Vec::<usize>::new());
    }

    #[test]
    fn large_path_graph_does_not_overflow_stack() {
        // 200k-node path exercises the iterative DFS/Tarjan implementations.
        let n = 200_000;
        let mut g = DiGraph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        assert!(g.is_acyclic());
        assert_eq!(g.sccs().len(), n);
        g.add_edge(n - 1, 0);
        assert!(!g.is_acyclic());
        assert_eq!(g.find_cycle().unwrap().len(), n);
    }
}
