//! Read and write operations.
//!
//! An operation invocation is either `R(x, v)` — a read of object `x`
//! returning value `v` — or `W(x, v)` — a write of value `v` to object `x`
//! (Section II-B of the paper). For lightweight-transaction histories
//! (Section II-F) the start and finish wall-clock instants of an operation
//! matter, which [`TimedOp`] captures.

use crate::value::{Key, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single read or write operation inside a transaction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// `R(key, value)` — read `value` from `key`.
    Read {
        /// Object read.
        key: Key,
        /// Value returned by the database.
        value: Value,
    },
    /// `W(key, value)` — write `value` to `key`.
    Write {
        /// Object written.
        key: Key,
        /// Value installed.
        value: Value,
    },
}

impl Op {
    /// Convenience constructor for a read.
    #[inline]
    pub fn read(key: impl Into<Key>, value: impl Into<Value>) -> Self {
        Op::Read {
            key: key.into(),
            value: value.into(),
        }
    }

    /// Convenience constructor for a write.
    #[inline]
    pub fn write(key: impl Into<Key>, value: impl Into<Value>) -> Self {
        Op::Write {
            key: key.into(),
            value: value.into(),
        }
    }

    /// The object this operation touches.
    #[inline]
    pub fn key(&self) -> Key {
        match *self {
            Op::Read { key, .. } | Op::Write { key, .. } => key,
        }
    }

    /// The value read or written.
    #[inline]
    pub fn value(&self) -> Value {
        match *self {
            Op::Read { value, .. } | Op::Write { value, .. } => value,
        }
    }

    /// True iff this is a read.
    #[inline]
    pub fn is_read(&self) -> bool {
        matches!(self, Op::Read { .. })
    }

    /// True iff this is a write.
    #[inline]
    pub fn is_write(&self) -> bool {
        matches!(self, Op::Write { .. })
    }
}

impl fmt::Debug for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Read { key, value } => write!(f, "R({key},{value})"),
            Op::Write { key, value } => write!(f, "W({key},{value})"),
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Monotonic wall-clock instant, in nanoseconds since an arbitrary origin.
///
/// Only the relative order of instants matters for real-time precedence.
pub type Instant = u64;

/// A lightweight-transaction operation with its start and finish instants.
///
/// Used by the `VL-LWT` linearizability checker and the Porcupine-style
/// baseline, where each "transaction" is a single `read&write`
/// (Compare-And-Set), `read`, or `insert-if-not-exists` invocation on one
/// object.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimedOp {
    /// Start instant (invocation).
    pub start: Instant,
    /// Finish instant (response). Must satisfy `finish >= start`.
    pub finish: Instant,
    /// The object touched.
    pub key: Key,
    /// What the operation did.
    pub kind: LwtKind,
}

/// The three lightweight-transaction shapes of Section II-F.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LwtKind {
    /// `R&W(x, expected, new)` — read `expected` from `x` and write `new`.
    ReadWrite {
        /// Value observed by the read part.
        expected: Value,
        /// Value installed by the write part.
        new: Value,
    },
    /// A plain read returning `value` (also the result of a failed CAS).
    Read {
        /// Value observed.
        value: Value,
    },
    /// A successful insert-if-not-exists installing `value`.
    Insert {
        /// Value installed.
        value: Value,
    },
}

impl TimedOp {
    /// A successful compare-and-set.
    pub fn read_write(
        start: Instant,
        finish: Instant,
        key: impl Into<Key>,
        expected: impl Into<Value>,
        new: impl Into<Value>,
    ) -> Self {
        TimedOp {
            start,
            finish,
            key: key.into(),
            kind: LwtKind::ReadWrite {
                expected: expected.into(),
                new: new.into(),
            },
        }
    }

    /// A plain read.
    pub fn read(
        start: Instant,
        finish: Instant,
        key: impl Into<Key>,
        value: impl Into<Value>,
    ) -> Self {
        TimedOp {
            start,
            finish,
            key: key.into(),
            kind: LwtKind::Read {
                value: value.into(),
            },
        }
    }

    /// A successful insert-if-not-exists.
    pub fn insert(
        start: Instant,
        finish: Instant,
        key: impl Into<Key>,
        value: impl Into<Value>,
    ) -> Self {
        TimedOp {
            start,
            finish,
            key: key.into(),
            kind: LwtKind::Insert {
                value: value.into(),
            },
        }
    }

    /// The value this operation installs, if it writes.
    pub fn written_value(&self) -> Option<Value> {
        match self.kind {
            LwtKind::ReadWrite { new, .. } => Some(new),
            LwtKind::Insert { value } => Some(value),
            LwtKind::Read { .. } => None,
        }
    }

    /// The value this operation observes, if it reads.
    pub fn read_value(&self) -> Option<Value> {
        match self.kind {
            LwtKind::ReadWrite { expected, .. } => Some(expected),
            LwtKind::Read { value } => Some(value),
            LwtKind::Insert { .. } => None,
        }
    }

    /// True iff `self` finishes before `other` starts (real-time precedence).
    #[inline]
    pub fn precedes(&self, other: &TimedOp) -> bool {
        self.finish < other.start
    }
}

impl fmt::Debug for TimedOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            LwtKind::ReadWrite { expected, new } => write!(
                f,
                "R&W({},{},{},{},{})",
                self.start, self.finish, self.key, expected, new
            ),
            LwtKind::Read { value } => {
                write!(
                    f,
                    "R({},{},{},{})",
                    self.start, self.finish, self.key, value
                )
            }
            LwtKind::Insert { value } => {
                write!(
                    f,
                    "I({},{},{},{})",
                    self.start, self.finish, self.key, value
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_accessors() {
        let r = Op::read(1u64, 2u64);
        let w = Op::write(3u64, 4u64);
        assert!(r.is_read() && !r.is_write());
        assert!(w.is_write() && !w.is_read());
        assert_eq!(r.key(), Key(1));
        assert_eq!(r.value(), Value(2));
        assert_eq!(w.key(), Key(3));
        assert_eq!(w.value(), Value(4));
    }

    #[test]
    fn op_debug_format_matches_paper_notation() {
        assert_eq!(format!("{:?}", Op::read(2u64, 4738u64)), "R(2,4738)");
        assert_eq!(format!("{:?}", Op::write(2u64, 4743u64)), "W(2,4743)");
    }

    #[test]
    fn timed_op_precedence_is_strict() {
        let a = TimedOp::read_write(1, 4, 0u64, 0u64, 1u64);
        let b = TimedOp::read_write(5, 8, 0u64, 1u64, 2u64);
        let c = TimedOp::read_write(4, 9, 0u64, 2u64, 3u64);
        assert!(a.precedes(&b));
        assert!(!b.precedes(&a));
        // Overlapping (c starts exactly when a finishes) is not precedence.
        assert!(!a.precedes(&c));
    }

    #[test]
    fn timed_op_read_and_written_values() {
        let rw = TimedOp::read_write(0, 1, 9u64, 10u64, 11u64);
        assert_eq!(rw.read_value(), Some(Value(10)));
        assert_eq!(rw.written_value(), Some(Value(11)));
        let r = TimedOp::read(0, 1, 9u64, 10u64);
        assert_eq!(r.read_value(), Some(Value(10)));
        assert_eq!(r.written_value(), None);
        let i = TimedOp::insert(0, 1, 9u64, 10u64);
        assert_eq!(i.read_value(), None);
        assert_eq!(i.written_value(), Some(Value(10)));
    }
}
