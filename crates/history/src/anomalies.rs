//! The catalogue of the 14 isolation anomalies of Figure 5 / Table I,
//! expressed as mini-transaction histories.
//!
//! Every constructor returns a small, self-contained [`History`] whose
//! transactions obey the mini-transaction shape (at most two reads, at most
//! two writes, every write preceded by a read of the same object) and the
//! unique-value convention, demonstrating that MTs are expressive enough to
//! capture each anomaly. [`AnomalyKind::expected`] records which of the three
//! strong isolation levels each anomaly violates — this matrix is what the
//! `table1_anomalies` experiment reproduces.
//!
//! Object `x` is key `0` and object `y` is key `1` throughout.

use crate::history::{History, HistoryBuilder};
use crate::op::Op;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which isolation levels a history is expected to violate.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ExpectedVerdicts {
    /// Violates strict serializability.
    pub violates_sser: bool,
    /// Violates serializability.
    pub violates_ser: bool,
    /// Violates snapshot isolation.
    pub violates_si: bool,
}

/// The 14 anomalies of Figure 5 of the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum AnomalyKind {
    ThinAirRead,
    AbortedRead,
    FutureRead,
    NotMyLastWrite,
    NotMyOwnWrite,
    IntermediateRead,
    NonRepeatableReads,
    SessionGuaranteeViolation,
    NonMonotonicRead,
    FracturedRead,
    CausalityViolation,
    LongFork,
    LostUpdate,
    WriteSkew,
}

impl AnomalyKind {
    /// All 14 anomalies, in the order of Figure 5.
    pub const ALL: [AnomalyKind; 14] = [
        AnomalyKind::ThinAirRead,
        AnomalyKind::AbortedRead,
        AnomalyKind::FutureRead,
        AnomalyKind::NotMyLastWrite,
        AnomalyKind::NotMyOwnWrite,
        AnomalyKind::IntermediateRead,
        AnomalyKind::NonRepeatableReads,
        AnomalyKind::SessionGuaranteeViolation,
        AnomalyKind::NonMonotonicRead,
        AnomalyKind::FracturedRead,
        AnomalyKind::CausalityViolation,
        AnomalyKind::LongFork,
        AnomalyKind::LostUpdate,
        AnomalyKind::WriteSkew,
    ];

    /// The witness history of Figure 5 for this anomaly.
    pub fn history(self) -> History {
        match self {
            AnomalyKind::ThinAirRead => thin_air_read(),
            AnomalyKind::AbortedRead => aborted_read(),
            AnomalyKind::FutureRead => future_read(),
            AnomalyKind::NotMyLastWrite => not_my_last_write(),
            AnomalyKind::NotMyOwnWrite => not_my_own_write(),
            AnomalyKind::IntermediateRead => intermediate_read(),
            AnomalyKind::NonRepeatableReads => non_repeatable_reads(),
            AnomalyKind::SessionGuaranteeViolation => session_guarantee_violation(),
            AnomalyKind::NonMonotonicRead => non_monotonic_read(),
            AnomalyKind::FracturedRead => fractured_read(),
            AnomalyKind::CausalityViolation => causality_violation(),
            AnomalyKind::LongFork => long_fork(),
            AnomalyKind::LostUpdate => lost_update(),
            AnomalyKind::WriteSkew => write_skew(),
        }
    }

    /// Which isolation levels the witness history violates.
    ///
    /// Every anomaly violates SER and hence SSER. `WRITESKEW` is the one
    /// anomaly *allowed* under snapshot isolation: its dependency cycle
    /// contains two adjacent RW edges. (`LONGFORK` is allowed under *parallel*
    /// snapshot isolation but not under SI, whose start-ordered snapshots
    /// cannot show two writes in opposite orders to two readers.)
    pub fn expected(self) -> ExpectedVerdicts {
        let violates_si = !matches!(self, AnomalyKind::WriteSkew);
        ExpectedVerdicts {
            violates_sser: true,
            violates_ser: true,
            violates_si,
        }
    }

    /// True for anomalies detected by the intra-transactional / read-
    /// provenance pre-check (Figures 5a–5g) rather than by graph analysis.
    pub fn is_intra(self) -> bool {
        matches!(
            self,
            AnomalyKind::ThinAirRead
                | AnomalyKind::AbortedRead
                | AnomalyKind::FutureRead
                | AnomalyKind::NotMyLastWrite
                | AnomalyKind::NotMyOwnWrite
                | AnomalyKind::IntermediateRead
                | AnomalyKind::NonRepeatableReads
        )
    }

    /// The one-line description of Table I.
    pub fn description(self) -> &'static str {
        match self {
            AnomalyKind::ThinAirRead => "A transaction reads a value out of thin air.",
            AnomalyKind::AbortedRead => "A transaction reads a value from an aborted transaction.",
            AnomalyKind::FutureRead => {
                "A transaction reads from a write that occurs later in the same transaction."
            }
            AnomalyKind::NotMyLastWrite => {
                "A transaction reads from its own but not the last write on the same object."
            }
            AnomalyKind::NotMyOwnWrite => {
                "A transaction does not read from its own write on the same object."
            }
            AnomalyKind::IntermediateRead => {
                "A transaction reads a value that was later overwritten by the transaction that wrote it."
            }
            AnomalyKind::NonRepeatableReads => {
                "A transaction reads multiple times from the same object but receives different values."
            }
            AnomalyKind::SessionGuaranteeViolation => {
                "A transaction misses the effect of the preceding transaction in the same session."
            }
            AnomalyKind::NonMonotonicRead => {
                "T3 reads y from T2 and then reads x from T1, but T2 has overwritten T1 on x."
            }
            AnomalyKind::FracturedRead => {
                "T1 updates both x and y, but T2 observes only the update to x."
            }
            AnomalyKind::CausalityViolation => {
                "T3 sees the effect of T2 on y, but misses the effect of T1, which is seen by T2, on x."
            }
            AnomalyKind::LongFork => {
                "T3 observes T1's write to x but misses T2's write to y, while T4 observes the opposite."
            }
            AnomalyKind::LostUpdate => {
                "Concurrent transactions write to the same object, and one of the writes is lost."
            }
            AnomalyKind::WriteSkew => {
                "Concurrent transactions read both x and y, then write to x and y respectively."
            }
        }
    }
}

impl fmt::Display for AnomalyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// All 14 anomalies paired with their witness histories.
pub fn catalogue() -> Vec<(AnomalyKind, History)> {
    AnomalyKind::ALL.iter().map(|&k| (k, k.history())).collect()
}

const X: u64 = 0;
const Y: u64 = 1;

/// Fig. 5a — a read of a value nobody ever wrote.
pub fn thin_air_read() -> History {
    let mut b = HistoryBuilder::new().with_init(1);
    b.committed(0, vec![Op::read(X, 42u64)]);
    b.build()
}

/// Fig. 5b — reading the write of an aborted transaction.
pub fn aborted_read() -> History {
    let mut b = HistoryBuilder::new().with_init(1);
    b.aborted(0, vec![Op::read(X, 0u64), Op::write(X, 1u64)]);
    b.committed(1, vec![Op::read(X, 1u64)]);
    b.build()
}

/// Fig. 5c — reading a value the same transaction writes only later.
pub fn future_read() -> History {
    let mut b = HistoryBuilder::new().with_init(1);
    b.committed(0, vec![Op::read(X, 7u64), Op::write(X, 7u64)]);
    b.build()
}

/// Fig. 5d — reading an own write that is not the latest own write.
pub fn not_my_last_write() -> History {
    let mut b = HistoryBuilder::new().with_init(1);
    b.committed(
        0,
        vec![
            Op::read(X, 0u64),
            Op::write(X, 1u64),
            Op::write(X, 2u64),
            Op::read(X, 1u64),
        ],
    );
    b.build()
}

/// Fig. 5e — a read after an own write returning a foreign value.
pub fn not_my_own_write() -> History {
    let mut b = HistoryBuilder::new().with_init(1);
    b.committed(
        0,
        vec![Op::read(X, 0u64), Op::write(X, 2u64), Op::read(X, 1u64)],
    );
    b.committed(1, vec![Op::read(X, 0u64), Op::write(X, 1u64)]);
    b.build()
}

/// Fig. 5f — reading a value its writer later overwrote.
pub fn intermediate_read() -> History {
    let mut b = HistoryBuilder::new().with_init(1);
    b.committed(0, vec![Op::read(X, 1u64)]);
    b.committed(
        1,
        vec![Op::read(X, 0u64), Op::write(X, 1u64), Op::write(X, 2u64)],
    );
    b.build()
}

/// Fig. 5g — two reads of the same object returning different values.
pub fn non_repeatable_reads() -> History {
    let mut b = HistoryBuilder::new().with_init(1);
    b.committed(0, vec![Op::read(X, 0u64), Op::write(X, 1u64)]);
    b.committed(1, vec![Op::read(X, 0u64), Op::write(X, 2u64)]);
    b.committed(2, vec![Op::read(X, 1u64), Op::read(X, 2u64)]);
    b.build()
}

/// Fig. 5h — a transaction misses the effect of its session predecessor.
pub fn session_guarantee_violation() -> History {
    let mut b = HistoryBuilder::new().with_init(1);
    // All three transactions run in the same session.
    b.committed(0, vec![Op::read(X, 0u64), Op::write(X, 1u64)]);
    b.committed(0, vec![Op::read(X, 1u64), Op::write(X, 2u64)]);
    b.committed(0, vec![Op::read(X, 1u64)]);
    b.build()
}

/// Fig. 5i — non-monotonic read across two objects.
pub fn non_monotonic_read() -> History {
    let mut b = HistoryBuilder::new().with_init(2);
    b.committed(0, vec![Op::read(X, 0u64), Op::write(X, 1u64)]);
    b.committed(
        1,
        vec![
            Op::read(X, 1u64),
            Op::write(X, 2u64),
            Op::read(Y, 0u64),
            Op::write(Y, 1u64),
        ],
    );
    b.committed(2, vec![Op::read(Y, 1u64), Op::read(X, 1u64)]);
    b.build()
}

/// Fig. 5j — observing only half of another transaction's updates.
pub fn fractured_read() -> History {
    let mut b = HistoryBuilder::new().with_init(2);
    b.committed(
        0,
        vec![
            Op::read(X, 0u64),
            Op::write(X, 1u64),
            Op::read(Y, 0u64),
            Op::write(Y, 1u64),
        ],
    );
    b.committed(1, vec![Op::read(X, 1u64), Op::read(Y, 0u64)]);
    b.build()
}

/// Fig. 5k — causality violation across three transactions.
pub fn causality_violation() -> History {
    let mut b = HistoryBuilder::new().with_init(2);
    b.committed(0, vec![Op::read(X, 0u64), Op::write(X, 1u64)]);
    b.committed(
        1,
        vec![Op::read(X, 1u64), Op::read(Y, 0u64), Op::write(Y, 1u64)],
    );
    b.committed(2, vec![Op::read(X, 0u64), Op::read(Y, 1u64)]);
    b.build()
}

/// Fig. 5l — the long-fork anomaly (forbidden by both SER and SI; it is only
/// allowed under *parallel* snapshot isolation).
pub fn long_fork() -> History {
    let mut b = HistoryBuilder::new().with_init(2);
    b.committed(0, vec![Op::read(X, 0u64), Op::write(X, 1u64)]);
    b.committed(1, vec![Op::read(Y, 0u64), Op::write(Y, 1u64)]);
    b.committed(2, vec![Op::read(X, 1u64), Op::read(Y, 0u64)]);
    b.committed(3, vec![Op::read(X, 0u64), Op::read(Y, 1u64)]);
    b.build()
}

/// Fig. 5m — the lost-update anomaly (forbidden by SI).
pub fn lost_update() -> History {
    let mut b = HistoryBuilder::new().with_init(1);
    b.committed(0, vec![Op::read(X, 0u64), Op::write(X, 1u64)]);
    b.committed(1, vec![Op::read(X, 0u64), Op::write(X, 2u64)]);
    b.committed(2, vec![Op::read(X, 2u64)]);
    b.build()
}

/// Fig. 5n — the write-skew anomaly (allowed by SI, forbidden by SER).
pub fn write_skew() -> History {
    let mut b = HistoryBuilder::new().with_init(2);
    b.committed(
        0,
        vec![Op::read(X, 0u64), Op::read(Y, 0u64), Op::write(X, 1u64)],
    );
    b.committed(
        1,
        vec![Op::read(X, 0u64), Op::read(Y, 0u64), Op::write(Y, 1u64)],
    );
    b.build()
}

/// The DIVERGENCE pattern of Figure 3: two transactions read the same value
/// of `x` from a third and then write different values. Not itself one of the
/// 14 anomalies, but the key pattern `CHECKSI` rejects early.
pub fn divergence() -> History {
    let mut b = HistoryBuilder::new().with_init(1);
    b.committed(0, vec![Op::read(X, 0u64), Op::write(X, 1u64)]);
    b.committed(1, vec![Op::read(X, 1u64), Op::write(X, 2u64)]);
    b.committed(2, vec![Op::read(X, 1u64), Op::write(X, 3u64)]);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intra::find_intra_anomalies;
    use crate::intra::IntraAnomaly;

    #[test]
    fn catalogue_has_fourteen_entries() {
        assert_eq!(catalogue().len(), 14);
        assert_eq!(AnomalyKind::ALL.len(), 14);
    }

    #[test]
    fn every_history_is_composed_of_mini_transactions() {
        for (kind, h) in catalogue() {
            for t in h.txns() {
                if Some(t.id) == h.init_txn() {
                    continue;
                }
                assert!(
                    t.read_count() >= 1 && t.read_count() <= 2,
                    "{kind}: {t:?} has {} reads",
                    t.read_count()
                );
                assert!(t.write_count() <= 2, "{kind}: {t:?} has too many writes");
                assert!(t.len() <= 4, "{kind}: {t:?} has more than four operations");
                // RMW pattern: every written key is read earlier in the txn.
                for key in t.write_set() {
                    let first_write = t
                        .ops
                        .iter()
                        .position(|o| o.is_write() && o.key() == key)
                        .unwrap();
                    let read_before = t.ops[..first_write]
                        .iter()
                        .any(|o| o.is_read() && o.key() == key);
                    assert!(
                        read_before,
                        "{kind}: write of {key} in {t:?} not preceded by a read"
                    );
                }
            }
        }
    }

    #[test]
    fn every_history_uses_unique_values() {
        for (kind, h) in catalogue() {
            assert!(h.has_unique_values(), "{kind} violates unique values");
        }
    }

    #[test]
    fn intra_anomalies_are_detected_by_the_prescan() {
        for (kind, h) in catalogue() {
            let found = find_intra_anomalies(&h);
            if kind.is_intra() {
                assert!(!found.is_empty(), "{kind} should be caught by the pre-scan");
                let expected = match kind {
                    AnomalyKind::ThinAirRead => IntraAnomaly::ThinAirRead,
                    AnomalyKind::AbortedRead => IntraAnomaly::AbortedRead,
                    AnomalyKind::FutureRead => IntraAnomaly::FutureRead,
                    AnomalyKind::NotMyLastWrite => IntraAnomaly::NotMyLastWrite,
                    AnomalyKind::NotMyOwnWrite => IntraAnomaly::NotMyOwnWrite,
                    AnomalyKind::IntermediateRead => IntraAnomaly::IntermediateRead,
                    AnomalyKind::NonRepeatableReads => IntraAnomaly::NonRepeatableReads,
                    _ => unreachable!(),
                };
                assert!(
                    found.iter().any(|v| v.anomaly == expected),
                    "{kind}: expected {expected:?}, found {found:?}"
                );
            } else {
                assert!(
                    found.is_empty(),
                    "{kind} should not trigger the pre-scan but found {found:?}"
                );
            }
        }
    }

    #[test]
    fn expected_matrix_si_exceptions() {
        assert!(AnomalyKind::LongFork.expected().violates_si);
        assert!(!AnomalyKind::WriteSkew.expected().violates_si);
        assert!(AnomalyKind::LostUpdate.expected().violates_si);
        for k in AnomalyKind::ALL {
            assert!(k.expected().violates_ser);
            assert!(k.expected().violates_sser);
        }
    }

    #[test]
    fn descriptions_are_nonempty() {
        for k in AnomalyKind::ALL {
            assert!(!k.description().is_empty());
        }
    }

    #[test]
    fn divergence_pattern_history_shape() {
        let h = divergence();
        assert_eq!(h.committed_count(), 4);
        assert!(h.has_unique_values());
    }
}
