//! # mtc-history
//!
//! History model substrate for the MTC isolation-checking tool-chain.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: keys and values, read/write operations, transactions with a
//! program order, sessions, *histories* (the client-visible record of an
//! execution, Definition 2 of the paper), and *dependency graphs*
//! (Definition 3) together with generic digraph utilities (cycle detection,
//! strongly connected components, topological order).
//!
//! It also ships the complete catalogue of the 14 isolation anomalies of
//! Figure 5 / Table I of the paper (module [`anomalies`]), expressed as
//! mini-transaction histories, and the *intra-transactional* consistency
//! checks (the `INT` axiom and the anomalies of Figures 5c–5g) in module
//! [`intra`].
//!
//! The types here are deliberately database-agnostic: a history can come from
//! the in-process simulator of `mtc-dbsim`, from a synthetic generator, or be
//! deserialized from a JSON-lines file produced by an external client
//! (module [`serde_io`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anomalies;
pub mod depgraph;
pub mod fasthash;
pub mod graph;
pub mod history;
pub mod incremental;
pub mod intra;
pub mod op;
pub mod serde_io;
pub mod session;
pub mod synthetic;
pub mod timechain;
pub mod txn;
pub mod value;

pub use anomalies::{AnomalyKind, ExpectedVerdicts};
pub use depgraph::{DependencyGraph, Edge, EdgeKind};
pub use fasthash::{FastHashMap, FastHashSet};
pub use graph::DiGraph;
pub use history::{History, HistoryBuilder};
pub use incremental::IncrementalTopo;
pub use intra::{check_int, check_int_history, find_intra_anomalies, IntraAnomaly, IntraViolation};
pub use op::{LwtKind, Op, TimedOp};
pub use session::SessionId;
pub use timechain::{Role, TimeChain, TimeSlot};
pub use txn::{Transaction, TxnId, TxnStatus};
pub use value::{Key, Value, ValueAllocator, INIT_VALUE};
