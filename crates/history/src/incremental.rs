//! Incremental cycle detection: online topological-order maintenance in the
//! style of Pearce & Kelly ("A Dynamic Topological Sort Algorithm for
//! Directed Acyclic Graphs", JEA 2007).
//!
//! The streaming verifiers of `mtc-core` grow their dependency graphs one
//! edge at a time as transactions commit. Re-running a full DFS/Tarjan pass
//! per insertion would cost `O(n·m)` over a history; [`IncrementalTopo`]
//! instead maintains a total order consistent with all edges and only
//! reorders the *affected region* — the nodes whose order is contradicted by
//! a newly inserted edge. For mini-transaction histories fed in commit
//! order, almost every edge points forward in the maintained order, so the
//! amortized cost per edge is `O(1)` and a whole history is processed in
//! `O(n)`.
//!
//! [`IncrementalTopo::try_add_edge`] either accepts the edge (adjusting the
//! order if necessary) or rejects it and returns a directed cycle as the
//! counterexample — exactly the certificate the online checkers hand back to
//! the user.
//!
//! ## Batched insertion
//!
//! The merge thread of `mtc-core`'s sharded checker receives edges in bursts
//! (one batch of transactions per hand-off). [`IncrementalTopo::try_add_edges`]
//! inserts such a burst with **one** affected-region recomputation instead of
//! one per edge: edges that agree with the maintained order are accepted in
//! `O(1)` each, the backward edges are resolved together by re-sorting the
//! single rank window they span, and only when that window turns out to
//! contain a cycle does the implementation fall back to edge-at-a-time replay
//! — which makes the batched path report the **exact same** first offending
//! edge and cycle certificate as sequential insertion would.
//!
//! To keep that equivalence independent of the internal rank state (which the
//! batched path maintains differently from the per-edge path), cycle
//! certificates are *canonical*: a breadth-first shortest path over the
//! accepted edges in insertion order, which depends only on the sequence of
//! accepted edges, never on the maintained ranks.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// An online topological order over a growable directed graph.
///
/// Nodes are dense `usize` ids, added with [`IncrementalTopo::add_node`] (or
/// up-front via [`IncrementalTopo::with_nodes`]); edges are inserted with
/// [`IncrementalTopo::try_add_edge`], which fails — returning the offending
/// cycle and leaving the structure unchanged — iff the edge would create one.
///
/// ## Pruning and node recycling
///
/// Long-running streams settle most of their history: once no future edge
/// can touch a node, the node only wastes memory. [`IncrementalTopo::prune`]
/// retires a predecessor-closed set of nodes (no retained node may point
/// into the set), freeing their adjacency and recycling their ids —
/// [`IncrementalTopo::add_node`] hands retired ids out again, so the
/// resident size is proportional to the number of *live* nodes
/// ([`IncrementalTopo::live_node_count`]), not to everything ever added.
/// Pruning cannot change any future verdict: a new edge is rejected iff a
/// path `to ⇝ from` exists, and no path between live nodes ever crosses a
/// predecessor-closed retired set (entering it would need exactly the
/// retained→pruned edge the precondition forbids). Cycle certificates stay
/// canonical because they never involve retired nodes.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct IncrementalTopo {
    /// Forward adjacency.
    fwd: Vec<Vec<u32>>,
    /// Reverse adjacency (needed for the backward half of the reorder pass).
    back: Vec<Vec<u32>>,
    /// `rank[v]` is the position of `v` in the maintained order.
    rank: Vec<u32>,
    /// `node_at[rank[v]] == v`.
    node_at: Vec<u32>,
    /// `retired[v]` iff `v` has been pruned and not yet recycled. Retired
    /// nodes keep their rank slot (so `rank`/`node_at` stay inverse
    /// permutations) but have no edges.
    retired: Vec<bool>,
    /// Retired ids available for recycling, in retirement order.
    free: Vec<u32>,
    edge_count: usize,
    /// Generation-stamped visit marks: `mark[v] == mark_gen` means "seen in
    /// the current traversal". Shared by the affected-region DFS passes and
    /// the membership tests of [`IncrementalTopo::prune`] /
    /// [`IncrementalTopo::remove_edges_into`], so the hot paths never hash
    /// and never allocate per call. Pure scratch — rebuilt lazily, excluded
    /// from snapshots.
    #[serde(skip)]
    mark: Vec<u32>,
    /// Current mark generation (0 = no traversal has run yet).
    #[serde(skip)]
    mark_gen: u32,
}

impl IncrementalTopo {
    /// An empty structure.
    pub fn new() -> Self {
        IncrementalTopo::default()
    }

    /// A structure with `n` pre-allocated, unconnected nodes.
    pub fn with_nodes(n: usize) -> Self {
        let mut t = IncrementalTopo::default();
        for _ in 0..n {
            t.add_node();
        }
        t
    }

    /// Adds a node, returning its id. Fresh nodes are placed last in the
    /// maintained order, which is the natural spot for a transaction that
    /// just committed; recycled ids (from [`IncrementalTopo::prune`]) keep
    /// the rank slot they retired with — an arbitrary but valid position,
    /// since a node without edges is unconstrained.
    pub fn add_node(&mut self) -> usize {
        if let Some(id) = self.free.pop() {
            let id = id as usize;
            self.retired[id] = false;
            return id;
        }
        let id = self.fwd.len();
        self.fwd.push(Vec::new());
        self.back.push(Vec::new());
        self.rank.push(id as u32);
        self.node_at.push(id as u32);
        self.retired.push(false);
        id
    }

    /// Number of node slots ever allocated (an upper bound on node ids;
    /// includes retired slots awaiting recycling).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.fwd.len()
    }

    /// Number of live (non-retired) nodes — the quantity bounded by
    /// settled-prefix garbage collection.
    #[inline]
    pub fn live_node_count(&self) -> usize {
        self.fwd.len() - self.free.len()
    }

    /// True iff `node` is allocated and not retired.
    #[inline]
    pub fn is_live(&self, node: usize) -> bool {
        node < self.fwd.len() && !self.retired[node]
    }

    /// The current predecessors of `node` (sources of edges into it).
    pub fn predecessors(&self, node: usize) -> impl Iterator<Item = usize> + '_ {
        self.back[node].iter().map(|&p| p as usize)
    }

    /// The current successors of `node` (targets of edges out of it).
    pub fn successors(&self, node: usize) -> impl Iterator<Item = usize> + '_ {
        self.fwd[node].iter().map(|&v| v as usize)
    }

    /// True iff at least one edge `from → to` is present.
    pub fn has_edge(&self, from: usize, to: usize) -> bool {
        self.fwd[from].iter().any(|&v| v as usize == to)
    }

    /// Starts a traversal generation: returns a stamp `g` such that no slot
    /// of `self.mark` currently holds `g`, growing the scratch to cover
    /// every allocated node. `mark[v] = g` marks, `mark[v] == g` tests —
    /// index arithmetic instead of a per-call hash set.
    #[inline]
    fn fresh_mark(&mut self) -> u32 {
        if self.mark.len() < self.fwd.len() {
            self.mark.resize(self.fwd.len(), 0);
        }
        if self.mark_gen == u32::MAX {
            self.mark.iter_mut().for_each(|m| *m = 0);
            self.mark_gen = 0;
        }
        self.mark_gen += 1;
        self.mark_gen
    }

    /// Retires a set of live nodes, freeing their adjacency and recycling
    /// their ids through future [`IncrementalTopo::add_node`] calls.
    ///
    /// The set must be **predecessor-closed**: every edge into a pruned node
    /// must originate from another pruned node (callers first delete any
    /// deliberate cut edges with [`IncrementalTopo::remove_edges_into`]).
    /// Under that precondition no path between live nodes can traverse the
    /// pruned set, so every future `try_add_edge`/`try_add_edges` verdict —
    /// including the canonical cycle certificates — is exactly what it would
    /// have been without pruning, provided no future edge touches a pruned
    /// node (the caller's settledness contract).
    ///
    /// # Panics
    ///
    /// Panics if a node is not live or the set is not predecessor-closed.
    /// `nodes` must not contain duplicates.
    pub fn prune(&mut self, nodes: &[usize]) {
        let g = self.fresh_mark();
        for &u in nodes {
            assert!(self.is_live(u), "pruning a dead or unknown node {u}");
            self.mark[u] = g;
        }
        for &u in nodes {
            for &p in &self.back[u] {
                assert!(
                    self.mark[p as usize] == g,
                    "pruned set is not predecessor-closed: live edge {p} -> {u}"
                );
            }
        }
        for &u in nodes {
            let fwd = std::mem::take(&mut self.fwd[u]);
            self.edge_count -= fwd.len();
            for v in fwd {
                let v = v as usize;
                if self.mark[v] != g {
                    self.back[v].retain(|&p| p as usize != u);
                }
            }
            self.back[u] = Vec::new();
            self.retired[u] = true;
            self.free.push(u as u32);
        }
        // Stable-compact the maintained order: live nodes keep their
        // relative order in ranks `0..L`, retired slots move to the tail.
        // Without this, a recycled id would re-enter the order at its *old*
        // (low) rank, turning every subsequent edge into it into a backward
        // edge whose affected-region reorder spans the whole structure —
        // quadratic churn on long GC'd streams.
        let old_order = std::mem::take(&mut self.node_at);
        let mut next = 0u32;
        let mut tail: Vec<u32> = Vec::with_capacity(self.free.len());
        self.node_at = vec![0; old_order.len()];
        for &node in &old_order {
            if self.retired[node as usize] {
                tail.push(node);
            } else {
                self.rank[node as usize] = next;
                self.node_at[next as usize] = node;
                next += 1;
            }
        }
        for node in tail {
            self.rank[node as usize] = next;
            self.node_at[next as usize] = node;
            next += 1;
        }
        // Hand the lowest-ranked retired slot out first, so a run of fresh
        // nodes re-enters the order in ascending rank.
        let rank = &self.rank;
        self.free
            .sort_unstable_by_key(|&id| std::cmp::Reverse(rank[id as usize]));
    }

    /// Deletes every edge `from → t` with `t ∈ targets`, returning how many
    /// were removed. This is the escape hatch for *deliberate* cut edges
    /// ahead of [`IncrementalTopo::prune`] — e.g. the time-chain edge from a
    /// permanently retained instant into a pruned chain prefix, whose
    /// ordering information the caller re-establishes with a shortcut edge.
    /// The maintained order is untouched (it stays valid for the remaining
    /// edges).
    pub fn remove_edges_into(&mut self, from: usize, targets: &[usize]) -> usize {
        let g = self.fresh_mark();
        for &t in targets {
            self.mark[t] = g;
        }
        let before = self.fwd[from].len();
        let fwd = std::mem::take(&mut self.fwd[from]);
        let mark = &self.mark;
        let (kept, cut): (Vec<u32>, Vec<u32>) =
            fwd.into_iter().partition(|&v| mark[v as usize] != g);
        self.fwd[from] = kept;
        for v in cut {
            let v = v as usize;
            if let Some(pos) = self.back[v].iter().position(|&p| p as usize == from) {
                self.back[v].swap_remove(pos);
            }
        }
        let removed = before - self.fwd[from].len();
        self.edge_count -= removed;
        removed
    }

    /// Number of accepted edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Position of `node` in the maintained topological order.
    #[inline]
    pub fn rank_of(&self, node: usize) -> usize {
        self.rank[node] as usize
    }

    /// The maintained order as a node list (rank 0 first).
    pub fn order(&self) -> Vec<usize> {
        self.node_at.iter().map(|&n| n as usize).collect()
    }

    /// Inserts the edge `from → to`.
    ///
    /// Returns `Ok(())` when the graph stays acyclic (the maintained order is
    /// adjusted if needed). Returns `Err(cycle)` when the edge would close a
    /// directed cycle; the cycle is reported as a node sequence
    /// `[to, …, from]` such that each consecutive pair is an existing edge
    /// and `from → to` (the rejected edge) closes the walk. The certificate
    /// is canonical — the breadth-first shortest such path over the accepted
    /// edges in insertion order — so it is identical no matter whether the
    /// preceding edges arrived one at a time or through
    /// [`IncrementalTopo::try_add_edges`]. The structure is left exactly as
    /// before the call, so the caller may keep feeding edges after recording
    /// the violation.
    pub fn try_add_edge(&mut self, from: usize, to: usize) -> Result<(), Vec<usize>> {
        assert!(
            from < self.node_count() && to < self.node_count(),
            "node out of bounds"
        );
        if from == to {
            return Err(vec![from]);
        }
        let ub = self.rank[from];
        let lb = self.rank[to];
        if lb > ub {
            // The edge already agrees with the maintained order.
            self.insert_edge_unchecked(from, to);
            return Ok(());
        }

        // Affected region: ranks in [lb, ub]. Forward DFS from `to`,
        // restricted to the region, looking for `from` (a cycle) and
        // collecting the nodes that must move after `from`. Visited checks
        // are generation-stamped array reads, not hash lookups.
        let gf = self.fresh_mark();
        let mut fwd_set: Vec<usize> = Vec::new();
        let mut stack = vec![to];
        self.mark[to] = gf;
        while let Some(u) = stack.pop() {
            fwd_set.push(u);
            for &v in &self.fwd[u] {
                let v = v as usize;
                if v == from {
                    return Err(self.canonical_cycle(from, to));
                }
                if self.rank[v] <= ub && self.mark[v] != gf {
                    self.mark[v] = gf;
                    stack.push(v);
                }
            }
        }

        // No cycle: backward DFS from `from`, restricted to ranks >= lb,
        // collecting the nodes that must move before `to`'s region.
        let gb = self.fresh_mark();
        let mut back_set: Vec<usize> = Vec::new();
        self.mark[from] = gb;
        let mut stack = vec![from];
        while let Some(u) = stack.pop() {
            back_set.push(u);
            for &v in &self.back[u] {
                let v = v as usize;
                if self.rank[v] >= lb && self.mark[v] != gb {
                    self.mark[v] = gb;
                    stack.push(v);
                }
            }
        }

        // Reorder: everything reachable backward from `from` must precede
        // everything reachable forward from `to`. Reuse the union of their
        // current ranks, keeping each group's internal order.
        back_set.sort_unstable_by_key(|&v| self.rank[v]);
        fwd_set.sort_unstable_by_key(|&v| self.rank[v]);
        let mut pool: Vec<u32> = back_set
            .iter()
            .chain(fwd_set.iter())
            .map(|&v| self.rank[v])
            .collect();
        pool.sort_unstable();
        for (&node, &slot) in back_set.iter().chain(fwd_set.iter()).zip(pool.iter()) {
            self.rank[node] = slot;
            self.node_at[slot as usize] = node as u32;
        }

        self.insert_edge_unchecked(from, to);
        Ok(())
    }

    /// Inserts a batch of edges with at most **one** affected-region
    /// recomputation, with semantics identical to inserting them one at a
    /// time via [`IncrementalTopo::try_add_edge`] in slice order:
    ///
    /// * `Ok(())` — every edge was accepted (the set of accepted edges, the
    ///   adjacency insertion order and every future cycle certificate are
    ///   exactly as in sequential insertion; only the internal rank
    ///   assignment may settle differently, which is unobservable through
    ///   certificates);
    /// * `Err((index, cycle))` — `edges[index]` is the first edge of the
    ///   slice that closes a directed cycle given its predecessors.
    ///   `edges[..index]` remain inserted, `edges[index..]` are **not**
    ///   inserted (the streaming checkers latch on the first violation and
    ///   discard the rest of the batch). The cycle is the same canonical
    ///   certificate sequential insertion would report.
    ///
    /// Edges that agree with the maintained order cost `O(1)` each; the
    /// backward edges of the batch are resolved together by re-sorting the
    /// single rank window they span. Only a batch that actually contains a
    /// cycle pays for an edge-at-a-time replay.
    pub fn try_add_edges(&mut self, edges: &[(usize, usize)]) -> Result<(), (usize, Vec<usize>)> {
        for &(from, to) in edges {
            assert!(
                from < self.node_count() && to < self.node_count(),
                "node out of bounds"
            );
        }
        // Classify against the current ranks. Nothing is inserted yet, so
        // the ranks — and therefore the classification — are stable across
        // this scan. Forward edges cannot close a cycle (any return path
        // over already-present edges would have to descend in rank).
        let (mut lb, mut ub) = (u32::MAX, 0u32);
        let mut backward = 0usize;
        for &(from, to) in edges {
            if from == to || self.rank[from] >= self.rank[to] {
                backward += 1;
                lb = lb.min(self.rank[to]);
                ub = ub.max(self.rank[from]);
            }
        }
        if backward == 0 {
            for &(from, to) in edges {
                self.insert_edge_unchecked(from, to);
            }
            return Ok(());
        }

        // One affected region for the whole batch: the rank window [lb, ub]
        // spanned by the backward edges. Every cycle a batch edge could
        // close, and every node whose rank must move, lies inside it
        // (paths over order-respecting edges ascend in rank, so a walk
        // leaving the window can never return). Re-sort the window's nodes
        // against existing + batch constraints in one pass.
        let size = (ub - lb + 1) as usize;
        let region: Vec<u32> = self.node_at[lb as usize..=ub as usize].to_vec();
        let idx_of = |rank: u32| (rank - lb) as usize;
        let in_region = |rank: u32| rank >= lb && rank <= ub;
        let mut indeg = vec![0u32; size];
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); size];
        for (i, &u) in region.iter().enumerate() {
            for &v in &self.fwd[u as usize] {
                let vr = self.rank[v as usize];
                if in_region(vr) {
                    adj[i].push(idx_of(vr) as u32);
                    indeg[idx_of(vr)] += 1;
                }
            }
        }
        for &(from, to) in edges {
            let (fr, tr) = (self.rank[from], self.rank[to]);
            if in_region(fr) && in_region(tr) {
                adj[idx_of(fr)].push(idx_of(tr) as u32);
                indeg[idx_of(tr)] += 1;
            }
        }
        let mut queue: VecDeque<u32> = (0..size as u32)
            .filter(|&i| indeg[i as usize] == 0)
            .collect();
        let mut order: Vec<u32> = Vec::with_capacity(size);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &v in &adj[u as usize] {
                indeg[v as usize] -= 1;
                if indeg[v as usize] == 0 {
                    queue.push_back(v);
                }
            }
        }
        if order.len() < size {
            // The batch closes a cycle somewhere in the window. Nothing has
            // been inserted yet, so replay edge-at-a-time for the exact
            // first offender and its canonical certificate.
            for (i, &(from, to)) in edges.iter().enumerate() {
                if let Err(cycle) = self.try_add_edge(from, to) {
                    return Err((i, cycle));
                }
            }
            unreachable!("region contained a cycle but sequential replay accepted every edge");
        }
        // Acyclic: commit. Reassign the window's rank slots in the computed
        // order, then append the batch to the adjacency in original slice
        // order (witness canonicality depends on insertion order).
        for (pos, &lidx) in order.iter().enumerate() {
            let node = region[lidx as usize];
            let slot = lb + pos as u32;
            self.rank[node as usize] = slot;
            self.node_at[slot as usize] = node;
        }
        for &(from, to) in edges {
            self.insert_edge_unchecked(from, to);
        }
        Ok(())
    }

    #[inline]
    fn insert_edge_unchecked(&mut self, from: usize, to: usize) {
        self.fwd[from].push(to as u32);
        self.back[to].push(from as u32);
        self.edge_count += 1;
    }

    /// The canonical certificate for the rejected edge `from → to`: the
    /// breadth-first shortest path `[to, …, from]` over the forward
    /// adjacency, visiting neighbours in insertion order. Depends only on
    /// the sequence of accepted edges — never on the maintained ranks — so
    /// per-edge and batched insertion report identical cycles.
    fn canonical_cycle(&self, from: usize, to: usize) -> Vec<usize> {
        if from == to {
            return vec![from];
        }
        let mut parent: Vec<u32> = vec![u32::MAX; self.node_count()];
        let mut queue = VecDeque::new();
        parent[to] = to as u32;
        queue.push_back(to);
        while let Some(u) = queue.pop_front() {
            for &v in &self.fwd[u] {
                let v = v as usize;
                if parent[v] != u32::MAX {
                    continue;
                }
                parent[v] = u as u32;
                if v == from {
                    let mut path = vec![from];
                    let mut cur = from;
                    while cur != to {
                        cur = parent[cur] as usize;
                        path.push(cur);
                    }
                    path.reverse(); // [to, …, from]
                    return path;
                }
                queue.push_back(v);
            }
        }
        unreachable!("cycle certificate requested for an edge that closes no cycle");
    }

    /// True iff `a` currently precedes `b` in the maintained order. For
    /// connected pairs this coincides with reachability-implied order; for
    /// unconnected pairs it is merely the arbitrary order the structure
    /// settled on.
    #[inline]
    pub fn precedes(&self, a: usize, b: usize) -> bool {
        self.rank[a] < self.rank[b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_order_invariant(t: &IncrementalTopo) {
        for u in 0..t.node_count() {
            for &v in &t.fwd[u] {
                assert!(
                    t.rank[u] < t.rank[v as usize],
                    "edge {u}->{v} violates maintained order"
                );
            }
        }
        // rank and node_at must stay inverse permutations.
        for u in 0..t.node_count() {
            assert_eq!(t.node_at[t.rank[u] as usize] as usize, u);
        }
    }

    #[test]
    fn forward_edges_are_cheap_and_valid() {
        let mut t = IncrementalTopo::with_nodes(5);
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)] {
            t.try_add_edge(a, b).unwrap();
        }
        check_order_invariant(&t);
        assert_eq!(t.edge_count(), 5);
    }

    #[test]
    fn backward_edge_triggers_reorder() {
        let mut t = IncrementalTopo::with_nodes(4);
        // Insert in an order that contradicts node-id order.
        t.try_add_edge(3, 2).unwrap();
        t.try_add_edge(2, 1).unwrap();
        t.try_add_edge(1, 0).unwrap();
        check_order_invariant(&t);
        assert!(t.precedes(3, 0));
    }

    #[test]
    fn cycle_is_reported_and_structure_unchanged() {
        let mut t = IncrementalTopo::with_nodes(3);
        t.try_add_edge(0, 1).unwrap();
        t.try_add_edge(1, 2).unwrap();
        let before_rank: Vec<u32> = t.rank.clone();
        let cycle = t.try_add_edge(2, 0).unwrap_err();
        // Cycle reported as [to, …, from] with from → to closing it.
        assert_eq!(cycle, vec![0, 1, 2]);
        assert_eq!(t.rank, before_rank);
        assert_eq!(t.edge_count(), 2);
        // The structure keeps working after the rejection.
        t.try_add_edge(0, 2).unwrap();
        check_order_invariant(&t);
    }

    #[test]
    fn self_loop_is_a_singleton_cycle() {
        let mut t = IncrementalTopo::with_nodes(1);
        assert_eq!(t.try_add_edge(0, 0).unwrap_err(), vec![0]);
    }

    #[test]
    fn two_node_cycle() {
        let mut t = IncrementalTopo::with_nodes(2);
        t.try_add_edge(0, 1).unwrap();
        assert_eq!(t.try_add_edge(1, 0).unwrap_err(), vec![0, 1]);
    }

    #[test]
    fn nodes_can_be_added_on_the_fly() {
        let mut t = IncrementalTopo::new();
        let a = t.add_node();
        let b = t.add_node();
        t.try_add_edge(b, a).unwrap();
        let c = t.add_node();
        t.try_add_edge(a, c).unwrap();
        t.try_add_edge(c, b).unwrap_err();
        check_order_invariant(&t);
    }

    #[test]
    fn duplicate_edges_are_tolerated() {
        let mut t = IncrementalTopo::with_nodes(2);
        t.try_add_edge(0, 1).unwrap();
        t.try_add_edge(0, 1).unwrap();
        assert_eq!(t.edge_count(), 2);
        check_order_invariant(&t);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut t = IncrementalTopo::with_nodes(3);
        t.try_add_edges(&[]).unwrap();
        assert_eq!(t.edge_count(), 0);
    }

    #[test]
    fn forward_batch_is_accepted_without_reordering() {
        let mut t = IncrementalTopo::with_nodes(5);
        let before: Vec<usize> = (0..5).map(|n| t.rank_of(n)).collect();
        t.try_add_edges(&[(0, 1), (1, 2), (0, 4), (2, 3)]).unwrap();
        let after: Vec<usize> = (0..5).map(|n| t.rank_of(n)).collect();
        assert_eq!(before, after, "agreeing edges must not move ranks");
        assert_eq!(t.edge_count(), 4);
        check_order_invariant(&t);
    }

    #[test]
    fn backward_batch_reorders_in_one_pass() {
        let mut t = IncrementalTopo::with_nodes(6);
        // All edges contradict the initial id order.
        t.try_add_edges(&[(5, 4), (4, 3), (3, 2), (2, 1), (1, 0)])
            .unwrap();
        check_order_invariant(&t);
        assert!(t.precedes(5, 0));
        assert_eq!(t.edge_count(), 5);
    }

    #[test]
    fn mixed_batch_keeps_the_order_valid() {
        let mut t = IncrementalTopo::with_nodes(6);
        t.try_add_edges(&[(0, 3), (4, 1), (5, 2), (1, 3), (2, 4)])
            .unwrap();
        check_order_invariant(&t);
        // 5 -> 2 -> 4 -> 1 -> 3 must all be ordered.
        assert!(t.precedes(5, 2) && t.precedes(2, 4) && t.precedes(4, 1) && t.precedes(1, 3));
    }

    #[test]
    fn batch_cycle_reports_first_offender_and_sequential_certificate() {
        // Sequential reference.
        let mut seq = IncrementalTopo::with_nodes(4);
        seq.try_add_edge(0, 1).unwrap();
        seq.try_add_edge(1, 2).unwrap();
        let expected = seq.try_add_edge(2, 0).unwrap_err();

        let mut bat = IncrementalTopo::with_nodes(4);
        let (index, cycle) = bat
            .try_add_edges(&[(0, 1), (1, 2), (2, 0), (2, 3)])
            .unwrap_err();
        assert_eq!(index, 2, "the closing edge is the first offender");
        assert_eq!(cycle, expected, "certificates must be canonical");
        // The prefix stays inserted; the suffix does not.
        assert_eq!(bat.edge_count(), 2);
        check_order_invariant(&bat);
    }

    #[test]
    fn batch_self_loop_is_rejected_at_its_index() {
        let mut t = IncrementalTopo::with_nodes(3);
        let (index, cycle) = t.try_add_edges(&[(0, 1), (2, 2)]).unwrap_err();
        assert_eq!((index, cycle), (1, vec![2]));
        assert_eq!(t.edge_count(), 1);
    }

    #[test]
    fn batch_duplicates_are_tolerated_like_sequential_insertion() {
        let mut t = IncrementalTopo::with_nodes(2);
        t.try_add_edges(&[(0, 1), (0, 1), (0, 1)]).unwrap();
        assert_eq!(t.edge_count(), 3);
        check_order_invariant(&t);
    }

    #[test]
    fn batches_compose_across_calls() {
        let mut t = IncrementalTopo::with_nodes(5);
        t.try_add_edges(&[(3, 1), (1, 4)]).unwrap();
        t.try_add_edges(&[(4, 0), (0, 2)]).unwrap();
        check_order_invariant(&t);
        // Closing the chain 3 -> 1 -> 4 -> 0 -> 2 back to 3 must fail with
        // the full walk as the certificate.
        let (index, cycle) = t.try_add_edges(&[(2, 3)]).unwrap_err();
        assert_eq!(index, 0);
        assert_eq!(cycle, vec![3, 1, 4, 0, 2]);
    }

    #[test]
    fn prune_frees_nodes_and_recycles_ids() {
        let mut t = IncrementalTopo::with_nodes(4);
        t.try_add_edge(0, 1).unwrap();
        t.try_add_edge(1, 2).unwrap();
        t.try_add_edge(2, 3).unwrap();
        assert_eq!(t.live_node_count(), 4);
        t.prune(&[0, 1]);
        assert_eq!(t.live_node_count(), 2);
        assert_eq!(t.edge_count(), 1); // only 2 -> 3 survives
        assert!(!t.is_live(0) && !t.is_live(1));
        assert!(t.is_live(2) && t.is_live(3));
        // Node 2 lost its pruned predecessor from the reverse adjacency.
        assert_eq!(t.predecessors(2).count(), 0);
        // Retired ids are recycled before fresh ones are allocated.
        let a = t.add_node();
        let b = t.add_node();
        assert!(a < 2 && b < 2 && a != b);
        assert_eq!(t.node_count(), 4, "no fresh slots while retired ones exist");
        let c = t.add_node();
        assert_eq!(c, 4);
        check_order_invariant(&t);
    }

    #[test]
    #[should_panic(expected = "predecessor-closed")]
    fn prune_rejects_sets_with_live_incoming_edges() {
        let mut t = IncrementalTopo::with_nodes(2);
        t.try_add_edge(0, 1).unwrap();
        t.prune(&[1]); // 0 -> 1 would dangle
    }

    #[test]
    fn remove_edges_into_enables_deliberate_cuts() {
        let mut t = IncrementalTopo::with_nodes(3);
        t.try_add_edge(0, 1).unwrap();
        t.try_add_edge(0, 2).unwrap();
        t.try_add_edge(1, 2).unwrap();
        assert_eq!(t.remove_edges_into(0, &[1]), 1);
        assert_eq!(t.edge_count(), 2);
        // 1 now has no incoming edge, so it is predecessor-closed by itself.
        t.prune(&[1]);
        assert_eq!(t.edge_count(), 1);
        check_order_invariant(&t);
    }

    #[test]
    fn pruned_structure_keeps_rejecting_exactly_like_the_unpruned_one() {
        // Build the same graph twice, prune the settled prefix in one copy,
        // then feed both the same suffix of edges over live nodes: accepts,
        // rejects and certificates must coincide.
        let mut a = IncrementalTopo::with_nodes(6);
        let mut b = IncrementalTopo::with_nodes(6);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (2, 4)] {
            a.try_add_edge(u, v).unwrap();
            b.try_add_edge(u, v).unwrap();
        }
        // {0, 1} is predecessor-closed and nothing will touch it again.
        b.prune(&[0, 1]);
        for (u, v) in [(4, 5), (5, 3), (3, 5), (5, 2), (4, 2)] {
            let ra = a.try_add_edge(u, v);
            let rb = b.try_add_edge(u, v);
            assert_eq!(ra, rb, "divergence on edge {u}->{v}");
        }
        check_order_invariant(&a);
        check_order_invariant(&b);
    }

    #[test]
    fn serde_round_trip_preserves_behaviour() {
        let mut t = IncrementalTopo::with_nodes(5);
        for (u, v) in [(0, 1), (1, 2), (3, 2), (2, 4)] {
            t.try_add_edge(u, v).unwrap();
        }
        t.prune(&[0]);
        let v = serde::Serialize::to_json_value(&t);
        let mut back: IncrementalTopo = serde::Deserialize::from_json_value(&v).unwrap();
        assert_eq!(back.node_count(), t.node_count());
        assert_eq!(back.live_node_count(), t.live_node_count());
        assert_eq!(back.edge_count(), t.edge_count());
        // The deserialized copy must behave identically.
        assert_eq!(t.try_add_edge(4, 1), back.try_add_edge(4, 1));
        assert_eq!(t.try_add_edge(2, 1), back.try_add_edge(2, 1));
        check_order_invariant(&back);
    }

    #[test]
    fn randomized_against_batch_toposort() {
        use crate::graph::DiGraph;
        // Deterministic pseudo-random edge stream (SplitMix64).
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for _round in 0..50 {
            let n = 12usize;
            let mut topo = IncrementalTopo::with_nodes(n);
            let mut batch = DiGraph::new(n);
            for _ in 0..40 {
                let a = (next() % n as u64) as usize;
                let b = (next() % n as u64) as usize;
                let mut probe = batch.clone();
                probe.add_edge(a, b);
                match topo.try_add_edge(a, b) {
                    Ok(()) => {
                        batch.add_edge(a, b);
                        assert!(batch.is_acyclic(), "incremental accepted a cycle {a}->{b}");
                    }
                    Err(cycle) => {
                        assert!(
                            !probe.is_acyclic(),
                            "incremental rejected an acyclic edge {a}->{b}"
                        );
                        // The reported walk must be closed over probe's edges.
                        for i in 0..cycle.len() {
                            let u = cycle[i];
                            let v = cycle[(i + 1) % cycle.len()];
                            assert!(
                                probe.successors(u).contains(&v),
                                "cycle edge {u}->{v} missing"
                            );
                        }
                    }
                }
            }
            check_order_invariant(&topo);
        }
    }
}
