//! Transactions (Definition 1 of the paper).
//!
//! A transaction is a sequence of operations in program order, issued by a
//! session, with a commit status and optional wall-clock begin/finish
//! instants (needed for the real-time order of strict serializability).

use crate::op::{Instant, Op};
use crate::session::SessionId;
use crate::value::{Key, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a transaction within a [`crate::History`].
///
/// Transaction `TxnId(0)` is conventionally the initial transaction `⊥T`
/// when the history contains one (see [`crate::HistoryBuilder`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct TxnId(pub u32);

impl TxnId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Outcome of a transaction as observed by the client.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Debug)]
pub enum TxnStatus {
    /// The database acknowledged the commit.
    Committed,
    /// The database reported an abort (or the client rolled back).
    Aborted,
    /// The commit outcome is unknown (e.g. client timeout). Checkers treat
    /// these conservatively: their writes may or may not be visible.
    Unknown,
}

/// A transaction: a list of operations in program order plus metadata.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    /// Identifier of this transaction within its history.
    pub id: TxnId,
    /// Session (client) that issued the transaction.
    pub session: SessionId,
    /// Operations in program order.
    pub ops: Vec<Op>,
    /// Commit status.
    pub status: TxnStatus,
    /// Wall-clock instant at which the transaction began, if known.
    pub begin: Option<Instant>,
    /// Wall-clock instant at which the transaction finished (commit
    /// acknowledgement), if known.
    pub end: Option<Instant>,
}

impl Transaction {
    /// Creates a committed transaction with no timing information.
    pub fn committed(id: TxnId, session: SessionId, ops: Vec<Op>) -> Self {
        Transaction {
            id,
            session,
            ops,
            status: TxnStatus::Committed,
            begin: None,
            end: None,
        }
    }

    /// Creates an aborted transaction with no timing information.
    pub fn aborted(id: TxnId, session: SessionId, ops: Vec<Op>) -> Self {
        Transaction {
            id,
            session,
            ops,
            status: TxnStatus::Aborted,
            begin: None,
            end: None,
        }
    }

    /// Attaches begin/end instants (builder style).
    pub fn with_times(mut self, begin: Instant, end: Instant) -> Self {
        self.begin = Some(begin);
        self.end = Some(end);
        self
    }

    /// True iff the transaction committed.
    #[inline]
    pub fn is_committed(&self) -> bool {
        self.status == TxnStatus::Committed
    }

    /// Number of operations.
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True iff the transaction has no operations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// `T ⊢ W(x, v)`: the *last* value this transaction writes to `x`,
    /// if it writes to `x` at all.
    pub fn last_write(&self, key: Key) -> Option<Value> {
        self.ops.iter().rev().find_map(|op| match *op {
            Op::Write { key: k, value } if k == key => Some(value),
            _ => None,
        })
    }

    /// `T ⊢ R(x, v)`: the value of the *first read of `x` that precedes any
    /// write of `x`* in this transaction — the transaction's *external* read
    /// of `x`. Reads that follow an own write observe internal state and do
    /// not create inter-transaction dependencies.
    pub fn external_read(&self, key: Key) -> Option<Value> {
        for op in &self.ops {
            match *op {
                Op::Write { key: k, .. } if k == key => return None,
                Op::Read { key: k, value } if k == key => return Some(value),
                _ => {}
            }
        }
        None
    }

    /// True iff this transaction writes to `key`.
    pub fn writes(&self, key: Key) -> bool {
        self.ops.iter().any(|op| op.is_write() && op.key() == key)
    }

    /// True iff this transaction reads `key` before writing it (i.e. has an
    /// external read of `key`).
    pub fn reads_externally(&self, key: Key) -> bool {
        self.external_read(key).is_some()
    }

    /// All keys written by the transaction, in first-write order, without
    /// duplicates.
    pub fn write_set(&self) -> Vec<Key> {
        let mut keys = Vec::new();
        for op in &self.ops {
            if op.is_write() && !keys.contains(&op.key()) {
                keys.push(op.key());
            }
        }
        keys
    }

    /// All keys read externally by the transaction (first-read order, no
    /// duplicates).
    pub fn external_read_set(&self) -> Vec<Key> {
        let mut keys = Vec::new();
        for op in &self.ops {
            if op.is_read() && !keys.contains(&op.key()) && self.external_read(op.key()).is_some() {
                keys.push(op.key());
            }
        }
        keys
    }

    /// All keys touched by the transaction (no duplicates, program order of
    /// first touch).
    pub fn key_set(&self) -> Vec<Key> {
        let mut keys = Vec::new();
        for op in &self.ops {
            if !keys.contains(&op.key()) {
                keys.push(op.key());
            }
        }
        keys
    }

    /// Number of read operations.
    pub fn read_count(&self) -> usize {
        self.ops.iter().filter(|o| o.is_read()).count()
    }

    /// Number of write operations.
    pub fn write_count(&self) -> usize {
        self.ops.iter().filter(|o| o.is_write()).count()
    }

    /// True iff `self` finishes before `other` begins according to the
    /// recorded wall-clock instants. Returns `false` when timing is unknown.
    pub fn precedes_in_real_time(&self, other: &Transaction) -> bool {
        match (self.end, other.begin) {
            (Some(end), Some(begin)) => end < begin,
            _ => false,
        }
    }
}

impl fmt::Debug for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[s{}", self.id, self.session.0)?;
        if self.status != TxnStatus::Committed {
            write!(f, ",{:?}", self.status)?;
        }
        write!(f, "]{{")?;
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{op:?}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(ops: Vec<Op>) -> Transaction {
        Transaction::committed(TxnId(1), SessionId(0), ops)
    }

    #[test]
    fn last_write_picks_the_final_write() {
        let t = txn(vec![
            Op::write(1u64, 10u64),
            Op::write(1u64, 20u64),
            Op::write(2u64, 30u64),
        ]);
        assert_eq!(t.last_write(Key(1)), Some(Value(20)));
        assert_eq!(t.last_write(Key(2)), Some(Value(30)));
        assert_eq!(t.last_write(Key(3)), None);
    }

    #[test]
    fn external_read_stops_at_own_write() {
        // R(x,5) W(x,6) R(x,6): the external read of x is 5.
        let t = txn(vec![
            Op::read(1u64, 5u64),
            Op::write(1u64, 6u64),
            Op::read(1u64, 6u64),
        ]);
        assert_eq!(t.external_read(Key(1)), Some(Value(5)));

        // W(x,6) R(x,6): no external read (the first access is a write).
        let t = txn(vec![Op::write(1u64, 6u64), Op::read(1u64, 6u64)]);
        assert_eq!(t.external_read(Key(1)), None);
    }

    #[test]
    fn read_write_sets() {
        let t = txn(vec![
            Op::read(1u64, 0u64),
            Op::read(2u64, 0u64),
            Op::write(1u64, 7u64),
            Op::write(1u64, 8u64),
        ]);
        assert_eq!(t.write_set(), vec![Key(1)]);
        assert_eq!(t.external_read_set(), vec![Key(1), Key(2)]);
        assert_eq!(t.key_set(), vec![Key(1), Key(2)]);
        assert_eq!(t.read_count(), 2);
        assert_eq!(t.write_count(), 2);
    }

    #[test]
    fn real_time_precedence_requires_timestamps() {
        let a = txn(vec![]).with_times(0, 5);
        let b = txn(vec![]).with_times(6, 9);
        let c = txn(vec![]); // no timing
        assert!(a.precedes_in_real_time(&b));
        assert!(!b.precedes_in_real_time(&a));
        assert!(!a.precedes_in_real_time(&c));
        assert!(!c.precedes_in_real_time(&b));
    }

    #[test]
    fn overlap_is_not_real_time_precedence() {
        let a = txn(vec![]).with_times(0, 5);
        let b = txn(vec![]).with_times(5, 9);
        assert!(!a.precedes_in_real_time(&b));
    }

    #[test]
    fn debug_rendering() {
        let t = txn(vec![Op::read(1u64, 2u64), Op::write(1u64, 3u64)]);
        assert_eq!(format!("{t:?}"), "T1[s0]{R(1,2), W(1,3)}");
    }
}
