//! The online time-chain: an incrementally maintained encoding of the
//! real-time order for streaming strict-serializability checking.
//!
//! The batch `CHECKSSER` sorts every begin/commit instant of the complete
//! history once and threads them into a chain of auxiliary *time nodes*, so
//! a dependency path "travels back in time" exactly when the naive
//! `Θ(n²)`-edge real-time relation has a cycle. A streaming checker cannot
//! sort up front: transactions arrive in commit order, and a commit
//! acknowledged *now* may report a begin instant far in the past (clock
//! skew, long-running transactions). [`TimeChain`] therefore keeps the
//! instants in a balanced order (a `BTreeMap`) and splices each new instant
//! into an [`IncrementalTopo`]-backed chain with `O(log n)` insertion and
//! predecessor/successor queries.
//!
//! Each distinct instant `t` owns **two** chain nodes:
//!
//! * `begin_node(t)` — transactions beginning at `t` hang *off* this node
//!   (`begin_node(t) → txn`);
//! * `end_node(t)` — transactions ending at `t` point *into* this node
//!   (`txn → end_node(t)`).
//!
//! The chain is ordered `… → begin(t) → end(t) → begin(t') → end(t') → …`
//! for `t < t'`, so a path `end(t) ⟶ begin(t')` exists **iff `t < t'`** —
//! the strict inequality of the real-time order (`T1 <rt T2` iff
//! `end(T1) < begin(T2)`; transactions sharing an instant overlap and are
//! *not* real-time ordered). Splitting each instant into a begin/end pair is
//! what makes the equal-instant case come out right without edge deletion:
//! inserting `t` between chain neighbours `p < n` only *adds* edges
//! (`end(p) → begin(t)`, `begin(t) → end(t)`, `end(t) → begin(n)`); the
//! now-redundant direct edge `end(p) → begin(n)` stays behind as a harmless
//! transitive shortcut.
//!
//! Chain edges can never be rejected by the host topology: a fresh pair of
//! nodes has no other incident edges, the direct edge between the current
//! neighbours already orders them, and the host graph is acyclic whenever
//! the checker is still running (violations latch before a cycle is ever
//! committed into the structure).

use crate::incremental::IncrementalTopo;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::ops::Bound;

/// The pair of chain nodes owned by one distinct instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeSlot {
    /// Node transactions beginning at this instant are reached from.
    pub begin_node: usize,
    /// Node transactions ending at this instant point into.
    pub end_node: usize,
}

/// An incrementally maintained chain of begin/end instants, integrated with
/// a growable [`IncrementalTopo`].
///
/// ```
/// use mtc_history::{IncrementalTopo, TimeChain};
///
/// let mut topo = IncrementalTopo::new();
/// let mut chain = TimeChain::new();
/// let t10 = chain.touch(10, &mut topo);
/// let t30 = chain.touch(30, &mut topo);
/// // Inserted out of order, 20 is spliced between 10 and 30.
/// let t20 = chain.touch(20, &mut topo);
/// assert!(topo.precedes(t10.end_node, t20.begin_node));
/// assert!(topo.precedes(t20.end_node, t30.begin_node));
/// assert_eq!(chain.len(), 3);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TimeChain {
    slots: BTreeMap<u64, TimeSlot>,
}

impl TimeChain {
    /// An empty chain.
    pub fn new() -> Self {
        TimeChain::default()
    }

    /// Number of distinct instants in the chain.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True iff no instant has been touched yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The chain nodes of `instant`, if it has been touched.
    pub fn slot(&self, instant: u64) -> Option<TimeSlot> {
        self.slots.get(&instant).copied()
    }

    /// The greatest touched instant strictly below `instant`.
    pub fn pred(&self, instant: u64) -> Option<(u64, TimeSlot)> {
        self.slots
            .range((Bound::Unbounded, Bound::Excluded(instant)))
            .next_back()
            .map(|(&t, &s)| (t, s))
    }

    /// The smallest touched instant strictly above `instant`.
    pub fn succ(&self, instant: u64) -> Option<(u64, TimeSlot)> {
        self.slots
            .range((Bound::Excluded(instant), Bound::Unbounded))
            .next()
            .map(|(&t, &s)| (t, s))
    }

    /// Returns the chain nodes of `instant`, creating and splicing them into
    /// `topo` on first touch. `O(log n)` plus the (amortized `O(1)`) cost of
    /// the chain-edge insertions.
    pub fn touch(&mut self, instant: u64, topo: &mut IncrementalTopo) -> TimeSlot {
        if let Some(slot) = self.slots.get(&instant) {
            return *slot;
        }
        let begin_node = topo.add_node();
        let end_node = topo.add_node();
        topo.try_add_edge(begin_node, end_node)
            .expect("fresh begin/end pair cannot close a cycle");
        if let Some((_, prev)) = self.pred(instant) {
            topo.try_add_edge(prev.end_node, begin_node)
                .expect("chain edge from the predecessor cannot close a cycle");
        }
        if let Some((_, next)) = self.succ(instant) {
            topo.try_add_edge(end_node, next.begin_node)
                .expect("chain edge to the successor cannot close a cycle");
        }
        let slot = TimeSlot {
            begin_node,
            end_node,
        };
        self.slots.insert(instant, slot);
        slot
    }

    /// The touched instants in ascending order (for inspection and tests).
    pub fn instants(&self) -> impl Iterator<Item = u64> + '_ {
        self.slots.keys().copied()
    }

    /// The slots with instants in `low..cut`, in ascending order, without
    /// removing them — the candidate prefix for settled-chain pruning.
    pub fn slots_in(&self, low: u64, cut: u64) -> Vec<(u64, TimeSlot)> {
        self.slots.range(low..cut).map(|(&t, &s)| (t, s)).collect()
    }

    /// Removes the slots with instants in `low..cut` from the chain,
    /// returning them in ascending order. The caller is responsible for
    /// retiring the slots' chain nodes from the host topology (see
    /// [`IncrementalTopo::prune`]) and for re-establishing the chain-order
    /// shortcut from the last retained slot below `low` (if any) to the
    /// first retained slot at or above `cut` — the splice logic of the
    /// streaming SSER checker does exactly that.
    pub fn remove_range(&mut self, low: u64, cut: u64) -> Vec<(u64, TimeSlot)> {
        let doomed: Vec<u64> = self.slots.range(low..cut).map(|(&t, _)| t).collect();
        doomed
            .into_iter()
            .map(|t| (t, self.slots.remove(&t).expect("slot listed above")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every pair of distinct instants must be chain-connected in order, and
    /// within an instant `begin` precedes `end` with no path back.
    fn assert_chain_invariant(chain: &TimeChain, topo: &IncrementalTopo) {
        let slots: Vec<(u64, TimeSlot)> = chain.slots.iter().map(|(&t, &s)| (t, s)).collect();
        for w in slots.windows(2) {
            let (ta, a) = w[0];
            let (tb, b) = w[1];
            assert!(ta < tb);
            assert!(
                topo.precedes(a.end_node, b.begin_node),
                "end({ta}) must precede begin({tb})"
            );
        }
        for &(t, s) in &slots {
            assert!(
                topo.precedes(s.begin_node, s.end_node),
                "begin({t}) must precede end({t})"
            );
        }
    }

    #[test]
    fn out_of_order_insertion_links_the_chain() {
        let mut topo = IncrementalTopo::new();
        let mut chain = TimeChain::new();
        for t in [50u64, 10, 30, 20, 40, 60, 5] {
            chain.touch(t, &mut topo);
        }
        assert_eq!(chain.len(), 7);
        assert_eq!(
            chain.instants().collect::<Vec<_>>(),
            vec![5, 10, 20, 30, 40, 50, 60]
        );
        assert_chain_invariant(&chain, &topo);
    }

    #[test]
    fn touch_is_idempotent() {
        let mut topo = IncrementalTopo::new();
        let mut chain = TimeChain::new();
        let first = chain.touch(7, &mut topo);
        let again = chain.touch(7, &mut topo);
        assert_eq!(first, again);
        assert_eq!(chain.len(), 1);
        assert_eq!(topo.node_count(), 2);
    }

    #[test]
    fn pred_and_succ_are_strict() {
        let mut topo = IncrementalTopo::new();
        let mut chain = TimeChain::new();
        chain.touch(10, &mut topo);
        chain.touch(20, &mut topo);
        assert_eq!(chain.pred(10), None);
        assert_eq!(chain.pred(20).map(|(t, _)| t), Some(10));
        assert_eq!(chain.pred(15).map(|(t, _)| t), Some(10));
        assert_eq!(chain.succ(10).map(|(t, _)| t), Some(20));
        assert_eq!(chain.succ(20), None);
        assert_eq!(chain.succ(15).map(|(t, _)| t), Some(20));
    }

    #[test]
    fn equal_instants_do_not_create_a_real_time_edge() {
        // T1 ends at t = 42 and T2 begins at t = 42: they overlap, so the
        // real-time order must not relate them. A dependency edge in either
        // direction must therefore be accepted.
        let mut topo = IncrementalTopo::new();
        let mut chain = TimeChain::new();
        let t1 = topo.add_node();
        let t2 = topo.add_node();
        let slot = chain.touch(42, &mut topo);
        topo.try_add_edge(t1, slot.end_node).unwrap();
        topo.try_add_edge(slot.begin_node, t2).unwrap();
        // T2 → T1 would be rejected if end(42) ⟶ begin(42) existed; it must
        // not, because `end(T1) < begin(T2)` is strict.
        assert!(topo.try_add_edge(t2, t1).is_ok());
    }

    #[test]
    fn remove_range_prunes_a_prefix_and_the_chain_keeps_working() {
        let mut topo = IncrementalTopo::new();
        let mut chain = TimeChain::new();
        for t in [0u64, 10, 20, 30, 40] {
            chain.touch(t, &mut topo);
        }
        let removed = chain.remove_range(1, 25);
        assert_eq!(
            removed.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
            [10, 20]
        );
        assert_eq!(chain.instants().collect::<Vec<_>>(), vec![0, 30, 40]);
        // Prune the removed slots' nodes: first cut the deliberate edge from
        // the retained prefix into the doomed region, then close the set.
        let doomed: Vec<usize> = removed
            .iter()
            .flat_map(|&(_, s)| [s.begin_node, s.end_node])
            .collect();
        let keep0 = chain.slot(0).unwrap();
        topo.remove_edges_into(keep0.end_node, &doomed);
        topo.prune(&doomed);
        // Shortcut re-establishes the retained order across the gap.
        let s30 = chain.slot(30).unwrap();
        topo.try_add_edge(keep0.end_node, s30.begin_node).unwrap();
        // Late out-of-order instants still splice between retained slots.
        let s25 = chain.touch(25, &mut topo);
        assert!(topo.precedes(keep0.end_node, s25.begin_node));
        assert!(topo.precedes(s25.end_node, s30.begin_node));
        assert_chain_invariant(&chain, &topo);
    }

    #[test]
    fn serde_round_trip() {
        let mut topo = IncrementalTopo::new();
        let mut chain = TimeChain::new();
        for t in [7u64, 3, 11] {
            chain.touch(t, &mut topo);
        }
        let v = serde::Serialize::to_json_value(&chain);
        let back: TimeChain = serde::Deserialize::from_json_value(&v).unwrap();
        assert_eq!(back.instants().collect::<Vec<_>>(), vec![3, 7, 11]);
        assert_eq!(back.slot(7), chain.slot(7));
    }

    #[test]
    fn transactions_hang_off_the_chain_in_real_time_order() {
        // T1 = [1, 5], T2 = [9, 12]: T1 <rt T2, so end(5) ⟶ begin(9) and
        // hooking T1 → end(5), begin(9) → T2 yields a path T1 ⟶ T2 while the
        // reverse edge T2 → T1's chain hook closes a cycle.
        let mut topo = IncrementalTopo::new();
        let mut chain = TimeChain::new();
        let t1 = topo.add_node();
        let t2 = topo.add_node();
        let s1b = chain.touch(1, &mut topo);
        let s1e = chain.touch(5, &mut topo);
        let s2b = chain.touch(9, &mut topo);
        let s2e = chain.touch(12, &mut topo);
        topo.try_add_edge(s1b.begin_node, t1).unwrap();
        topo.try_add_edge(t1, s1e.end_node).unwrap();
        topo.try_add_edge(s2b.begin_node, t2).unwrap();
        topo.try_add_edge(t2, s2e.end_node).unwrap();
        assert!(topo.precedes(t1, t2));
        // A dependency edge T2 → T1 contradicts real time: rejected.
        assert!(topo.try_add_edge(t2, t1).is_err());
        // The other direction agrees with real time: accepted.
        assert!(topo.try_add_edge(t1, t2).is_ok());
    }
}
