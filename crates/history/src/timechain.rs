//! The online time-chain: an incrementally maintained encoding of the
//! real-time order for streaming strict-serializability checking.
//!
//! The batch `CHECKSSER` sorts every begin/commit instant of the complete
//! history once and threads them into a chain of auxiliary *time nodes*, so
//! a dependency path "travels back in time" exactly when the naive
//! `Θ(n²)`-edge real-time relation has a cycle. A streaming checker cannot
//! sort up front: transactions arrive in commit order, and a commit
//! acknowledged *now* may report a begin instant far in the past (clock
//! skew, long-running transactions). [`TimeChain`] therefore keeps the
//! instants in a sorted dense array and splices each new instant into an
//! [`IncrementalTopo`]-backed chain: `O(1)` for the dominant append case,
//! `O(log n)` predecessor/successor queries, and an `O(n)` memmove only for
//! the rare out-of-order splice (bounded in practice by clock skew, and the
//! garbage collector keeps `n` at the live window size).
//!
//! ## Roles and lazy splitting
//!
//! Conceptually each distinct instant `t` owns two chain anchors:
//!
//! * the **begin anchor** — transactions beginning at `t` hang *off* it
//!   (`begin(t) → txn`);
//! * the **end anchor** — transactions ending at `t` point *into* it
//!   (`txn → end(t)`).
//!
//! The chain is ordered `… → begin(t) → end(t) → begin(t') → end(t') → …`
//! for `t < t'`, so a path `end(t) ⟶ begin(t')` exists **iff `t < t'`** —
//! the strict inequality of the real-time order (`T1 <rt T2` iff
//! `end(T1) < begin(T2)`; transactions sharing an instant overlap and are
//! *not* real-time ordered).
//!
//! Materializing two topo nodes per instant doubles the chain's node and
//! edge volume, yet in real histories almost every instant is touched in a
//! **single role**: a commit instant collects end hooks, a begin instant
//! collects begin hooks, and the two rarely coincide. A slot therefore
//! starts as **one** node serving whichever role touched it first, and is
//! split lazily the moment the opposite role shows up:
//!
//! * a begin-only node `n` gaining an end role allocates a fresh end node
//!   `e` with `n → e` and `e → begin(succ)`;
//! * an end-only node `n` gaining a begin role allocates a fresh begin node
//!   `b` with `b → n` and `end(pred) → b`.
//!
//! Either way the pre-existing chain edges through `n` remain behind as
//! harmless transitive shortcuts — splitting only *adds* edges, mirroring
//! the insertion-only discipline of the equal-instant case: splicing `t`
//! between chain neighbours `p < s` only adds edges, and the now-redundant
//! direct edge `end(p) → begin(s)` stays as a transitive shortcut.
//!
//! A collapsed single-role node is sound because its chain edges connect it
//! to the *anchors* of the neighbouring slots, never to their hooked
//! transactions: a transaction beginning at `t` hangs off `begin(t)` and
//! gains no path to `begin(t')` for `t' > t` (it may still be running), and
//! a transaction ending at `t` reaches exactly the begin anchors of later
//! instants.
//!
//! ## Edge emission
//!
//! Anchor calls do **not** insert chain edges into the topology themselves;
//! they push the required `(from, to)` pairs into a caller-supplied buffer.
//! The sequential SSER path submits a transaction's chain edges and hook
//! edges as a single [`IncrementalTopo::try_add_edges`] batch; the sharded
//! merge path routes both through its deferred-insert queue. Chain edges can
//! never be rejected by the host topology: a fresh node has no other
//! incident edges, the direct edge between the current neighbours already
//! orders them, and the host graph is acyclic whenever the checker is still
//! running (violations latch before a cycle is ever committed into the
//! structure). Deferring them is therefore safe — they cannot be the first
//! offender of a batch.
//!
//! ## Append fast path
//!
//! Timestamps overwhelmingly arrive in increasing order. When the touched
//! instant is strictly above the current maximum, the splice needs no
//! predecessor/successor range scans at all: the predecessor is the current
//! maximum slot (one `last_key_value` lookup) and there is no successor.

use crate::incremental::IncrementalTopo;
use serde::{Deserialize, Serialize};

/// The chain anchors owned by one distinct instant, as a borrowed view.
///
/// For a slot still collapsed to a single node, `begin_node == end_node`;
/// after a role split the two differ. `begin_node` is always the chain-entry
/// anchor (edges from earlier instants point into it) and `end_node` the
/// chain-exit anchor (edges to later instants leave from it).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeSlot {
    /// Anchor transactions beginning at this instant are reached from.
    pub begin_node: usize,
    /// Anchor transactions ending at this instant point into.
    pub end_node: usize,
}

impl TimeSlot {
    /// The slot's distinct topo nodes (one while collapsed, two once split).
    pub fn nodes(&self) -> impl Iterator<Item = usize> {
        let extra = (self.end_node != self.begin_node).then_some(self.end_node);
        std::iter::once(self.begin_node).chain(extra)
    }
}

/// Which anchor of an instant a transaction hooks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// The transaction begins at the instant (`begin(t) → txn`).
    Begin,
    /// The transaction ends at the instant (`txn → end(t)`).
    End,
}

impl Role {
    /// The collapsed single-node representation of a first touch.
    #[inline]
    fn fresh(self, n: usize) -> SlotRepr {
        match self {
            Role::Begin => SlotRepr::Begin(n),
            Role::End => SlotRepr::End(n),
        }
    }
}

/// Stored slot state: which roles have materialized.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
enum SlotRepr {
    /// Single node serving begin hooks only.
    Begin(usize),
    /// Single node serving end hooks only.
    End(usize),
    /// Both roles materialized: `begin → end` internally.
    Split(usize, usize),
}

impl SlotRepr {
    /// The anchor edges from earlier instants point into.
    #[inline]
    fn chain_in(self) -> usize {
        match self {
            SlotRepr::Begin(n) | SlotRepr::End(n) => n,
            SlotRepr::Split(b, _) => b,
        }
    }

    /// The anchor edges to later instants leave from.
    #[inline]
    fn chain_out(self) -> usize {
        match self {
            SlotRepr::Begin(n) | SlotRepr::End(n) => n,
            SlotRepr::Split(_, e) => e,
        }
    }

    #[inline]
    fn view(self) -> TimeSlot {
        TimeSlot {
            begin_node: self.chain_in(),
            end_node: self.chain_out(),
        }
    }
}

/// An incrementally maintained chain of begin/end instants, integrated with
/// a growable [`IncrementalTopo`].
///
/// ```
/// use mtc_history::{IncrementalTopo, Role, TimeChain};
///
/// let mut topo = IncrementalTopo::new();
/// let mut chain = TimeChain::new();
/// let mut edges = Vec::new();
/// let e10 = chain.anchor(10, Role::End, &mut topo, &mut edges);
/// let b30 = chain.anchor(30, Role::Begin, &mut topo, &mut edges);
/// // Inserted out of order, 20 is spliced between 10 and 30.
/// let b20 = chain.anchor(20, Role::Begin, &mut topo, &mut edges);
/// topo.try_add_edges(&edges).unwrap();
/// assert!(topo.precedes(e10, b20));
/// assert!(topo.precedes(e10, b30));
/// assert_eq!(chain.len(), 3);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TimeChain {
    /// Slots sorted by instant. Dense storage: the dominant in-order commit
    /// stream appends at the back in `O(1)`, lookups binary-search, and the
    /// collector drains settled prefixes.
    slots: Vec<(u64, SlotRepr)>,
}

impl TimeChain {
    /// An empty chain.
    pub fn new() -> Self {
        TimeChain::default()
    }

    /// Number of distinct instants in the chain.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True iff no instant has been touched yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The index of `instant`, or the insertion point keeping `slots` sorted.
    #[inline]
    fn index_of(&self, instant: u64) -> Result<usize, usize> {
        self.slots.binary_search_by(|&(t, _)| t.cmp(&instant))
    }

    /// The chain anchors of `instant`, if it has been touched.
    pub fn slot(&self, instant: u64) -> Option<TimeSlot> {
        self.index_of(instant).ok().map(|i| self.slots[i].1.view())
    }

    /// The greatest touched instant strictly below `instant`.
    pub fn pred(&self, instant: u64) -> Option<(u64, TimeSlot)> {
        let i = self.slots.partition_point(|&(t, _)| t < instant);
        (i > 0).then(|| {
            let (t, s) = self.slots[i - 1];
            (t, s.view())
        })
    }

    /// The smallest touched instant strictly above `instant`.
    pub fn succ(&self, instant: u64) -> Option<(u64, TimeSlot)> {
        let i = self.slots.partition_point(|&(t, _)| t <= instant);
        self.slots.get(i).map(|&(t, s)| (t, s.view()))
    }

    /// Returns the anchor node serving `role` at `instant`, materializing it
    /// on first touch. Required chain edges are pushed onto `edges` instead
    /// of being inserted — submit them to the host topology (they can never
    /// be rejected; see the module docs) before querying reachability.
    ///
    /// At most one topo node is allocated per call, and when one is, it is
    /// the returned anchor — callers tracking node ownership can tag the
    /// return value unconditionally.
    pub fn anchor(
        &mut self,
        instant: u64,
        role: Role,
        topo: &mut IncrementalTopo,
        edges: &mut Vec<(usize, usize)>,
    ) -> usize {
        // Append fast path: strictly above the current maximum — no lookup
        // beyond the last element, the predecessor is the maximum slot and
        // there is no successor.
        match self.slots.last() {
            Some(&(max, s)) if instant > max => {
                let n = topo.add_node();
                edges.push((s.chain_out(), n));
                self.slots.push((instant, role.fresh(n)));
                return n;
            }
            None => {
                let n = topo.add_node();
                self.slots.push((instant, role.fresh(n)));
                return n;
            }
            _ => {}
        }
        match self.index_of(instant) {
            Ok(i) => {
                let repr = self.slots[i].1;
                match (repr, role) {
                    (SlotRepr::Begin(n), Role::Begin) | (SlotRepr::End(n), Role::End) => n,
                    (SlotRepr::Split(b, _), Role::Begin) => b,
                    (SlotRepr::Split(_, e), Role::End) => e,
                    (SlotRepr::Begin(b), Role::End) => {
                        // Split: the existing node keeps the begin hooks, a
                        // fresh end node takes over the chain exit. The stale
                        // direct edge `b → succ.chain_in` (if any) stays
                        // behind as a transitive shortcut.
                        let e = topo.add_node();
                        self.slots[i].1 = SlotRepr::Split(b, e);
                        edges.push((b, e));
                        if let Some(&(_, s)) = self.slots.get(i + 1) {
                            edges.push((e, s.chain_in()));
                        }
                        e
                    }
                    (SlotRepr::End(e), Role::Begin) => {
                        // Split the other way: a fresh begin node takes over
                        // the chain entry; `pred.chain_out → e` stays as a
                        // shortcut.
                        let b = topo.add_node();
                        self.slots[i].1 = SlotRepr::Split(b, e);
                        edges.push((b, e));
                        if i > 0 {
                            edges.push((self.slots[i - 1].1.chain_out(), b));
                        }
                        b
                    }
                }
            }
            Err(i) => {
                // Out-of-order splice between neighbours (the slot at `i`,
                // if any, is the successor; `i - 1` the predecessor).
                let n = topo.add_node();
                if i > 0 {
                    edges.push((self.slots[i - 1].1.chain_out(), n));
                }
                if let Some(&(_, s)) = self.slots.get(i) {
                    edges.push((n, s.chain_in()));
                }
                self.slots.insert(i, (instant, role.fresh(n)));
                n
            }
        }
    }

    /// [`TimeChain::anchor`] with the emitted chain edges applied to `topo`
    /// immediately — convenience for callers outside the batched hot path.
    pub fn anchor_now(&mut self, instant: u64, role: Role, topo: &mut IncrementalTopo) -> usize {
        let mut edges = Vec::new();
        let n = self.anchor(instant, role, topo, &mut edges);
        for (from, to) in edges {
            topo.try_add_edge(from, to)
                .expect("chain edges cannot close a cycle");
        }
        n
    }

    /// The touched instants in ascending order (for inspection and tests).
    pub fn instants(&self) -> impl Iterator<Item = u64> + '_ {
        self.slots.iter().map(|&(t, _)| t)
    }

    /// The index range holding instants in `low..cut`.
    #[inline]
    fn range_of(&self, low: u64, cut: u64) -> std::ops::Range<usize> {
        let a = self.slots.partition_point(|&(t, _)| t < low);
        let b = self.slots.partition_point(|&(t, _)| t < cut);
        a..b
    }

    /// The slots with instants in `low..cut`, in ascending order, without
    /// removing them — the candidate range for settled-chain pruning.
    pub fn slots_in(&self, low: u64, cut: u64) -> Vec<(u64, TimeSlot)> {
        self.slots[self.range_of(low, cut)]
            .iter()
            .map(|&(t, s)| (t, s.view()))
            .collect()
    }

    /// Removes the slots with instants in `low..cut` from the chain,
    /// returning them in ascending order. The caller is responsible for
    /// retiring the slots' chain nodes from the host topology (see
    /// [`IncrementalTopo::prune`]) and for re-establishing the chain-order
    /// shortcut from the last retained slot below `low` (if any) to the
    /// first retained slot at or above `cut` — the compaction logic of the
    /// streaming SSER checker does exactly that.
    pub fn remove_range(&mut self, low: u64, cut: u64) -> Vec<(u64, TimeSlot)> {
        let range = self.range_of(low, cut);
        self.slots
            .drain(range)
            .map(|(t, s)| (t, s.view()))
            .collect()
    }

    /// Removes the slot at exactly `instant`, if present, returning its
    /// anchors. Companion to [`TimeChain::remove_range`] for the mid-chain
    /// compaction runs of the SSER garbage collector.
    pub fn remove(&mut self, instant: u64) -> Option<TimeSlot> {
        self.index_of(instant)
            .ok()
            .map(|i| self.slots.remove(i).1.view())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn end_anchor(chain: &mut TimeChain, t: u64, topo: &mut IncrementalTopo) -> usize {
        chain.anchor_now(t, Role::End, topo)
    }

    fn begin_anchor(chain: &mut TimeChain, t: u64, topo: &mut IncrementalTopo) -> usize {
        chain.anchor_now(t, Role::Begin, topo)
    }

    /// Every pair of distinct instants must be chain-connected in order, and
    /// within an instant the entry anchor reaches the exit anchor.
    fn assert_chain_invariant(chain: &TimeChain, topo: &IncrementalTopo) {
        let slots: Vec<(u64, TimeSlot)> = chain.slots.iter().map(|&(t, s)| (t, s.view())).collect();
        for w in slots.windows(2) {
            let (ta, a) = w[0];
            let (tb, b) = w[1];
            assert!(ta < tb);
            assert!(
                topo.precedes(a.end_node, b.begin_node),
                "out({ta}) must precede in({tb})"
            );
        }
        for &(t, s) in &slots {
            if s.begin_node != s.end_node {
                assert!(
                    topo.precedes(s.begin_node, s.end_node),
                    "begin({t}) must precede end({t})"
                );
            }
        }
    }

    #[test]
    fn out_of_order_insertion_links_the_chain() {
        let mut topo = IncrementalTopo::new();
        let mut chain = TimeChain::new();
        for t in [50u64, 10, 30, 20, 40, 60, 5] {
            begin_anchor(&mut chain, t, &mut topo);
        }
        assert_eq!(chain.len(), 7);
        assert_eq!(
            chain.instants().collect::<Vec<_>>(),
            vec![5, 10, 20, 30, 40, 50, 60]
        );
        assert_chain_invariant(&chain, &topo);
    }

    #[test]
    fn single_role_instants_stay_collapsed() {
        let mut topo = IncrementalTopo::new();
        let mut chain = TimeChain::new();
        let b = begin_anchor(&mut chain, 7, &mut topo);
        let again = begin_anchor(&mut chain, 7, &mut topo);
        assert_eq!(b, again, "repeat touches reuse the anchor");
        assert_eq!(chain.len(), 1);
        assert_eq!(topo.node_count(), 1, "one role, one node");
        let s = chain.slot(7).unwrap();
        assert_eq!(s.begin_node, s.end_node);
        assert_eq!(s.nodes().count(), 1);
    }

    #[test]
    fn role_conflict_splits_lazily_and_keeps_the_chain_order() {
        let mut topo = IncrementalTopo::new();
        let mut chain = TimeChain::new();
        let e10 = end_anchor(&mut chain, 10, &mut topo);
        let b20 = begin_anchor(&mut chain, 20, &mut topo);
        let e30 = end_anchor(&mut chain, 30, &mut topo);
        // 20 gains an end role: fresh node, chain exit moves to it.
        let e20 = end_anchor(&mut chain, 20, &mut topo);
        assert_ne!(e20, b20);
        let s20 = chain.slot(20).unwrap();
        assert_eq!((s20.begin_node, s20.end_node), (b20, e20));
        assert_eq!(s20.nodes().count(), 2);
        // 30 gains a begin role the other way around.
        let b30 = begin_anchor(&mut chain, 30, &mut topo);
        assert_ne!(b30, e30);
        assert!(topo.precedes(e10, b20));
        assert!(topo.precedes(b20, e20));
        assert!(topo.precedes(e20, b30));
        assert!(topo.precedes(b30, e30));
        assert_chain_invariant(&chain, &topo);
        // Splitting never relates the two roles backwards: end(20) must not
        // reach begin(20).
        assert!(!topo.precedes(e20, b20));
    }

    #[test]
    fn pred_and_succ_are_strict() {
        let mut topo = IncrementalTopo::new();
        let mut chain = TimeChain::new();
        begin_anchor(&mut chain, 10, &mut topo);
        begin_anchor(&mut chain, 20, &mut topo);
        assert_eq!(chain.pred(10), None);
        assert_eq!(chain.pred(20).map(|(t, _)| t), Some(10));
        assert_eq!(chain.pred(15).map(|(t, _)| t), Some(10));
        assert_eq!(chain.succ(10).map(|(t, _)| t), Some(20));
        assert_eq!(chain.succ(20), None);
        assert_eq!(chain.succ(15).map(|(t, _)| t), Some(20));
    }

    #[test]
    fn equal_instants_do_not_create_a_real_time_edge() {
        // T1 ends at t = 42 and T2 begins at t = 42: they overlap, so the
        // real-time order must not relate them. A dependency edge in either
        // direction must therefore be accepted.
        let mut topo = IncrementalTopo::new();
        let mut chain = TimeChain::new();
        let t1 = topo.add_node();
        let t2 = topo.add_node();
        let e42 = end_anchor(&mut chain, 42, &mut topo);
        let b42 = begin_anchor(&mut chain, 42, &mut topo);
        topo.try_add_edge(t1, e42).unwrap();
        topo.try_add_edge(b42, t2).unwrap();
        // T2 → T1 would be rejected if end(42) ⟶ begin(42) existed; it must
        // not, because `end(T1) < begin(T2)` is strict.
        assert!(topo.try_add_edge(t2, t1).is_ok());
    }

    #[test]
    fn equal_instant_bursts_share_one_anchor_per_role() {
        // Many transactions beginning and ending at the same instant: the
        // slot materializes at most two nodes no matter the burst size, and
        // none of the sharers become real-time ordered.
        let mut topo = IncrementalTopo::new();
        let mut chain = TimeChain::new();
        let txns: Vec<usize> = (0..8).map(|_| topo.add_node()).collect();
        for (i, &t) in txns.iter().enumerate() {
            let b = begin_anchor(&mut chain, 99, &mut topo);
            topo.try_add_edge(b, t).unwrap();
            if i % 2 == 0 {
                let e = end_anchor(&mut chain, 99, &mut topo);
                topo.try_add_edge(t, e).unwrap();
            }
        }
        assert_eq!(chain.len(), 1);
        assert_eq!(chain.slot(99).unwrap().nodes().count(), 2);
        // Equal-instant transactions overlap: none is real-time ordered
        // before another, so a dependency edge in either direction must be
        // accepted (probe on a clone to keep the pairs independent).
        for &a in &txns {
            for &b in &txns {
                if a != b {
                    assert!(
                        topo.clone().try_add_edge(a, b).is_ok(),
                        "equal-instant txns overlap"
                    );
                }
            }
        }
    }

    #[test]
    fn strictly_decreasing_instants_splice_at_the_front() {
        // Worst case for the append fast path: every insert misses it and
        // takes the general splice, always in front of the whole chain.
        let mut topo = IncrementalTopo::new();
        let mut chain = TimeChain::new();
        for t in (0..32u64).rev() {
            begin_anchor(&mut chain, t * 10, &mut topo);
        }
        assert_eq!(chain.len(), 32);
        assert_chain_invariant(&chain, &topo);
        let first = chain.slot(0).unwrap();
        let last = chain.slot(310).unwrap();
        assert!(topo.precedes(first.end_node, last.begin_node));
    }

    #[test]
    fn remove_range_prunes_a_prefix_and_the_chain_keeps_working() {
        let mut topo = IncrementalTopo::new();
        let mut chain = TimeChain::new();
        for t in [0u64, 10, 20, 30, 40] {
            begin_anchor(&mut chain, t, &mut topo);
            end_anchor(&mut chain, t, &mut topo);
        }
        let removed = chain.remove_range(1, 25);
        assert_eq!(
            removed.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
            [10, 20]
        );
        assert_eq!(chain.instants().collect::<Vec<_>>(), vec![0, 30, 40]);
        // Prune the removed slots' nodes: first cut the deliberate edge from
        // the retained prefix into the doomed region, then close the set.
        let doomed: Vec<usize> = removed.iter().flat_map(|&(_, s)| s.nodes()).collect();
        let keep0 = chain.slot(0).unwrap();
        topo.remove_edges_into(keep0.end_node, &doomed);
        topo.prune(&doomed);
        // Shortcut re-establishes the retained order across the gap.
        let s30 = chain.slot(30).unwrap();
        topo.try_add_edge(keep0.end_node, s30.begin_node).unwrap();
        // Late out-of-order instants still splice between retained slots.
        let b25 = begin_anchor(&mut chain, 25, &mut topo);
        let e25 = end_anchor(&mut chain, 25, &mut topo);
        assert!(topo.precedes(keep0.end_node, b25));
        assert!(topo.precedes(e25, s30.begin_node));
        assert_chain_invariant(&chain, &topo);
    }

    #[test]
    fn splice_after_mid_chain_removal() {
        // Remove an interior slot (compaction run of one), shortcut across
        // it, then splice a new instant into the vacated gap.
        let mut topo = IncrementalTopo::new();
        let mut chain = TimeChain::new();
        for t in [10u64, 20, 30] {
            end_anchor(&mut chain, t, &mut topo);
            begin_anchor(&mut chain, t, &mut topo);
        }
        let s10 = chain.slot(10).unwrap();
        let s30 = chain.slot(30).unwrap();
        let doomed: Vec<usize> = chain.remove(20).unwrap().nodes().collect();
        topo.remove_edges_into(s10.end_node, &doomed);
        topo.prune(&doomed);
        topo.try_add_edge(s10.end_node, s30.begin_node).unwrap();
        let b25 = begin_anchor(&mut chain, 25, &mut topo);
        let e25 = end_anchor(&mut chain, 25, &mut topo);
        assert!(topo.precedes(s10.end_node, b25));
        assert!(topo.precedes(e25, s30.begin_node));
        assert_chain_invariant(&chain, &topo);
    }

    #[test]
    fn serde_round_trip() {
        let mut topo = IncrementalTopo::new();
        let mut chain = TimeChain::new();
        for t in [7u64, 3, 11] {
            begin_anchor(&mut chain, t, &mut topo);
        }
        end_anchor(&mut chain, 7, &mut topo);
        let v = serde::Serialize::to_json_value(&chain);
        let back: TimeChain = serde::Deserialize::from_json_value(&v).unwrap();
        assert_eq!(back.instants().collect::<Vec<_>>(), vec![3, 7, 11]);
        assert_eq!(back.slot(7), chain.slot(7));
        assert_eq!(back.slot(3), chain.slot(3));
    }

    #[test]
    fn transactions_hang_off_the_chain_in_real_time_order() {
        // T1 = [1, 5], T2 = [9, 12]: T1 <rt T2, so end(5) ⟶ begin(9) and
        // hooking T1 → end(5), begin(9) → T2 yields a path T1 ⟶ T2 while the
        // reverse edge T2 → T1's chain hook closes a cycle.
        let mut topo = IncrementalTopo::new();
        let mut chain = TimeChain::new();
        let t1 = topo.add_node();
        let t2 = topo.add_node();
        let b1 = begin_anchor(&mut chain, 1, &mut topo);
        let e1 = end_anchor(&mut chain, 5, &mut topo);
        let b2 = begin_anchor(&mut chain, 9, &mut topo);
        let e2 = end_anchor(&mut chain, 12, &mut topo);
        topo.try_add_edge(b1, t1).unwrap();
        topo.try_add_edge(t1, e1).unwrap();
        topo.try_add_edge(b2, t2).unwrap();
        topo.try_add_edge(t2, e2).unwrap();
        assert!(topo.precedes(t1, t2));
        // A dependency edge T2 → T1 contradicts real time: rejected.
        assert!(topo.try_add_edge(t2, t1).is_err());
        // The other direction agrees with real time: accepted.
        assert!(topo.try_add_edge(t1, t2).is_ok());
    }
}
