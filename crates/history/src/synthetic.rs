//! Synthetic serial mini-transaction histories.
//!
//! One canonical definition of the serial read-modify-write workloads used
//! by the Criterion benches, the CI perf-regression gate and the shard
//! autotuner's calibration burst — so all three always measure the same
//! history shape and cannot drift apart.

use crate::history::{History, HistoryBuilder};
use crate::op::Op;

/// A valid (serializable and strictly serializable) history of `n`
/// transactions over `keys` objects issued round-robin by `sessions`
/// sessions: each transaction reads the current value of one key and
/// installs the next value. With `timed`, transactions carry strictly
/// increasing begin/commit instants (for SSER benchmarking); without, they
/// carry none (cheapest shape for calibration).
#[allow(clippy::explicit_counter_loop)] // `value` is state, not a counter
pub fn serial_rmw_history(n: u64, keys: u64, sessions: u32, timed: bool) -> History {
    let keys = keys.max(1);
    let sessions = sessions.max(1);
    let mut builder = HistoryBuilder::new().with_init(keys);
    let mut last = vec![0u64; keys as usize];
    let mut value = 1u64;
    for i in 0..n {
        let key = i % keys;
        let session = (i % sessions as u64) as u32;
        let ops = vec![Op::read(key, last[key as usize]), Op::write(key, value)];
        if timed {
            builder.committed_timed(session, ops, 10 * i + 1, 10 * i + 5);
        } else {
            builder.committed(session, ops);
        }
        last[key as usize] = value;
        value += 1;
    }
    builder.build()
}

/// Like [`serial_rmw_history`] (timed), but every transaction touches two
/// keys — the write-skew-shaped MT flavour — while staying serial.
#[allow(clippy::explicit_counter_loop)] // `value` is state, not a counter
pub fn two_key_rmw_history(n: u64, keys: u64, sessions: u32) -> History {
    let keys = keys.max(2);
    let sessions = sessions.max(1);
    let mut builder = HistoryBuilder::new().with_init(keys);
    let mut last = vec![0u64; keys as usize];
    let mut value = 1u64;
    for i in 0..n {
        let a = i % keys;
        let b = (i + 1) % keys;
        let session = (i % sessions as u64) as u32;
        let ops = vec![
            Op::read(a, last[a as usize]),
            Op::read(b, last[b as usize]),
            Op::write(a, value),
            Op::write(b, value + 1),
        ];
        builder.committed_timed(session, ops, 10 * i + 1, 10 * i + 5);
        last[a as usize] = value;
        last[b as usize] = value + 1;
        value += 2;
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_histories_are_well_formed() {
        let timed = serial_rmw_history(50, 4, 3, true);
        assert_eq!(timed.len(), 51); // + ⊥T
        assert!(timed
            .txns()
            .iter()
            .filter(|t| Some(t.id) != timed.init_txn())
            .all(|t| t.begin.is_some() && t.end.is_some()));
        let untimed = serial_rmw_history(50, 4, 3, false);
        assert_eq!(untimed.len(), 51);
        // Degenerate parameters are clamped rather than panicking.
        let tiny = serial_rmw_history(3, 0, 0, false);
        assert_eq!(tiny.len(), 4);
    }

    #[test]
    fn two_key_histories_touch_two_keys_per_txn() {
        let h = two_key_rmw_history(20, 5, 2);
        assert_eq!(h.len(), 21);
        for t in h.txns() {
            if Some(t.id) != h.init_txn() {
                assert_eq!(t.key_set().len(), 2);
            }
        }
    }
}
