//! Histories (Definition 2 of the paper).
//!
//! A history records, for every session, the sequence of transactions it
//! issued together with the client-visible results. From a history two
//! orders are derived:
//!
//! * the **session order** `SO`: `T1 → T2` iff both belong to the same
//!   session and `T1` was issued before `T2`, or `T1` is the initial
//!   transaction `⊥T`;
//! * the **real-time order** `RT ⊇ SO`: `T1 → T2` additionally when `T1`
//!   finished (in wall-clock time) before `T2` started.

use crate::op::Op;
use crate::session::SessionId;
use crate::txn::{Transaction, TxnId, TxnStatus};
use crate::value::{Key, Value, INIT_VALUE};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// A complete execution history.
///
/// The transaction with id `TxnId(0)` is the initial transaction `⊥T` when
/// [`History::has_init`] is true; it writes [`INIT_VALUE`] to every object of
/// the history and precedes every other transaction in the session order.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct History {
    txns: Vec<Transaction>,
    /// Per-session transaction ids, in issue order. Does not include `⊥T`.
    sessions: Vec<Vec<TxnId>>,
    has_init: bool,
}

impl History {
    /// Number of transactions, including `⊥T` and aborted transactions.
    #[inline]
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// True iff the history contains no transactions at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// True iff the history has an initial transaction `⊥T`.
    #[inline]
    pub fn has_init(&self) -> bool {
        self.has_init
    }

    /// The id of the initial transaction, if present.
    #[inline]
    pub fn init_txn(&self) -> Option<TxnId> {
        if self.has_init {
            Some(TxnId(0))
        } else {
            None
        }
    }

    /// Access a transaction by id.
    #[inline]
    pub fn txn(&self, id: TxnId) -> &Transaction {
        &self.txns[id.index()]
    }

    /// All transactions (including aborted ones and `⊥T`).
    #[inline]
    pub fn txns(&self) -> &[Transaction] {
        &self.txns
    }

    /// Iterator over the ids of all transactions.
    pub fn ids(&self) -> impl Iterator<Item = TxnId> + '_ {
        (0..self.txns.len() as u32).map(TxnId)
    }

    /// Iterator over committed transactions (includes `⊥T`).
    pub fn committed(&self) -> impl Iterator<Item = &Transaction> + '_ {
        self.txns.iter().filter(|t| t.is_committed())
    }

    /// Iterator over ids of committed transactions (includes `⊥T`).
    pub fn committed_ids(&self) -> impl Iterator<Item = TxnId> + '_ {
        self.txns.iter().filter(|t| t.is_committed()).map(|t| t.id)
    }

    /// Number of committed transactions, including `⊥T` if present.
    pub fn committed_count(&self) -> usize {
        self.txns.iter().filter(|t| t.is_committed()).count()
    }

    /// Number of aborted transactions.
    pub fn aborted_count(&self) -> usize {
        self.txns
            .iter()
            .filter(|t| t.status == TxnStatus::Aborted)
            .count()
    }

    /// Number of sessions (not counting the pseudo-session of `⊥T`).
    #[inline]
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Transaction ids of one session, in issue order.
    #[inline]
    pub fn session(&self, s: SessionId) -> &[TxnId] {
        &self.sessions[s.index()]
    }

    /// All sessions, indexed by [`SessionId`].
    #[inline]
    pub fn sessions(&self) -> &[Vec<TxnId>] {
        &self.sessions
    }

    /// The set of all keys touched by any transaction, sorted.
    pub fn keys(&self) -> Vec<Key> {
        let set: BTreeSet<Key> = self
            .txns
            .iter()
            .flat_map(|t| t.ops.iter().map(|o| o.key()))
            .collect();
        set.into_iter().collect()
    }

    /// Total number of operations across all transactions.
    pub fn op_count(&self) -> usize {
        self.txns.iter().map(|t| t.len()).sum()
    }

    /// True iff `a` precedes `b` in the session order.
    pub fn session_order(&self, a: TxnId, b: TxnId) -> bool {
        if a == b {
            return false;
        }
        if self.has_init {
            if a == TxnId(0) {
                return true;
            }
            if b == TxnId(0) {
                return false;
            }
        }
        let (ta, tb) = (self.txn(a), self.txn(b));
        if ta.session != tb.session {
            return false;
        }
        let order = self.session(ta.session);
        let pa = order.iter().position(|&t| t == a);
        let pb = order.iter().position(|&t| t == b);
        matches!((pa, pb), (Some(pa), Some(pb)) if pa < pb)
    }

    /// True iff `a` precedes `b` in the real-time order (`SO` union
    /// wall-clock precedence).
    pub fn real_time_order(&self, a: TxnId, b: TxnId) -> bool {
        if self.session_order(a, b) {
            return true;
        }
        self.txn(a).precedes_in_real_time(self.txn(b))
    }

    /// All session-order pairs `(pred, succ)` between *adjacent* transactions
    /// of each session, plus `⊥T → first transaction of each session`.
    ///
    /// The full `SO` relation is the transitive closure of these edges; the
    /// adjacent pairs suffice for acyclicity checking (Section IV-D).
    pub fn session_order_edges(&self) -> Vec<(TxnId, TxnId)> {
        let mut edges = Vec::new();
        for sess in &self.sessions {
            if let (Some(&first), Some(init)) = (sess.first(), self.init_txn()) {
                edges.push((init, first));
            }
            for w in sess.windows(2) {
                edges.push((w[0], w[1]));
            }
        }
        edges
    }

    /// Map from `(key, value)` to the transactions whose *last* write on
    /// `key` installed `value`. With the unique-value convention every entry
    /// has exactly one writer; the `Vec` accommodates malformed histories.
    pub fn write_index(&self) -> HashMap<(Key, Value), Vec<TxnId>> {
        let mut index: HashMap<(Key, Value), Vec<TxnId>> = HashMap::new();
        for t in self.committed() {
            for key in t.write_set() {
                if let Some(v) = t.last_write(key) {
                    index.entry((key, v)).or_default().push(t.id);
                }
            }
        }
        index
    }

    /// Map from `(key, value)` to *any* transaction (committed or not) that
    /// contains a write of `value` to `key`, even an intermediate one. Used
    /// for detecting `ABORTEDREAD` and `INTERMEDIATEREAD`.
    pub fn any_write_index(&self) -> HashMap<(Key, Value), Vec<TxnId>> {
        let mut index: HashMap<(Key, Value), Vec<TxnId>> = HashMap::new();
        for t in &self.txns {
            for op in &t.ops {
                if let Op::Write { key, value } = *op {
                    let entry = index.entry((key, value)).or_default();
                    if !entry.contains(&t.id) {
                        entry.push(t.id);
                    }
                }
            }
        }
        index
    }

    /// The committed transactions that write to `key` (the set `WriteTxₓ`).
    pub fn writers_of(&self, key: Key) -> Vec<TxnId> {
        self.committed()
            .filter(|t| t.writes(key))
            .map(|t| t.id)
            .collect()
    }

    /// True iff every committed write in the history installs a unique value
    /// per object (the unique-value convention of Section II-A).
    pub fn has_unique_values(&self) -> bool {
        let mut seen: HashMap<(Key, Value), TxnId> = HashMap::new();
        for t in self.committed() {
            for op in &t.ops {
                if let Op::Write { key, value } = *op {
                    if let Some(&prev) = seen.get(&(key, value)) {
                        if prev != t.id {
                            return false;
                        }
                    } else {
                        seen.insert((key, value), t.id);
                    }
                }
            }
        }
        true
    }

    /// Restricts the history to committed transactions whose ids satisfy
    /// `keep`, renumbering ids densely. Session structure is preserved.
    /// `⊥T` is always kept if present.
    pub fn filter_committed(&self) -> History {
        let mut builder = HistoryBuilder::new();
        if self.has_init {
            let init_keys: Vec<Key> = self.txn(TxnId(0)).write_set();
            builder = builder.with_init_keys(init_keys);
        }
        // Map old session ids to builder sessions implicitly: sessions keep
        // their indices, we simply skip aborted transactions.
        for (sid, sess) in self.sessions.iter().enumerate() {
            for &tid in sess {
                let t = self.txn(tid);
                if t.is_committed() {
                    let mut new_t = t.clone();
                    new_t.session = SessionId(sid as u32);
                    builder.push_cloned(new_t);
                }
            }
        }
        builder.build()
    }
}

/// Incremental construction of a [`History`].
///
/// ```
/// use mtc_history::{HistoryBuilder, Op};
///
/// let mut b = HistoryBuilder::new().with_init_keys([0u64, 1u64]);
/// let t1 = b.committed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 10u64)]);
/// let t2 = b.committed(1, vec![Op::read(0u64, 10u64)]);
/// let h = b.build();
/// assert!(h.has_init());
/// assert_eq!(h.len(), 3); // ⊥T + two transactions
/// assert!(h.session_order(h.init_txn().unwrap(), t1));
/// assert!(!h.session_order(t1, t2)); // different sessions
/// ```
#[derive(Clone, Debug, Default)]
pub struct HistoryBuilder {
    txns: Vec<Transaction>,
    sessions: Vec<Vec<TxnId>>,
    init_keys: Option<Vec<Key>>,
}

impl HistoryBuilder {
    /// A builder for a history without an initial transaction.
    pub fn new() -> Self {
        HistoryBuilder::default()
    }

    /// Adds an initial transaction `⊥T` writing [`INIT_VALUE`] to `keys`.
    pub fn with_init_keys<K: Into<Key>, I: IntoIterator<Item = K>>(mut self, keys: I) -> Self {
        self.init_keys = Some(keys.into_iter().map(Into::into).collect());
        self
    }

    /// Adds an initial transaction `⊥T` writing [`INIT_VALUE`] to keys
    /// `0..num_keys`.
    pub fn with_init(self, num_keys: u64) -> Self {
        self.with_init_keys(0..num_keys)
    }

    fn ensure_session(&mut self, s: SessionId) {
        while self.sessions.len() <= s.index() {
            self.sessions.push(Vec::new());
        }
    }

    /// Ensures at least `n` sessions exist, even if some record no
    /// transactions. Needed to round-trip histories whose trailing sessions
    /// went silent (e.g. every attempt aborted and aborts were not
    /// recorded): the session *slots* are part of the history.
    pub fn ensure_sessions(&mut self, n: usize) {
        if n > 0 {
            self.ensure_session(SessionId(n as u32 - 1));
        }
    }

    fn next_id(&self) -> TxnId {
        // Id 0 is reserved for ⊥T when an init transaction was requested.
        let offset = usize::from(self.init_keys.is_some());
        TxnId((self.txns.len() + offset) as u32)
    }

    /// Appends a transaction with explicit status and returns its id.
    pub fn push(&mut self, session: u32, ops: Vec<Op>, status: TxnStatus) -> TxnId {
        let id = self.next_id();
        let session = SessionId(session);
        self.ensure_session(session);
        let txn = Transaction {
            id,
            session,
            ops,
            status,
            begin: None,
            end: None,
        };
        self.sessions[session.index()].push(id);
        self.txns.push(txn);
        id
    }

    /// Appends a committed transaction and returns its id.
    pub fn committed(&mut self, session: u32, ops: Vec<Op>) -> TxnId {
        self.push(session, ops, TxnStatus::Committed)
    }

    /// Appends an aborted transaction and returns its id.
    pub fn aborted(&mut self, session: u32, ops: Vec<Op>) -> TxnId {
        self.push(session, ops, TxnStatus::Aborted)
    }

    /// Appends a committed transaction with wall-clock begin/end instants.
    pub fn committed_timed(&mut self, session: u32, ops: Vec<Op>, begin: u64, end: u64) -> TxnId {
        self.push_timed(session, ops, TxnStatus::Committed, begin, end)
    }

    /// Appends a transaction with explicit status and wall-clock begin/end
    /// instants, returning its id.
    pub fn push_timed(
        &mut self,
        session: u32,
        ops: Vec<Op>,
        status: TxnStatus,
        begin: u64,
        end: u64,
    ) -> TxnId {
        let id = self.push(session, ops, status);
        let t = self.txns.last_mut().expect("just pushed");
        t.begin = Some(begin);
        t.end = Some(end);
        id
    }

    /// Appends an already-constructed transaction, renumbering its id and
    /// registering it under its session. Used when re-assembling histories.
    pub fn push_cloned(&mut self, mut txn: Transaction) -> TxnId {
        let id = self.next_id();
        txn.id = id;
        self.ensure_session(txn.session);
        self.sessions[txn.session.index()].push(id);
        self.txns.push(txn);
        id
    }

    /// Finalizes the history.
    pub fn build(self) -> History {
        let HistoryBuilder {
            mut txns,
            sessions,
            init_keys,
        } = self;
        let has_init = init_keys.is_some();
        if let Some(keys) = init_keys {
            let init_ops = keys
                .into_iter()
                .map(|k| Op::Write {
                    key: k,
                    value: INIT_VALUE,
                })
                .collect();
            let init = Transaction {
                id: TxnId(0),
                session: SessionId::INIT,
                ops: init_ops,
                status: TxnStatus::Committed,
                begin: Some(0),
                end: Some(0),
            };
            txns.insert(0, init);
        }
        History {
            txns,
            sessions,
            has_init,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> History {
        let mut b = HistoryBuilder::new().with_init(2);
        // session 0: T1, T2 ; session 1: T3 (aborted), T4
        b.committed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 10u64)]);
        b.committed(0, vec![Op::read(0u64, 10u64), Op::write(0u64, 11u64)]);
        b.aborted(1, vec![Op::read(1u64, 0u64), Op::write(1u64, 99u64)]);
        b.committed(1, vec![Op::read(1u64, 0u64), Op::write(1u64, 20u64)]);
        b.build()
    }

    #[test]
    fn init_transaction_is_id_zero_and_writes_all_keys() {
        let h = sample();
        assert!(h.has_init());
        let init = h.txn(TxnId(0));
        assert_eq!(init.session, SessionId::INIT);
        assert_eq!(init.write_set(), vec![Key(0), Key(1)]);
        assert!(init.ops.iter().all(|o| o.value() == INIT_VALUE));
    }

    #[test]
    fn counts() {
        let h = sample();
        assert_eq!(h.len(), 5);
        assert_eq!(h.committed_count(), 4); // ⊥T + 3 committed
        assert_eq!(h.aborted_count(), 1);
        assert_eq!(h.session_count(), 2);
        assert_eq!(h.op_count(), 2 + 2 * 4);
        assert_eq!(h.keys(), vec![Key(0), Key(1)]);
    }

    #[test]
    fn session_order_within_and_across_sessions() {
        let h = sample();
        let (t1, t2, t4) = (TxnId(1), TxnId(2), TxnId(4));
        assert!(h.session_order(t1, t2));
        assert!(!h.session_order(t2, t1));
        assert!(!h.session_order(t1, t4)); // different session
        assert!(h.session_order(TxnId(0), t4)); // ⊥T precedes everything
        assert!(!h.session_order(t4, TxnId(0)));
        assert!(!h.session_order(t1, t1));
    }

    #[test]
    fn session_order_edges_are_adjacent_pairs_plus_init() {
        let h = sample();
        let edges = h.session_order_edges();
        assert!(edges.contains(&(TxnId(0), TxnId(1))));
        assert!(edges.contains(&(TxnId(1), TxnId(2))));
        assert!(edges.contains(&(TxnId(0), TxnId(3))));
        assert!(edges.contains(&(TxnId(3), TxnId(4))));
        assert_eq!(edges.len(), 4);
    }

    #[test]
    fn real_time_order_uses_timestamps() {
        let mut b = HistoryBuilder::new();
        let a = b.committed_timed(0, vec![Op::write(0u64, 1u64)], 10, 20);
        let c = b.committed_timed(1, vec![Op::write(0u64, 2u64)], 30, 40);
        let d = b.committed_timed(2, vec![Op::write(0u64, 3u64)], 15, 35);
        let h = b.build();
        assert!(h.real_time_order(a, c));
        assert!(!h.real_time_order(c, a));
        assert!(!h.real_time_order(a, d)); // overlapping
        assert!(!h.real_time_order(d, c)); // overlapping
    }

    #[test]
    fn write_index_maps_values_to_writers() {
        let h = sample();
        let idx = h.write_index();
        assert_eq!(idx[&(Key(0), Value(10))], vec![TxnId(1)]);
        assert_eq!(idx[&(Key(0), Value(11))], vec![TxnId(2)]);
        assert_eq!(idx[&(Key(1), Value(20))], vec![TxnId(4)]);
        // The aborted write is not in the committed index...
        assert!(!idx.contains_key(&(Key(1), Value(99))));
        // ...but is in the any-write index.
        assert!(h.any_write_index().contains_key(&(Key(1), Value(99))));
    }

    #[test]
    fn writers_of_excludes_aborted() {
        let h = sample();
        assert_eq!(h.writers_of(Key(1)), vec![TxnId(0), TxnId(4)]);
    }

    #[test]
    fn unique_values_detection() {
        let h = sample();
        assert!(h.has_unique_values());

        let mut b = HistoryBuilder::new();
        b.committed(0, vec![Op::write(0u64, 5u64)]);
        b.committed(1, vec![Op::write(0u64, 5u64)]);
        let dup = b.build();
        assert!(!dup.has_unique_values());
    }

    #[test]
    fn filter_committed_drops_aborted_transactions() {
        let h = sample();
        let f = h.filter_committed();
        assert_eq!(f.aborted_count(), 0);
        assert_eq!(f.committed_count(), 4);
        assert!(f.has_init());
        // Session 1 now has a single transaction.
        assert_eq!(f.session(SessionId(1)).len(), 1);
    }

    #[test]
    fn history_without_init() {
        let mut b = HistoryBuilder::new();
        let t = b.committed(0, vec![Op::write(0u64, 1u64)]);
        let h = b.build();
        assert!(!h.has_init());
        assert_eq!(h.init_txn(), None);
        assert_eq!(t, TxnId(0));
    }
}
