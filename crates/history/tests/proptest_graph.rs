//! Property-based tests of the graph utilities and of the history builder —
//! the data structures every checker in the workspace relies on.

use mtc_history::{DiGraph, HistoryBuilder, Op, TxnStatus};
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_edges(nodes: usize, max_edges: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((0..nodes, 0..nodes), 0..max_edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A topological order exists iff no cycle is found, and when it exists it
    /// is consistent with every edge.
    #[test]
    fn topological_order_and_cycle_detection_agree(edges in arb_edges(24, 80)) {
        let mut g = DiGraph::new(24);
        for &(a, b) in &edges {
            g.add_edge(a, b);
        }
        match (g.topological_order(), g.find_cycle()) {
            (Some(order), None) => {
                let pos: Vec<usize> = {
                    let mut p = vec![0; 24];
                    for (i, &v) in order.iter().enumerate() {
                        p[v] = i;
                    }
                    p
                };
                for &(a, b) in &edges {
                    prop_assert!(pos[a] < pos[b], "edge {a}->{b} violates the order");
                }
            }
            (None, Some(cycle)) => {
                // The reported cycle must be a closed walk over real edges.
                prop_assert!(!cycle.is_empty());
                for i in 0..cycle.len() {
                    let u = cycle[i];
                    let v = cycle[(i + 1) % cycle.len()];
                    prop_assert!(g.successors(u).contains(&v), "missing edge {u}->{v}");
                }
            }
            (topo, cycle) => {
                prop_assert!(false, "inconsistent answers: topo={topo:?} cycle={cycle:?}");
            }
        }
    }

    /// Strongly connected components partition the node set, and two nodes on
    /// a common cycle end up in the same component.
    #[test]
    fn sccs_partition_nodes(edges in arb_edges(16, 48)) {
        let mut g = DiGraph::new(16);
        for &(a, b) in &edges {
            g.add_edge(a, b);
        }
        let sccs = g.sccs();
        let mut seen = HashSet::new();
        for comp in &sccs {
            for &v in comp {
                prop_assert!(seen.insert(v), "node {v} appears in two components");
            }
        }
        prop_assert_eq!(seen.len(), 16);
        // Mutual reachability implies same component.
        #[allow(clippy::needless_range_loop)] // `b` indexes two parallel structures
        for a in 0..16usize {
            let ra = g.reachable_from(a);
            for b in 0..16usize {
                if a != b && ra[b] && g.reachable_from(b)[a] {
                    let ca = sccs.iter().position(|c| c.contains(&a));
                    let cb = sccs.iter().position(|c| c.contains(&b));
                    prop_assert_eq!(ca, cb, "{} and {} are mutually reachable", a, b);
                }
            }
        }
    }

    /// Reachability is consistent with shortest paths.
    #[test]
    fn shortest_paths_exist_iff_reachable(edges in arb_edges(12, 36), from in 0usize..12, to in 0usize..12) {
        let mut g = DiGraph::new(12);
        for &(a, b) in &edges {
            g.add_edge(a, b);
        }
        let reachable = g.reachable_from(from)[to];
        let path = g.shortest_path(from, to);
        prop_assert_eq!(reachable, path.is_some());
        if let Some(p) = path {
            prop_assert_eq!(*p.first().unwrap(), from);
            prop_assert_eq!(*p.last().unwrap(), to);
            for w in p.windows(2) {
                prop_assert!(w[0] == w[1] || g.successors(w[0]).contains(&w[1]));
            }
        }
    }

    /// The history builder preserves session structure, ids and op counts.
    #[test]
    fn history_builder_preserves_structure(
        txns in prop::collection::vec((0u32..4, 1usize..5, any::<bool>()), 1..30),
        keys in 1u64..6,
    ) {
        let mut builder = HistoryBuilder::new().with_init(keys);
        let mut expected_per_session = [0usize; 4];
        let mut value = 1u64;
        for &(session, ops, committed) in &txns {
            let ops: Vec<Op> = (0..ops)
                .map(|i| {
                    let key = (i as u64) % keys;
                    if i % 2 == 0 {
                        Op::read(key, 0u64)
                    } else {
                        value += 1;
                        Op::write(key, value)
                    }
                })
                .collect();
            if committed {
                builder.committed(session, ops);
            } else {
                builder.aborted(session, ops);
            }
            expected_per_session[session as usize] += 1;
        }
        let history = builder.build();
        prop_assert_eq!(history.len(), txns.len() + 1); // + ⊥T
        prop_assert_eq!(
            history.aborted_count(),
            txns.iter().filter(|t| !t.2).count()
        );
        for (s, &count) in expected_per_session.iter().enumerate() {
            if s < history.session_count() {
                prop_assert_eq!(history.session(mtc_history::SessionId(s as u32)).len(), count);
            } else {
                prop_assert_eq!(count, 0);
            }
        }
        // Every non-init transaction is reachable via its id and keeps its status.
        for t in history.txns() {
            if Some(t.id) != history.init_txn() {
                prop_assert!(matches!(t.status, TxnStatus::Committed | TxnStatus::Aborted));
            }
        }
    }
}
