//! Property-based tests of the graph utilities and of the history builder —
//! the data structures every checker in the workspace relies on.

use mtc_history::{DiGraph, HistoryBuilder, IncrementalTopo, Op, TxnStatus};
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_edges(nodes: usize, max_edges: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((0..nodes, 0..nodes), 0..max_edges)
}

/// Feeds `edges` one at a time, collecting each edge's outcome. A rejected
/// edge is skipped and insertion continues — the reference semantics the
/// batched driver below must reproduce.
fn sequential_outcomes(
    topo: &mut IncrementalTopo,
    edges: &[(usize, usize)],
) -> Vec<Result<(), Vec<usize>>> {
    edges
        .iter()
        .map(|&(a, b)| topo.try_add_edge(a, b))
        .collect()
}

/// Feeds `edges` through `try_add_edges` in chunks of the given sizes
/// (cycled); when a chunk is rejected at `index`, the offending edge is
/// recorded and the remainder of the chunk is re-fed — mirroring how the
/// streaming checkers skip a rejected edge and continue.
fn batched_outcomes(
    topo: &mut IncrementalTopo,
    edges: &[(usize, usize)],
    chunk_sizes: &[usize],
) -> Vec<Result<(), Vec<usize>>> {
    let mut outcomes: Vec<Result<(), Vec<usize>>> = Vec::with_capacity(edges.len());
    let mut remaining = edges;
    let mut chunk_idx = 0usize;
    while !remaining.is_empty() {
        let take = chunk_sizes[chunk_idx % chunk_sizes.len()].clamp(1, remaining.len());
        chunk_idx += 1;
        let (chunk, rest) = remaining.split_at(take);
        let mut chunk = chunk;
        loop {
            match topo.try_add_edges(chunk) {
                Ok(()) => {
                    outcomes.extend(chunk.iter().map(|_| Ok(())));
                    break;
                }
                Err((index, cycle)) => {
                    outcomes.extend(chunk[..index].iter().map(|_| Ok(())));
                    outcomes.push(Err(cycle));
                    chunk = &chunk[index + 1..];
                }
            }
        }
        remaining = rest;
    }
    outcomes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A topological order exists iff no cycle is found, and when it exists it
    /// is consistent with every edge.
    #[test]
    fn topological_order_and_cycle_detection_agree(edges in arb_edges(24, 80)) {
        let mut g = DiGraph::new(24);
        for &(a, b) in &edges {
            g.add_edge(a, b);
        }
        match (g.topological_order(), g.find_cycle()) {
            (Some(order), None) => {
                let pos: Vec<usize> = {
                    let mut p = vec![0; 24];
                    for (i, &v) in order.iter().enumerate() {
                        p[v] = i;
                    }
                    p
                };
                for &(a, b) in &edges {
                    prop_assert!(pos[a] < pos[b], "edge {a}->{b} violates the order");
                }
            }
            (None, Some(cycle)) => {
                // The reported cycle must be a closed walk over real edges.
                prop_assert!(!cycle.is_empty());
                for i in 0..cycle.len() {
                    let u = cycle[i];
                    let v = cycle[(i + 1) % cycle.len()];
                    prop_assert!(g.successors(u).contains(&v), "missing edge {u}->{v}");
                }
            }
            (topo, cycle) => {
                prop_assert!(false, "inconsistent answers: topo={topo:?} cycle={cycle:?}");
            }
        }
    }

    /// Batched insertion is indistinguishable from edge-at-a-time insertion:
    /// same per-edge accept/reject outcomes, the exact same canonical cycle
    /// certificates, and a maintained order that stays consistent with every
    /// accepted edge — under arbitrary (shuffled) batch boundaries.
    #[test]
    fn batched_insertion_matches_sequential(
        edges in arb_edges(20, 64),
        chunk_sizes in prop::collection::vec(1usize..12, 1..6),
    ) {
        let mut seq = IncrementalTopo::with_nodes(20);
        let mut bat = IncrementalTopo::with_nodes(20);
        let seq_out = sequential_outcomes(&mut seq, &edges);
        let bat_out = batched_outcomes(&mut bat, &edges, &chunk_sizes);
        prop_assert_eq!(seq_out.len(), bat_out.len());
        for (i, (s, b)) in seq_out.iter().zip(bat_out.iter()).enumerate() {
            prop_assert_eq!(s, b, "outcome mismatch at edge {} of {:?}", i, edges);
        }
        prop_assert_eq!(seq.edge_count(), bat.edge_count());
        // Both maintained orders must be valid for the accepted edge set.
        for topo in [&seq, &bat] {
            for (i, (&(a, b), out)) in edges.iter().zip(seq_out.iter()).enumerate() {
                if out.is_ok() && a != b {
                    prop_assert!(
                        topo.rank_of(a) < topo.rank_of(b),
                        "accepted edge {} ({}->{}) contradicts the maintained order", i, a, b
                    );
                }
            }
        }
    }

    /// Strongly connected components partition the node set, and two nodes on
    /// a common cycle end up in the same component.
    #[test]
    fn sccs_partition_nodes(edges in arb_edges(16, 48)) {
        let mut g = DiGraph::new(16);
        for &(a, b) in &edges {
            g.add_edge(a, b);
        }
        let sccs = g.sccs();
        let mut seen = HashSet::new();
        for comp in &sccs {
            for &v in comp {
                prop_assert!(seen.insert(v), "node {v} appears in two components");
            }
        }
        prop_assert_eq!(seen.len(), 16);
        // Mutual reachability implies same component.
        #[allow(clippy::needless_range_loop)] // `b` indexes two parallel structures
        for a in 0..16usize {
            let ra = g.reachable_from(a);
            for b in 0..16usize {
                if a != b && ra[b] && g.reachable_from(b)[a] {
                    let ca = sccs.iter().position(|c| c.contains(&a));
                    let cb = sccs.iter().position(|c| c.contains(&b));
                    prop_assert_eq!(ca, cb, "{} and {} are mutually reachable", a, b);
                }
            }
        }
    }

    /// Reachability is consistent with shortest paths.
    #[test]
    fn shortest_paths_exist_iff_reachable(edges in arb_edges(12, 36), from in 0usize..12, to in 0usize..12) {
        let mut g = DiGraph::new(12);
        for &(a, b) in &edges {
            g.add_edge(a, b);
        }
        let reachable = g.reachable_from(from)[to];
        let path = g.shortest_path(from, to);
        prop_assert_eq!(reachable, path.is_some());
        if let Some(p) = path {
            prop_assert_eq!(*p.first().unwrap(), from);
            prop_assert_eq!(*p.last().unwrap(), to);
            for w in p.windows(2) {
                prop_assert!(w[0] == w[1] || g.successors(w[0]).contains(&w[1]));
            }
        }
    }

    /// The history builder preserves session structure, ids and op counts.
    #[test]
    fn history_builder_preserves_structure(
        txns in prop::collection::vec((0u32..4, 1usize..5, any::<bool>()), 1..30),
        keys in 1u64..6,
    ) {
        let mut builder = HistoryBuilder::new().with_init(keys);
        let mut expected_per_session = [0usize; 4];
        let mut value = 1u64;
        for &(session, ops, committed) in &txns {
            let ops: Vec<Op> = (0..ops)
                .map(|i| {
                    let key = (i as u64) % keys;
                    if i % 2 == 0 {
                        Op::read(key, 0u64)
                    } else {
                        value += 1;
                        Op::write(key, value)
                    }
                })
                .collect();
            if committed {
                builder.committed(session, ops);
            } else {
                builder.aborted(session, ops);
            }
            expected_per_session[session as usize] += 1;
        }
        let history = builder.build();
        prop_assert_eq!(history.len(), txns.len() + 1); // + ⊥T
        prop_assert_eq!(
            history.aborted_count(),
            txns.iter().filter(|t| !t.2).count()
        );
        for (s, &count) in expected_per_session.iter().enumerate() {
            if s < history.session_count() {
                prop_assert_eq!(history.session(mtc_history::SessionId(s as u32)).len(), count);
            } else {
                prop_assert_eq!(count, 0);
            }
        }
        // Every non-init transaction is reachable via its id and keeps its status.
        for t in history.txns() {
            if Some(t.id) != history.init_txn() {
                prop_assert!(matches!(t.status, TxnStatus::Committed | TxnStatus::Aborted));
            }
        }
    }
}
