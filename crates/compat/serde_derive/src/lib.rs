//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for
//! the offline `serde` stand-in.
//!
//! Without `syn`/`quote` available, the input item is parsed directly from
//! the `proc_macro` token stream. The supported shapes are exactly the ones
//! this workspace uses:
//!
//! * structs with named fields (honouring `#[serde(skip)]` on a field),
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays),
//! * unit structs,
//! * enums with unit, newtype, tuple and struct variants (externally tagged,
//!   matching serde's default representation).
//!
//! Generic type parameters are not supported; deriving on a generic item
//! produces a compile error naming this limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct NamedField {
    name: String,
    skip: bool,
}

#[derive(Debug, Clone)]
enum Fields {
    Named(Vec<NamedField>),
    Tuple(usize),
    Unit,
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .expect("generated Serialize impl must parse"),
        Err(e) => compile_error(&e),
    }
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated Deserialize impl must parse"),
        Err(e) => compile_error(&e),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ── parsing ─────────────────────────────────────────────────────────────────

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;

    skip_attrs_and_vis(&tokens, &mut i, &mut false);

    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stand-in derive does not support generic type `{name}`"
        ));
    }

    match kw.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unsupported struct body: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, found {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Advances `i` past any `#[...]` attributes and `pub` / `pub(...)`
/// visibility tokens. Sets `skip` if a `#[serde(skip)]` attribute was seen.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize, skip: &mut bool) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    if attr_is_serde_skip(g.stream()) {
                        *skip = true;
                    }
                }
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

fn attr_is_serde_skip(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(path)), Some(TokenTree::Group(args)))
            if path.to_string() == "serde" =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(t, TokenTree::Ident(id) if id.to_string() == "skip"))
        }
        _ => false,
    }
}

/// Parses `name: Type, ...` field lists, tracking angle-bracket depth so that
/// commas inside `HashMap<K, V>`-style types do not end a field early.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<NamedField>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let mut skip = false;
        skip_attrs_and_vis(&tokens, &mut i, &mut skip);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(NamedField { name, skip });
    }
    Ok(fields)
}

/// Counts top-level comma-separated entries of a tuple-struct body, ignoring
/// per-field attributes/visibility and commas nested in generics.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for tok in &tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let mut skip = false;
        skip_attrs_and_vis(&tokens, &mut i, &mut skip);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // consume the trailing comma, if any
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ── code generation ─────────────────────────────────────────────────────────

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let mut pushes = String::new();
                    for f in fs {
                        if f.skip {
                            continue;
                        }
                        pushes.push_str(&format!(
                            "entries.push(({:?}.to_string(), ::serde::Serialize::to_json_value(&self.{})));\n",
                            f.name, f.name
                        ));
                    }
                    format!(
                        "let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::JsonValue)> = ::std::vec::Vec::new();\n{pushes}::serde::JsonValue::Object(entries)"
                    )
                }
                Fields::Tuple(1) => "::serde::Serialize::to_json_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_json_value(&self.{i})"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!("::serde::JsonValue::Array(vec![{items}])")
                }
                Fields::Unit => "::serde::JsonValue::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n fn to_json_value(&self) -> ::serde::JsonValue {{ {body} }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => ::serde::JsonValue::Str({vn:?}.to_string()),\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let binds = (0..*n).map(|i| format!("x{i}")).collect::<Vec<_>>();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_json_value(x0)".to_string()
                        } else {
                            let items = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!("::serde::JsonValue::Array(vec![{items}])")
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::JsonValue::Object(vec![({vn:?}.to_string(), {payload})]),\n",
                            binds = binds.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let binds = fs.iter().map(|f| f.name.clone()).collect::<Vec<_>>();
                        let items = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "({:?}.to_string(), ::serde::Serialize::to_json_value({}))",
                                    f.name, f.name
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::JsonValue::Object(vec![({vn:?}.to_string(), ::serde::JsonValue::Object(vec![{items}]))]),\n",
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n fn to_json_value(&self) -> ::serde::JsonValue {{ match self {{ {arms} }} }}\n}}"
            )
        }
    }
}

fn named_fields_ctor(ty: &str, path: &str, fs: &[NamedField], src: &str) -> String {
    let mut inits = String::new();
    for f in fs {
        if f.skip {
            inits.push_str(&format!(
                "{}: ::std::default::Default::default(),\n",
                f.name
            ));
        } else {
            inits.push_str(&format!(
                "{field}: ::serde::Deserialize::from_json_value({src}.get({field:?}).ok_or_else(|| ::serde::Error::missing_field({ty:?}, {field:?}))?)?,\n",
                field = f.name,
            ));
        }
    }
    format!("{path} {{ {inits} }}")
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let ctor = named_fields_ctor(name, name, fs, "v");
                    format!(
                        "match v {{\n ::serde::JsonValue::Object(_) => Ok({ctor}),\n _ => Err(::serde::Error::expected(\"object\", {name:?})),\n}}"
                    )
                }
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_json_value(v)?))")
                }
                Fields::Tuple(n) => {
                    let items = (0..*n)
                        .map(|i| {
                            format!(
                                "::serde::Deserialize::from_json_value(items.get({i}).ok_or_else(|| ::serde::Error::expected(\"longer array\", {name:?}))?)?"
                            )
                        })
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!(
                        "match v {{\n ::serde::JsonValue::Array(items) => Ok({name}({items})),\n _ => Err(::serde::Error::expected(\"array\", {name:?})),\n}}"
                    )
                }
                Fields::Unit => format!("match v {{ _ => Ok({name}) }}"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n fn from_json_value(v: &::serde::JsonValue) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("{vn:?} => Ok({name}::{vn}),\n"));
                        // Tolerate `{ "Variant": null }` in the tagged form too.
                        tagged_arms.push_str(&format!("{vn:?} => Ok({name}::{vn}),\n"));
                    }
                    Fields::Tuple(1) => {
                        tagged_arms.push_str(&format!(
                            "{vn:?} => Ok({name}::{vn}(::serde::Deserialize::from_json_value(payload)?)),\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let items = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_json_value(items.get({i}).ok_or_else(|| ::serde::Error::expected(\"longer array\", {name:?}))?)?"
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        tagged_arms.push_str(&format!(
                            "{vn:?} => match payload {{\n ::serde::JsonValue::Array(items) => Ok({name}::{vn}({items})),\n _ => Err(::serde::Error::expected(\"array\", {name:?})),\n}},\n"
                        ));
                    }
                    Fields::Named(fs) => {
                        let ctor = named_fields_ctor(name, &format!("{name}::{vn}"), fs, "payload");
                        tagged_arms.push_str(&format!("{vn:?} => Ok({ctor}),\n"));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n fn from_json_value(v: &::serde::JsonValue) -> ::std::result::Result<Self, ::serde::Error> {{\n match v {{\n ::serde::JsonValue::Str(tag) => match tag.as_str() {{\n {unit_arms} other => Err(::serde::Error::unknown_variant({name:?}, other)),\n }},\n ::serde::JsonValue::Object(entries) if entries.len() == 1 => {{\n let (tag, payload) = &entries[0];\n match tag.as_str() {{\n {tagged_arms} other => Err(::serde::Error::unknown_variant({name:?}, other)),\n }}\n }},\n _ => Err(::serde::Error::expected(\"string or single-key object\", {name:?})),\n }}\n }}\n}}"
            )
        }
    }
}
