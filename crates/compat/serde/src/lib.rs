//! Offline stand-in for the `serde` crate.
//!
//! The real `serde` cannot be fetched in this build environment, so this
//! crate provides the small surface the workspace actually uses: a
//! [`Serialize`]/[`Deserialize`] trait pair over an owned JSON value tree
//! ([`JsonValue`]), derive macros for both traits (re-exported from the
//! sibling `serde_derive` proc-macro crate), and implementations for the
//! primitive types, `String`, `Option`, `Vec`, tuples, maps and
//! `std::time::Duration`.
//!
//! Unsigned 64-bit integers are preserved exactly (not routed through `f64`),
//! which matters because unique write values pack session ids into the high
//! bits and must round-trip bit-identically.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// An owned JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer that fits `u64`, kept exact.
    U64(u64),
    /// A negative integer, kept exact.
    I64(i64),
    /// Any other number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Renders the value as compact JSON text.
    pub fn render(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(n) => out.push_str(&n.to_string()),
            JsonValue::I64(n) => out.push_str(&n.to_string()),
            JsonValue::F64(x) => {
                if x.is_finite() {
                    // `{:?}` prints the shortest representation that
                    // round-trips through parsing.
                    out.push_str(&format!("{x:?}"));
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => render_string(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render(out);
                }
                out.push(']');
            }
            JsonValue::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialization/deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// A free-form error.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }

    /// `ty` expected a JSON shape it did not get.
    pub fn expected(what: &str, ty: &str) -> Self {
        Error(format!("expected {what} while deserializing {ty}"))
    }

    /// A struct field was absent.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error(format!("missing field `{field}` while deserializing {ty}"))
    }

    /// An enum tag did not match any variant.
    pub fn unknown_variant(ty: &str, tag: &str) -> Self {
        Error(format!("unknown variant `{tag}` of {ty}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`JsonValue`].
pub trait Serialize {
    /// Converts `self` into a JSON value tree.
    fn to_json_value(&self) -> JsonValue;
}

/// Types that can be reconstructed from a [`JsonValue`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a JSON value tree.
    fn from_json_value(v: &JsonValue) -> Result<Self, Error>;
}

// ── primitive impls ─────────────────────────────────────────────────────────

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> JsonValue {
                JsonValue::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &JsonValue) -> Result<Self, Error> {
                match v {
                    JsonValue::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t)))),
                    JsonValue::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t)))),
                    _ => Err(Error::expected("unsigned integer", stringify!($t))),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> JsonValue {
                let n = *self as i64;
                if n >= 0 {
                    JsonValue::U64(n as u64)
                } else {
                    JsonValue::I64(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &JsonValue) -> Result<Self, Error> {
                match v {
                    JsonValue::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t)))),
                    JsonValue::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t)))),
                    _ => Err(Error::expected("signed integer", stringify!($t))),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> JsonValue {
                JsonValue::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &JsonValue) -> Result<Self, Error> {
                match v {
                    JsonValue::F64(x) => Ok(*x as $t),
                    JsonValue::U64(n) => Ok(*n as $t),
                    JsonValue::I64(n) => Ok(*n as $t),
                    _ => Err(Error::expected("number", stringify!($t))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &JsonValue) -> Result<Self, Error> {
        match v {
            JsonValue::Bool(b) => Ok(*b),
            _ => Err(Error::expected("boolean", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &JsonValue) -> Result<Self, Error> {
        match v {
            JsonValue::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_json_value(v: &JsonValue) -> Result<Self, Error> {
        match v {
            JsonValue::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::expected("single-character string", "char")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> JsonValue {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> JsonValue {
        match self {
            Some(x) => x.to_json_value(),
            None => JsonValue::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &JsonValue) -> Result<Self, Error> {
        match v {
            JsonValue::Null => Ok(None),
            other => Ok(Some(T::from_json_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &JsonValue) -> Result<Self, Error> {
        match v {
            JsonValue::Array(items) => items.iter().map(T::from_json_value).collect(),
            _ => Err(Error::expected("array", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json_value(&self) -> JsonValue {
                JsonValue::Array(vec![$(self.$n.to_json_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json_value(v: &JsonValue) -> Result<Self, Error> {
                match v {
                    JsonValue::Array(items) => {
                        Ok(($($t::from_json_value(
                            items.get($n).ok_or_else(|| Error::expected("longer array", "tuple"))?,
                        )?,)+))
                    }
                    _ => Err(Error::expected("array", "tuple")),
                }
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Array(
            self.iter()
                .map(|(k, v)| JsonValue::Array(vec![k.to_json_value(), v.to_json_value()]))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_json_value(v: &JsonValue) -> Result<Self, Error> {
        match v {
            JsonValue::Array(items) => {
                let mut map = HashMap::with_capacity_and_hasher(items.len(), S::default());
                for item in items {
                    let (k, val) = <(K, V)>::from_json_value(item)?;
                    map.insert(k, val);
                }
                Ok(map)
            }
            _ => Err(Error::expected("array of pairs", "HashMap")),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Array(
            self.iter()
                .map(|(k, v)| JsonValue::Array(vec![k.to_json_value(), v.to_json_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_json_value(v: &JsonValue) -> Result<Self, Error> {
        match v {
            JsonValue::Array(items) => {
                let mut map = BTreeMap::new();
                for item in items {
                    let (k, val) = <(K, V)>::from_json_value(item)?;
                    map.insert(k, val);
                }
                Ok(map)
            }
            _ => Err(Error::expected("array of pairs", "BTreeMap")),
        }
    }
}

impl Serialize for std::time::Duration {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("secs".to_string(), JsonValue::U64(self.as_secs())),
            (
                "nanos".to_string(),
                JsonValue::U64(self.subsec_nanos() as u64),
            ),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_json_value(v: &JsonValue) -> Result<Self, Error> {
        let secs = u64::from_json_value(
            v.get("secs")
                .ok_or_else(|| Error::missing_field("Duration", "secs"))?,
        )?;
        let nanos = u32::from_json_value(
            v.get("nanos")
                .ok_or_else(|| Error::missing_field("Duration", "nanos"))?,
        )?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_values_survive_exactly() {
        let big: u64 = (37u64 + 1) << 40 | 123; // allocator-style packed value
        let v = big.to_json_value();
        assert_eq!(u64::from_json_value(&v).unwrap(), big);
    }

    #[test]
    fn string_escaping() {
        let mut out = String::new();
        JsonValue::Str("a\"b\\c\n".to_string()).render(&mut out);
        assert_eq!(out, r#""a\"b\\c\n""#);
    }

    #[test]
    fn object_get() {
        let v = JsonValue::Object(vec![("k".into(), JsonValue::U64(1))]);
        assert_eq!(v.get("k"), Some(&JsonValue::U64(1)));
        assert_eq!(v.get("missing"), None);
    }
}
