//! Offline stand-in for the subset of [`futures-lite`] this workspace uses,
//! following the repo's no-registry discipline (same crate name and module
//! paths as the real crate, nothing that isn't needed here).
//!
//! Two layers:
//!
//! * [`future`] — the real futures-lite surface: [`future::block_on`],
//!   [`future::yield_now`] and [`future::poll_fn`], implemented on
//!   `std::task` with a thread-parking waker.
//! * [`executor`] — *not* part of real futures-lite (which delegates to
//!   async-executor): a minimal scoped multi-task executor,
//!   [`executor::run_all`], that drives a batch of non-`'static` futures on
//!   a small worker pool until all complete. This is the piece the async
//!   ingest driver needs: thousands of in-flight transactions overlapping
//!   without a thread each, with futures that borrow the workload and the
//!   backend from the caller's stack.
//!
//! [`futures-lite`]: https://docs.rs/futures-lite

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod future {
    //! Future combinators and blocking entry points.

    use std::future::Future;
    use std::pin::Pin;
    use std::sync::Arc;
    use std::task::{Context, Poll, Wake, Waker};

    /// Wakes a parked thread; the waker behind [`block_on`].
    struct ThreadWaker(std::thread::Thread);

    impl Wake for ThreadWaker {
        fn wake(self: Arc<Self>) {
            self.0.unpark();
        }
        fn wake_by_ref(self: &Arc<Self>) {
            self.0.unpark();
        }
    }

    /// Runs a future to completion on the current thread, parking between
    /// polls.
    pub fn block_on<F: Future>(fut: F) -> F::Output {
        let mut fut = std::pin::pin!(fut);
        let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
        let mut cx = Context::from_waker(&waker);
        loop {
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(out) => return out,
                Poll::Pending => std::thread::park(),
            }
        }
    }

    /// A future that is pending exactly once, waking itself immediately —
    /// the cooperative scheduling point of the async drivers.
    pub fn yield_now() -> YieldNow {
        YieldNow { yielded: false }
    }

    /// Future returned by [`yield_now`].
    #[derive(Debug)]
    pub struct YieldNow {
        yielded: bool,
    }

    impl Future for YieldNow {
        type Output = ();
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.yielded {
                Poll::Ready(())
            } else {
                self.yielded = true;
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
    }

    /// Creates a future from a closure returning [`Poll`].
    pub fn poll_fn<T, F: FnMut(&mut Context<'_>) -> Poll<T>>(f: F) -> PollFn<F> {
        PollFn { f }
    }

    /// Future returned by [`poll_fn`].
    pub struct PollFn<F> {
        f: F,
    }

    impl<F> std::fmt::Debug for PollFn<F> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("PollFn").finish_non_exhaustive()
        }
    }

    impl<T, F: FnMut(&mut Context<'_>) -> Poll<T>> Future for PollFn<F> {
        type Output = T;
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
            // Safe un-pinned access: `PollFn` owns only the closure and is
            // structurally Unpin when F is (closures here always are).
            let this = self.get_mut();
            (this.f)(cx)
        }
    }

    impl<F> Unpin for PollFn<F> {}
}

pub mod executor {
    //! A minimal scoped multi-task executor.
    //!
    //! [`run_all`] drives `tasks` — futures that may borrow from the
    //! caller's stack — on `workers` OS threads inside a
    //! [`std::thread::scope`], returning once every task has completed.
    //!
    //! The waker problem: a [`std::task::Waker`] must be `'static`, but the
    //! task futures are not. The waker therefore carries only a task index
    //! plus an [`Arc`]-shared [`WakeState`] (run queue, per-task "already
    //! queued" flags, a remaining-task counter); the futures themselves live
    //! in per-task slots that only the scoped worker threads touch. A task
    //! is polled by exactly one worker at a time (it must be popped from the
    //! queue to be polled, and wakes arriving *during* a poll re-queue it
    //! rather than handing it to a second worker).

    use std::collections::VecDeque;
    use std::future::Future;
    use std::pin::Pin;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::task::{Context, Poll, Wake, Waker};

    /// Shared scheduler state: which tasks are runnable and how many remain.
    struct WakeState {
        queue: Mutex<VecDeque<usize>>,
        queued: Vec<AtomicBool>,
        remaining: AtomicUsize,
        cv: Condvar,
    }

    impl WakeState {
        fn enqueue(&self, idx: usize) {
            if !self.queued[idx].swap(true, Ordering::AcqRel) {
                self.queue
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push_back(idx);
                self.cv.notify_one();
            }
        }
    }

    /// The `'static` waker: a task index plus the shared scheduler state.
    struct TaskWaker {
        idx: usize,
        state: Arc<WakeState>,
    }

    impl Wake for TaskWaker {
        fn wake(self: Arc<Self>) {
            self.state.enqueue(self.idx);
        }
        fn wake_by_ref(self: &Arc<Self>) {
            self.state.enqueue(self.idx);
        }
    }

    /// A spawnable task: a pinned, boxed future any worker thread may poll.
    pub type BoxedTask<'env, T> = Pin<Box<dyn Future<Output = T> + Send + 'env>>;

    /// Drives every future in `tasks` to completion on at most `workers`
    /// threads (clamped to at least one) and returns their outputs in task
    /// order. Futures may borrow from the caller's stack; they must be
    /// [`Send`] because any worker may poll them.
    pub fn run_all<'env, T: Send + 'env>(tasks: Vec<BoxedTask<'env, T>>, workers: usize) -> Vec<T> {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = workers.clamp(1, n);

        let state = Arc::new(WakeState {
            queue: Mutex::new((0..n).collect()),
            queued: (0..n).map(|_| AtomicBool::new(true)).collect(),
            remaining: AtomicUsize::new(n),
            cv: Condvar::new(),
        });
        let slots: Vec<Mutex<Option<BoxedTask<'env, T>>>> =
            tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let outputs: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let state = Arc::clone(&state);
                let slots = &slots;
                let outputs = &outputs;
                scope.spawn(move || loop {
                    let idx = {
                        let mut queue = state.queue.lock().unwrap_or_else(|e| e.into_inner());
                        loop {
                            if let Some(idx) = queue.pop_front() {
                                break idx;
                            }
                            if state.remaining.load(Ordering::Acquire) == 0 {
                                return;
                            }
                            queue = state.cv.wait(queue).unwrap_or_else(|e| e.into_inner());
                        }
                    };
                    // Clear the flag *before* polling so wakes that arrive
                    // mid-poll re-queue the task instead of being lost.
                    state.queued[idx].store(false, Ordering::Release);
                    let waker = Waker::from(Arc::new(TaskWaker {
                        idx,
                        state: Arc::clone(&state),
                    }));
                    let mut cx = Context::from_waker(&waker);
                    let mut slot = slots[idx].lock().unwrap_or_else(|e| e.into_inner());
                    let Some(fut) = slot.as_mut() else {
                        continue; // already completed; spurious wake
                    };
                    if let Poll::Ready(out) = fut.as_mut().poll(&mut cx) {
                        *slot = None;
                        *outputs[idx].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
                        if state.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                            state.cv.notify_all();
                        }
                    }
                });
            }
        });

        outputs
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("executor exited with an incomplete task")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::executor::run_all;
    use super::future::{block_on, poll_fn, yield_now};
    use std::future::Future;
    use std::pin::Pin;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::task::Poll;

    #[test]
    fn block_on_runs_a_yielding_future() {
        let out = block_on(async {
            let mut acc = 0u32;
            for i in 0..10 {
                yield_now().await;
                acc += i;
            }
            acc
        });
        assert_eq!(out, 45);
    }

    #[test]
    fn poll_fn_completes_after_pending() {
        let mut polls = 0;
        let out = block_on(poll_fn(move |cx| {
            polls += 1;
            if polls < 3 {
                cx.waker().wake_by_ref();
                Poll::Pending
            } else {
                Poll::Ready(polls)
            }
        }));
        assert_eq!(out, 3);
    }

    #[test]
    fn run_all_interleaves_borrowing_tasks() {
        let counter = AtomicUsize::new(0);
        let counter_ref = &counter;
        let n = 32;
        for workers in [1, 4] {
            counter.store(0, Ordering::SeqCst);
            let outputs = run_all(
                (0..n)
                    .map(|i| {
                        let fut = async move {
                            for _ in 0..5 {
                                counter_ref.fetch_add(1, Ordering::SeqCst);
                                yield_now().await;
                            }
                            i
                        };
                        Box::pin(fut) as Pin<Box<dyn Future<Output = usize> + Send + '_>>
                    })
                    .collect(),
                workers,
            );
            assert_eq!(outputs, (0..n).collect::<Vec<_>>());
            assert_eq!(counter.load(Ordering::SeqCst), n * 5);
        }
    }

    #[test]
    fn run_all_handles_empty_and_single() {
        let empty: Vec<Pin<Box<dyn Future<Output = u8> + Send>>> = Vec::new();
        assert!(run_all(empty, 4).is_empty());
        let one: Vec<Pin<Box<dyn Future<Output = u8> + Send>>> = vec![Box::pin(async { 7u8 })];
        assert_eq!(run_all(one, 8), vec![7]);
    }
}
