//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses: the
//! [`Strategy`](strategy::Strategy) trait with range/tuple/`Just`/one-of/
//! collection strategies, `any::<T>()`, the `proptest!` macro with optional
//! `#![proptest_config(...)]`, and the `prop_assert*` / `prop_assume!`
//! macros. Cases are sampled deterministically (seeded per case index), and
//! there is no shrinking: a failing case panics with the sampled inputs'
//! `Debug` rendering, which is reproducible because sampling is
//! deterministic.

/// Configuration and per-test runner plumbing.
pub mod test_runner {
    /// Mirror of proptest's config: only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted cases each property must pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A case rejected by `prop_assume!`.
    #[derive(Debug)]
    pub struct Reject;

    /// Deterministic per-case rng.
    pub struct TestRng(pub rand::rngs::StdRng);

    impl TestRng {
        /// An rng fully determined by `stream`.
        pub fn deterministic(stream: u64) -> Self {
            use rand::SeedableRng;
            TestRng(rand::rngs::StdRng::seed_from_u64(
                0x9E37_79B9_7F4A_7C15 ^ stream.wrapping_mul(0xA24B_AED4_963E_E407),
            ))
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Strategies: recipes for generating random values.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of type `Value`.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (**self).sample(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    }

    /// Uniform choice among boxed strategies (backs `prop_oneof!`).
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Builds a union; panics when `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].sample(rng)
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T>(::std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// An arbitrary value of type `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(::std::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_exclusive: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.min..self.max_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Sizes usable as the second argument of [`vec`].
    pub trait IntoSizeRange {
        /// Lower bound (inclusive) and upper bound (exclusive).
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for ::std::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            (self.start, self.end.max(self.start + 1))
        }
    }

    impl IntoSizeRange for ::std::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    /// `prop::collection::vec(element, size)` — vectors of sampled elements.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max_exclusive) = size.bounds();
        VecStrategy {
            element,
            min,
            max_exclusive,
        }
    }
}

/// Optional-value strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen::<bool>() {
                Some(self.0.sample(rng))
            } else {
                None
            }
        }
    }

    /// `prop::option::of(strategy)` — `Some` roughly half the time.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }
}

/// Sampling strategies over concrete collections.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// The strategy returned by [`select`].
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }

    /// `prop::sample::select(options)` — a uniform choice among the given
    /// values. Panics when `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select(options)
    }
}

/// Module alias used by the prelude (`prop::collection::vec` and friends).
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
    pub use crate::strategy;
}

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares deterministic property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_inner! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_inner! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_inner {
    ($cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            let mut stream: u64 = 0;
            while accepted < cfg.cases {
                let mut rng = $crate::test_runner::TestRng::deterministic(stream);
                stream += 1;
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                #[allow(clippy::redundant_closure_call)] // the closure gives prop_assume! a scope to return from
                let outcome: ::std::result::Result<(), $crate::test_runner::Reject> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err(_) => {
                        rejected += 1;
                        assert!(
                            rejected < cfg.cases.saturating_mul(64).max(1024),
                            "too many prop_assume! rejections ({rejected}) in {}",
                            stringify!($name),
                        );
                    }
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+); };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+); };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+); };
}

/// Discards the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Reject);
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        // The expected type of `Union::new`'s argument coerces each
        // `Box<Concrete>` to `Box<dyn Strategy<Value = V>>`.
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_sample_in_bounds(
            pair in (0usize..10, 5u64..9),
            flag in any::<bool>(),
            xs in prop::collection::vec(0u32..4, 1..6),
        ) {
            let (a, b) = pair;
            prop_assert!(a < 10);
            prop_assert!((5..9).contains(&b));
            let _ = flag;
            prop_assert!(!xs.is_empty() && xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 4));
        }

        #[test]
        fn assume_rejects_without_hanging(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn option_and_select_sample_their_domains(
            maybe in prop::option::of(0u32..4),
            choice in prop::sample::select(vec![10u64, 20, 30]),
        ) {
            if let Some(v) = maybe {
                prop_assert!(v < 4);
            }
            prop_assert!([10, 20, 30].contains(&choice));
        }
    }

    #[test]
    fn oneof_covers_every_option() {
        use crate::strategy::Strategy;
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for i in 0..64 {
            let mut rng = crate::test_runner::TestRng::deterministic(i);
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
