//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros — with a
//! deliberately small measurement budget: each benchmark is warmed up once
//! and then timed over up to [`Bencher::MAX_ITERS`] iterations or
//! [`Bencher::BUDGET`], whichever is hit first. One line per benchmark is
//! printed with the mean wall-clock time per iteration.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of a parameterized benchmark (`function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Runs and times one benchmark body.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Hard cap on timed iterations per benchmark.
    pub const MAX_ITERS: u64 = 30;
    /// Wall-clock budget per benchmark.
    pub const BUDGET: Duration = Duration::from_millis(120);

    /// Times `routine`, storing iteration count and total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // one un-timed warm-up iteration
        black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < Self::MAX_ITERS && start.elapsed() < Self::BUDGET {
            black_box(routine());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.total = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, mut f: F) {
    let mut b = Bencher {
        iters: 1,
        total: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.total.as_secs_f64() / b.iters as f64 * 1e6;
    let name = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!("bench {name}: {per_iter:.1} µs/iter ({} iters)", b.iters);
}

/// A named set of related benchmarks. Tuning setters are accepted and
/// ignored — the stand-in always uses its own small budget.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Ignored (the stand-in uses a fixed iteration budget).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ignored (the stand-in uses a fixed time budget).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Ignored (the stand-in warms up for exactly one iteration).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Ignored.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Throughput annotation (accepted, ignored).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Benchmarks `f` under `id` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.to_string(), f);
        self
    }

    /// Benchmarks `f` with a borrowed input outside any group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one("", &id.to_string(), |b| f(b, input));
        self
    }
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
