//! Offline stand-in for the `rand` crate.
//!
//! Provides exactly the API surface this workspace uses: [`RngCore`],
//! [`Rng`] (with `gen`, `gen_range`, `gen_bool`), [`SeedableRng`] with
//! `seed_from_u64`, and [`rngs::StdRng`] implemented as xoshiro256++ seeded
//! through SplitMix64. Statistical quality is more than sufficient for
//! workload generation and tests; the crate makes no cryptographic claims.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable with [`Rng::gen`] (an inlined version of rand's
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from the standard distribution for this type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types uniformly samplable from half-open / inclusive ranges.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as u64)
                    .wrapping_sub(lo as u64)
                    .wrapping_add(u64::from(inclusive));
                if span == 0 {
                    if inclusive {
                        // Full-width inclusive range: every value is fair game.
                        return rng.next_u64() as $t;
                    }
                    panic!("cannot sample from empty range");
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        assert!(lo < hi, "cannot sample from empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for ::std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for ::std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start() <= self.end(), "cannot sample from empty range");
        T::sample_in(rng, *self.start(), *self.end(), true)
    }
}

/// User-facing random-sampling methods (blanket-implemented over
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, RG: SampleRange<T>>(&mut self, range: RG) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Rngs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds an rng whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete rng implementations.
pub mod rngs {
    pub use super::StdRng;
}

/// The workspace's standard rng: xoshiro256++.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the 64-bit seed into the 256-bit state,
        // as recommended by the xoshiro authors.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(9);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(9);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(10);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u64 = r.gen_range(5..17);
            assert!((5..17).contains(&x));
            let y: usize = r.gen_range(0..=3);
            assert!(y <= 3);
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((4_000..6_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw(rng: &mut (impl Rng + ?Sized)) -> u64 {
            rng.gen_range(0..100u64)
        }
        let mut r = StdRng::seed_from_u64(3);
        let dynamic: &mut dyn RngCore = &mut r;
        assert!(draw(dynamic) < 100);
    }
}
