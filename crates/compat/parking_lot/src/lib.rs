//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync`
//! primitives exposing the poison-free `lock()`/`read()`/`write()` API.
//! A poisoned std lock is recovered (the panic that poisoned it already
//! propagates through the thread join in this workspace's executors).

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking, recovering from
    /// poisoning. `None` means another thread holds the lock.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }
}
