//! Offline stand-in for `serde_json`: compact rendering and a recursive
//! descent parser for the [`serde::JsonValue`] tree, plus the
//! `to_string`/`from_str` entry points the workspace uses.

pub use serde::Error;
use serde::{Deserialize, JsonValue, Serialize};

/// Serializes `value` as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_json_value().render(&mut out);
    Ok(out)
}

/// Parses a value of type `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_json_value(&value)
}

/// Parses JSON text into a [`JsonValue`].
pub fn parse(s: &str) -> Result<JsonValue, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = self.hex4()?;
                        // Surrogate pairs for astral-plane characters.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(Error::msg("lone high surrogate"));
                            }
                            let low = self.hex4()?;
                            let combined =
                                0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                            char::from_u32(combined)
                                .ok_or_else(|| Error::msg("bad surrogate pair"))?
                        } else {
                            char::from_u32(code).ok_or_else(|| Error::msg("bad \\u escape"))?
                        };
                        out.push(c);
                    }
                    other => {
                        return Err(Error::msg(format!(
                            "bad escape {:?}",
                            other.map(|b| b as char)
                        )))
                    }
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode a multi-byte UTF-8 sequence from the source.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = chunk
                        .chars()
                        .next()
                        .ok_or_else(|| Error::msg("empty UTF-8 chunk"))?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = self
                .bump()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| Error::msg("bad \\u escape"))?;
            code = code * 16 + d;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(JsonValue::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(JsonValue::I64(n));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }

    fn array(&mut self) -> Result<JsonValue, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Array(items)),
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]`, found {:?}",
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JsonValue::Object(entries)),
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}`, found {:?}",
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(parse("42").unwrap(), JsonValue::U64(42));
        assert_eq!(parse("-7").unwrap(), JsonValue::I64(-7));
        assert_eq!(parse("1.5").unwrap(), JsonValue::F64(1.5));
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(r#""hi\n""#).unwrap(), JsonValue::Str("hi\n".into()));
    }

    #[test]
    fn round_trip_u64_precision() {
        let big = u64::MAX - 3;
        let text = to_string(&big).unwrap();
        assert_eq!(from_str::<u64>(&text).unwrap(), big);
    }

    #[test]
    fn nested_structures() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x"}"#;
        let v = parse(text).unwrap();
        let mut out = String::new();
        v.render(&mut out);
        assert_eq!(out, text);
    }

    #[test]
    fn unicode_strings_round_trip() {
        let v = parse(r#""⊥T → λ""#).unwrap();
        assert_eq!(v, JsonValue::Str("⊥T → λ".to_string()));
        assert_eq!(parse(r#""é""#).unwrap(), JsonValue::Str("é".to_string()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
    }
}
