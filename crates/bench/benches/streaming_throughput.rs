//! Streaming verification throughput: batch `CHECKSER`/`CHECKSI`/`CHECKSSER`
//! versus the incremental checker versus the key-sharded incremental
//! checker.
//!
//! The batch checkers see the whole history at once; the streaming checkers
//! consume it transaction-by-transaction (the incremental one) or in batches
//! fanned out across the autotuned shard geometry (the sharded one — see
//! `mtc_core::tune`). On multi-core machines
//! the sharded variant should meet or beat the sequential incremental
//! checker, while both stay within a small factor of the batch verifier —
//! the price of an online answer. The SSER group additionally pits the
//! `Θ(n²)` naive RT materialization against the `O(n log n)` batch
//! time-chain and the online time-chain (naive runs on the small size only —
//! it would dominate the wall-clock budget at the large one).

mod common;

use common::{serial_mt_history, two_key_mt_history};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtc_core::{
    check_ser, check_si, check_sser, check_sser_naive, check_streaming, check_streaming_sharded,
    tune, IsolationLevel,
};

fn bench_streaming_throughput(c: &mut Criterion) {
    let sizes = [1000u64, 8000];
    // Shard geometry comes from the autotuner, so the bench measures what a
    // caller on this machine would actually get.
    let tuning = tune();
    let (shards, batch) = (tuning.shards, tuning.batch);
    eprintln!("streaming_throughput: autotuned geometry = {shards} shards, batch {batch}");

    let mut group = c.benchmark_group("streaming_throughput_ser");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for &n in &sizes {
        let history = serial_mt_history(n, 64, 8);
        group.bench_with_input(BenchmarkId::new("batch", n), &history, |b, h| {
            b.iter(|| check_ser(h).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("incremental", n), &history, |b, h| {
            b.iter(|| check_streaming(IsolationLevel::Serializability, h).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("sharded", n), &history, |b, h| {
            b.iter(|| {
                check_streaming_sharded(IsolationLevel::Serializability, h, shards, batch).unwrap()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("streaming_throughput_si");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for &n in &sizes {
        let history = two_key_mt_history(n, 64, 8);
        group.bench_with_input(BenchmarkId::new("batch", n), &history, |b, h| {
            b.iter(|| check_si(h).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("incremental", n), &history, |b, h| {
            b.iter(|| check_streaming(IsolationLevel::SnapshotIsolation, h).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("sharded", n), &history, |b, h| {
            b.iter(|| {
                check_streaming_sharded(IsolationLevel::SnapshotIsolation, h, shards, batch)
                    .unwrap()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("streaming_throughput_sser");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for &n in &sizes {
        let history = serial_mt_history(n, 64, 8);
        group.bench_with_input(BenchmarkId::new("batch", n), &history, |b, h| {
            b.iter(|| check_sser(h).unwrap())
        });
        if n <= 1000 {
            group.bench_with_input(BenchmarkId::new("naive", n), &history, |b, h| {
                b.iter(|| check_sser_naive(h).unwrap())
            });
        }
        group.bench_with_input(BenchmarkId::new("incremental", n), &history, |b, h| {
            b.iter(|| check_streaming(IsolationLevel::StrictSerializability, h).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("sharded", n), &history, |b, h| {
            b.iter(|| {
                check_streaming_sharded(IsolationLevel::StrictSerializability, h, shards, batch)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_streaming_throughput);
criterion_main!(benches);
