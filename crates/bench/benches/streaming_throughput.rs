//! Streaming verification throughput: batch `CHECKSER`/`CHECKSI` versus the
//! incremental checker versus the key-sharded incremental checker.
//!
//! The batch checkers see the whole history at once; the streaming checkers
//! consume it transaction-by-transaction (the incremental one) or in batches
//! fanned out across 4 key shards (the sharded one). On multi-core machines
//! the sharded variant should meet or beat the sequential incremental
//! checker, while both stay within a small factor of the batch verifier —
//! the price of an online answer.

mod common;

use common::{serial_mt_history, two_key_mt_history};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtc_core::{check_ser, check_si, check_streaming, check_streaming_sharded, IsolationLevel};

const SHARDS: usize = 4;
const BATCH: usize = 1024;

fn bench_streaming_throughput(c: &mut Criterion) {
    let sizes = [1000u64, 8000];

    let mut group = c.benchmark_group("streaming_throughput_ser");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for &n in &sizes {
        let history = serial_mt_history(n, 64, 8);
        group.bench_with_input(BenchmarkId::new("batch", n), &history, |b, h| {
            b.iter(|| check_ser(h).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("incremental", n), &history, |b, h| {
            b.iter(|| check_streaming(IsolationLevel::Serializability, h).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("sharded", n), &history, |b, h| {
            b.iter(|| {
                check_streaming_sharded(IsolationLevel::Serializability, h, SHARDS, BATCH).unwrap()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("streaming_throughput_si");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for &n in &sizes {
        let history = two_key_mt_history(n, 64, 8);
        group.bench_with_input(BenchmarkId::new("batch", n), &history, |b, h| {
            b.iter(|| check_si(h).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("incremental", n), &history, |b, h| {
            b.iter(|| check_streaming(IsolationLevel::SnapshotIsolation, h).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("sharded", n), &history, |b, h| {
            b.iter(|| {
                check_streaming_sharded(IsolationLevel::SnapshotIsolation, h, SHARDS, BATCH)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_streaming_throughput);
criterion_main!(benches);
