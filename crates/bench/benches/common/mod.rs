//! Shared helpers for the Criterion benches: re-exports of the fast, purely
//! synthetic history generators (no simulator in the loop, so the benches
//! time the checkers only). The definitions live in `mtc_bench::histories`
//! so the CI perf-regression gate measures the exact same histories.

pub use mtc_bench::histories::serial_mt_history;
#[allow(unused_imports)] // not every bench uses both flavours
pub use mtc_bench::histories::two_key_mt_history;
