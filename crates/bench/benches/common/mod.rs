//! Shared helpers for the Criterion benches: fast, purely synthetic history
//! generators (no simulator in the loop, so the benches time the checkers
//! only).

use mtc_history::{History, HistoryBuilder, Op};

/// Builds a valid (serializable and strictly serializable) mini-transaction
/// history of `n` transactions over `keys` objects issued by `sessions`
/// sessions: each transaction reads the current value of one key and writes
/// the next value, with strictly increasing begin/end instants.
#[allow(clippy::explicit_counter_loop)] // `value` is state, not a counter
pub fn serial_mt_history(n: u64, keys: u64, sessions: u32) -> History {
    let mut builder = HistoryBuilder::new().with_init(keys);
    let mut last = vec![0u64; keys as usize];
    let mut value = 1u64;
    for i in 0..n {
        let key = i % keys;
        let session = (i % sessions as u64) as u32;
        let ops = vec![Op::read(key, last[key as usize]), Op::write(key, value)];
        builder.committed_timed(session, ops, 10 * i + 1, 10 * i + 5);
        last[key as usize] = value;
        value += 1;
    }
    builder.build()
}

/// Builds a valid history where pairs of transactions touch two keys each
/// (the write-skew-shaped MT flavour), still serial.
#[allow(dead_code)]
pub fn two_key_mt_history(n: u64, keys: u64, sessions: u32) -> History {
    let keys = keys.max(2);
    let mut builder = HistoryBuilder::new().with_init(keys);
    let mut last = vec![0u64; keys as usize];
    let mut value = 1u64;
    for i in 0..n {
        let a = i % keys;
        let b = (i + 1) % keys;
        let session = (i % sessions as u64) as u32;
        let ops = vec![
            Op::read(a, last[a as usize]),
            Op::read(b, last[b as usize]),
            Op::write(a, value),
            Op::write(b, value + 1),
        ];
        builder.committed_timed(session, ops, 10 * i + 1, 10 * i + 5);
        last[a as usize] = value;
        last[b as usize] = value + 1;
        value += 2;
    }
    builder.build()
}
