//! Ablation: the optimized `BUILDDEPENDENCY` (Section IV-C) versus the
//! reference variant that computes the per-object WW transitive closure, and
//! the effect of the DIVERGENCE early exit in `CHECKSI`.

mod common;

use common::serial_mt_history;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtc_core::{build_dependency, build_dependency_reference, check_si_with, CheckOptions};

fn bench_build_dependency(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_dependency");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for &n in &[500u64, 1000, 2000] {
        // Few keys → long per-key WW chains → the transitive closure hurts.
        let history = serial_mt_history(n, 8, 8);
        group.bench_with_input(BenchmarkId::new("optimized", n), &history, |b, h| {
            b.iter(|| build_dependency(h, false).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("reference_closure", n),
            &history,
            |b, h| b.iter(|| build_dependency_reference(h, false).unwrap()),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("si_divergence_early_exit");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let history = serial_mt_history(1000, 16, 8);
    let with = CheckOptions::default();
    let without = CheckOptions {
        skip_divergence_early_exit: true,
        ..CheckOptions::default()
    };
    group.bench_function("early_exit_enabled", |b| {
        b.iter(|| check_si_with(&history, &with).unwrap())
    });
    group.bench_function("early_exit_disabled", |b| {
        b.iter(|| check_si_with(&history, &without).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_build_dependency);
criterion_main!(benches);
