//! MTC versus the baselines on identical histories: the micro-level version
//! of Figures 7, 8 and 9.

mod common;

use common::serial_mt_history;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtc_baselines::cobra::{cobra_check_ser, cobra_check_ser_with};
use mtc_baselines::polysi::polysi_check_si;
use mtc_baselines::porcupine::porcupine_check_linearizability;
use mtc_core::{check_linearizability, check_ser, check_si};
use mtc_workload::{generate_lwt_history, LwtHistorySpec};

fn bench_baseline_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("ser_checkers");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for &n in &[200u64, 500, 1000] {
        let history = serial_mt_history(n, 16, 8);
        group.bench_with_input(BenchmarkId::new("mtc_ser", n), &history, |b, h| {
            b.iter(|| check_ser(h).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("cobra", n), &history, |b, h| {
            b.iter(|| cobra_check_ser(h))
        });
        group.bench_with_input(BenchmarkId::new("cobra_no_pruning", n), &history, |b, h| {
            b.iter(|| cobra_check_ser_with(h, false))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("si_checkers");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for &n in &[200u64, 500, 1000] {
        let history = serial_mt_history(n, 16, 8);
        group.bench_with_input(BenchmarkId::new("mtc_si", n), &history, |b, h| {
            b.iter(|| check_si(h).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("polysi", n), &history, |b, h| {
            b.iter(|| polysi_check_si(h))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("lin_checkers");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for &(sessions, per) in &[(4u32, 20u32), (8, 20)] {
        let spec = LwtHistorySpec {
            sessions,
            txns_per_session: per,
            num_keys: 1,
            concurrent_fraction: 1.0,
            inject_violation: false,
            seed: 7,
        };
        let ops = generate_lwt_history(&spec);
        let label = format!("{sessions}x{per}");
        group.bench_with_input(BenchmarkId::new("vl_lwt", &label), &ops, |b, o| {
            b.iter(|| check_linearizability(o).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("porcupine", &label), &ops, |b, o| {
            b.iter(|| porcupine_check_linearizability(o))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baseline_comparison);
criterion_main!(benches);
