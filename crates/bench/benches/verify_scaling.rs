//! Scaling of the MTC verifiers with history size (Section IV-D):
//! `CHECKSER` and `CHECKSI` are expected to scale linearly, the naive
//! `CHECKSSER` quadratically, and the time-chain `CHECKSSER` quasi-linearly.

mod common;

use common::serial_mt_history;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtc_core::{check_ser, check_si, check_sser, check_sser_naive};

fn bench_verify_scaling(c: &mut Criterion) {
    let sizes = [250u64, 500, 1000, 2000];
    let mut group = c.benchmark_group("verify_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for &n in &sizes {
        let history = serial_mt_history(n, 32, 8);
        group.bench_with_input(BenchmarkId::new("check_ser", n), &history, |b, h| {
            b.iter(|| check_ser(h).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("check_si", n), &history, |b, h| {
            b.iter(|| check_si(h).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("check_sser_timechain", n),
            &history,
            |b, h| b.iter(|| check_sser(h).unwrap()),
        );
    }
    group.finish();

    // The naive quadratic SSER verifier is benchmarked on smaller inputs.
    let mut group = c.benchmark_group("sser_naive_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for &n in &[100u64, 200, 400] {
        let history = serial_mt_history(n, 16, 4);
        group.bench_with_input(BenchmarkId::new("check_sser_naive", n), &history, |b, h| {
            b.iter(|| check_sser_naive(h).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_verify_scaling);
criterion_main!(benches);
