//! Throughput of the MT and GT workload generators and of the key samplers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtc_workload::{
    generate_gt_workload, generate_mt_workload, Distribution, GtWorkloadSpec, KeySampler,
    MtWorkloadSpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generation");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for &txns in &[1000u32, 5000] {
        let mt = MtWorkloadSpec {
            sessions: 10,
            txns_per_session: txns / 10,
            num_keys: 1000,
            distribution: Distribution::Zipf { theta: 1.0 },
            read_only_fraction: 0.2,
            two_key_fraction: 0.5,
            seed: 1,
        };
        group.bench_with_input(BenchmarkId::new("mt", txns), &mt, |b, spec| {
            b.iter(|| generate_mt_workload(spec))
        });
        let gt = GtWorkloadSpec {
            sessions: 10,
            txns_per_session: txns / 10,
            ops_per_txn: 20,
            num_keys: 1000,
            distribution: Distribution::Zipf { theta: 1.0 },
            read_only_fraction: 0.2,
            write_only_fraction: 0.4,
            seed: 1,
        };
        group.bench_with_input(BenchmarkId::new("gt", txns), &gt, |b, spec| {
            b.iter(|| generate_gt_workload(spec))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("key_sampling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for dist in Distribution::paper_set() {
        let sampler = KeySampler::new(10_000, dist);
        group.bench_function(dist.label(), |b| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| sampler.sample(&mut rng))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_workload_generation);
criterion_main!(benches);
