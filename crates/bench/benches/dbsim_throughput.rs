//! Throughput of the simulated database under the different isolation modes:
//! how fast histories can be generated, and how abort rates respond to
//! contention (the mechanism behind Figures 10, 11, 14 and 17).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtc_dbsim::{Database, DbConfig, ExecutionOptions, IsolationMode};
use mtc_workload::{generate_mt_workload, Distribution, MtWorkloadSpec};

fn bench_dbsim_throughput(c: &mut Criterion) {
    let spec = MtWorkloadSpec {
        sessions: 4,
        txns_per_session: 250,
        num_keys: 64,
        distribution: Distribution::Uniform,
        read_only_fraction: 0.2,
        two_key_fraction: 0.5,
        seed: 11,
    };
    let workload = generate_mt_workload(&spec);
    let mut group = c.benchmark_group("dbsim_execute_1000_mts");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for mode in [
        IsolationMode::ReadCommitted,
        IsolationMode::Snapshot,
        IsolationMode::Serializable,
    ] {
        group.bench_with_input(BenchmarkId::new("mode", mode.label()), &workload, |b, w| {
            b.iter(|| {
                let db = Database::new(DbConfig::correct(mode, 64));
                ExecutionOptions::threaded().run(&db, w)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dbsim_throughput);
criterion_main!(benches);
