//! Synthetic history generators shared by the Criterion benches and the CI
//! perf-regression gate. The definitions live in `mtc_history::synthetic`
//! (one canonical shape, also used by the shard autotuner's calibration
//! burst); these wrappers pin the timed flavours the benches report on.

use mtc_history::History;

/// Builds a valid (serializable and strictly serializable) mini-transaction
/// history of `n` transactions over `keys` objects issued by `sessions`
/// sessions: each transaction reads the current value of one key and writes
/// the next value, with strictly increasing begin/end instants.
pub fn serial_mt_history(n: u64, keys: u64, sessions: u32) -> History {
    mtc_history::synthetic::serial_rmw_history(n, keys, sessions, true)
}

/// Builds a valid history where pairs of transactions touch two keys each
/// (the write-skew-shaped MT flavour), still serial.
pub fn two_key_mt_history(n: u64, keys: u64, sessions: u32) -> History {
    mtc_history::synthetic::two_key_rmw_history(n, keys, sessions)
}
