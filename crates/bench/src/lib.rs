//! # mtc-bench
//!
//! The benchmark harness of the reproduction:
//!
//! * the `fig*` and `table*` binaries (in `src/bin/`) regenerate every table
//!   and figure of the paper's evaluation by running the parameterized sweeps
//!   of `mtc-runner::experiments` at full scale, printing them as aligned
//!   text and TSV and writing CSV files under `target/experiments/`;
//! * the Criterion benches (in `benches/`) measure the micro-level claims:
//!   linear/quadratic verification scaling, the cost of the reference versus
//!   optimized `BUILDDEPENDENCY`, MTC versus the baselines on identical
//!   histories, workload-generation throughput and simulator throughput.
//!
//! Run a single figure with, e.g.:
//!
//! ```text
//! cargo run --release -p mtc-bench --bin fig7_ser_verification
//! cargo run --release -p mtc-bench --bin fig7_ser_verification -- --quick
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mtc_runner::Table;
use std::path::PathBuf;

pub mod histories;

/// Where the figure binaries drop their CSV series.
pub fn experiments_dir() -> PathBuf {
    PathBuf::from("target/experiments")
}

/// True iff `--quick` was passed on the command line (tests and smoke runs).
pub fn quick_requested() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Prints a set of tables (aligned + TSV) and writes them as CSV files.
pub fn emit(tables: &[Table]) {
    let dir = experiments_dir();
    for table in tables {
        println!("{}", table.to_aligned());
        println!("{}", table.to_tsv());
        match table.write_csv(&dir) {
            Ok(path) => println!("wrote {}\n", path.display()),
            Err(e) => eprintln!("could not write CSV for {}: {e}", table.title),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiments_dir_is_under_target() {
        assert!(experiments_dir().starts_with("target"));
    }

    #[test]
    fn emit_writes_csv_files() {
        let mut t = Table::new("bench_lib_emit_test", &["a"]);
        t.push(&[1]);
        emit(&[t]);
        assert!(experiments_dir().join("bench_lib_emit_test.csv").exists());
        let _ = std::fs::remove_file(experiments_dir().join("bench_lib_emit_test.csv"));
    }
}
