//! Wire-crash smoke test: SIGKILL the *server* mid-stream (the CI job).
//!
//! The parent re-spawns this binary as a server child wrapping the
//! strict-serializable simulator behind the framed TCP protocol; a watchdog
//! thread SIGKILLs the child mid-workload — no FIN handshakes, no
//! server-side cleanup, exactly the disappearance a remote backend client
//! must survive. The parent drives a concurrent workload against it and
//! asserts, after the kill:
//!
//! 1. the drivers finish without panicking — every wire failure surfaced as
//!    a typed `AbortReason` (`ConnectionLost` before commit,
//!    `CommitStatusUnknown` after);
//! 2. the collected history — whatever committed before the kill, fenced by
//!    the recording rules that keep ambiguous commits out — still passes
//!    the engine's promised level;
//! 3. the streaming verdict on that history is **bit-identical** to a clean
//!    replay: re-streamed sequentially, re-streamed sharded, and in
//!    agreement with the batch checker.
//!
//! ```text
//! cargo run --release -p mtc-bench --bin net_crash_smoke
//! ```
//!
//! Exit code 0 on success; nonzero (with a diagnostic) on any mismatch.

use mtc_core::{check_sser, check_streaming, check_streaming_sharded, IsolationLevel};
use mtc_dbsim::{DbBackend, ExecutionOptions};
use mtc_net::{spec_for_label, NetBackend};
use mtc_workload::{generate_mt_workload, Distribution, MtWorkloadSpec};
use std::io::BufRead;
use std::process::{Command, Stdio};
use std::time::Duration;

const LEVEL: IsolationLevel = IsolationLevel::StrictSerializability;
const ENGINE: &str = "sim-ser";

fn workload_spec() -> MtWorkloadSpec {
    MtWorkloadSpec {
        sessions: 4,
        txns_per_session: 1500,
        num_keys: 16,
        distribution: Distribution::Uniform,
        read_only_fraction: 0.2,
        two_key_fraction: 0.5,
        seed: 47,
    }
}

/// Server child: serve the engine on an ephemeral port, print the address,
/// and let the watchdog SIGKILL us mid-stream.
fn server_child(kill_after_ms: u64) -> ! {
    std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(kill_after_ms));
        let me = std::process::id().to_string();
        let _ = Command::new("kill").args(["-9", &me]).status();
        // If there is no `kill` binary, die almost as abruptly.
        std::process::abort();
    });
    let spec = workload_spec();
    let backend_spec = spec_for_label(ENGINE, spec.num_keys).expect("fleet label resolves");
    let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).expect("ephemeral loopback bind");
    println!("listening on {}", listener.local_addr().expect("bound"));
    use std::io::Write;
    let _ = std::io::stdout().flush();
    let backend = backend_spec.build();
    let shutdown = std::sync::atomic::AtomicBool::new(false);
    let _ = mtc_net::serve(backend.as_ref(), listener, &shutdown);
    std::process::exit(0)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--server") {
        let kill_after_ms = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(400u64);
        server_child(kill_after_ms);
    }

    let exe = std::env::current_exe().expect("own path");
    let mut child = Command::new(&exe)
        .args(["--server", "400"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn server child");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut line)
        .expect("server child announces its address");
    let addr: std::net::SocketAddr = line
        .trim()
        .strip_prefix("listening on ")
        .expect("announcement format")
        .parse()
        .expect("announced address parses");
    println!("server child up on {addr}, SIGKILL in ~400ms");

    let backend = NetBackend::connect(addr).expect("loopback connect");
    let workload = generate_mt_workload(&workload_spec());
    let (history, report) = ExecutionOptions::threaded().run(&backend, &workload);
    let status = child.wait().expect("server child reaped");
    println!(
        "drivers survived the kill (child exit: {status}): {} committed, {} failed, \
         {} aborted attempts, {} txns recorded",
        report.committed,
        report.failed,
        report.aborted_attempts,
        history.len()
    );
    if report.committed == 0 {
        eprintln!("FAIL: nothing committed before the kill — the smoke proves nothing");
        std::process::exit(1);
    }
    if report.failed == 0 {
        eprintln!("FAIL: no template failed — did the server actually die mid-stream?");
        std::process::exit(1);
    }
    // The backend's promise must have reached us in the handshake.
    assert!(
        backend.promises(LEVEL),
        "handshake lost the engine's promises"
    );

    // The partial history must pass the promised level, and the streaming
    // verdict must be bit-identical to a clean replay (sequential and
    // sharded) and agree with batch.
    let batch = check_sser(&history).expect("history is inside the checker domain");
    let first = check_streaming(LEVEL, &history).expect("streamable");
    let replay = check_streaming(LEVEL, &history).expect("streamable");
    let sharded = check_streaming_sharded(LEVEL, &history, 3, 16).expect("streamable");
    if batch.is_violated() {
        eprintln!(
            "FAIL: the recorded history violates the engine's promised level:\n{:?}",
            batch.violation()
        );
        std::process::exit(1);
    }
    if first != replay {
        eprintln!("FAIL: streaming verdict not reproducible on clean replay");
        eprintln!("  first:  {first:?}");
        eprintln!("  replay: {replay:?}");
        std::process::exit(1);
    }
    if first != sharded {
        eprintln!("FAIL: sharded replay verdict diverges");
        eprintln!("  sequential: {first:?}");
        eprintln!("  sharded:    {sharded:?}");
        std::process::exit(1);
    }
    println!(
        "OK: verdict bit-identical across replays ({} committed txns checked, batch agrees)",
        report.committed
    );
}
