//! CI perf-regression gate for the streaming checkers.
//!
//! Times the batch, incremental and autotuned-sharded checkers at every
//! isolation level over synthetic serial histories, writes the measurements
//! as `BENCH_streaming.json` (uploaded as a CI artifact so every PR leaves a
//! throughput trail), and — with `--check <baseline.json>` — fails when a
//! streaming checker regressed more than 30% against the committed baseline.
//!
//! Schema 3 adds per-backend execution-throughput series
//! (`backend/<label>`): the same MT workload executed end-to-end against
//! each engine of the backend fleet (OCC simulator, strict-2PL wait-die,
//! weak MVCC). These are **artifact-only** — the gate ignores them until a
//! baseline with recorded backend series exists, so heterogeneous engines
//! leave a throughput trail without destabilizing CI.
//!
//! Schema 4 adds the verification-as-a-service scaling curve
//! (`service/tenants-N` for N ∈ {1, 2, 4, 8}): the `mtc-service` daemon
//! in-process, N concurrent tenants streaming clean histories over loopback
//! TCP; `millis` is the p99 per-batch ingest latency and `txns_per_sec` the
//! sustained end-to-end verification rate. Artifact-only — the curve
//! depends on core count and loopback scheduling, so it is never gated.
//!
//! Schema 5 adds the observability-overhead series (`ser/incremental-obs`):
//! the streaming SER pass re-measured with `mtc-obs` metric recording
//! switched on. It is gated **in-run**, baseline-free: the instrumented
//! pass must reach at least 95% of the uninstrumented pass measured
//! seconds earlier in the same process — the "zero-overhead when disabled,
//! bounded when enabled" contract of the metrics layer, enforced on every
//! run even without `--check`.
//!
//! Schema 6 gates the online-SSER fast path **in-run**, baseline-free:
//! since the time-chain append fast path (pre-materialized anchors, batched
//! chain+hook edges, sorted-vec slot store) the streaming SSER checker must
//! reach at least 95% of the batch SSER checker measured seconds earlier in
//! the same process. Like the observability gate, the comparison is
//! machine-independent by construction, so it holds on every run even
//! without `--check`.
//!
//! Since the epoch-GC work the `<level>/incremental-gc` series are **gated**
//! alongside `incremental` and `sharded` (collection is expected to cost at
//! most a modest constant factor now that commits are amortized off the
//! ingest path), and the run's peak-RSS high-water mark is gated against
//! the baseline's. A `<level>/sharded-allcores` series (one shard per
//! available core, tuned hand-off batch) quantifies the fan-out win as an
//! artifact-only trail — core counts differ across runners, so it is never
//! gated.
//!
//! Raw throughput is machine-dependent, so the gate normalizes by machine
//! speed before comparing: for each isolation level, the batch checker's
//! current/baseline throughput ratio is the machine scale, and each
//! streaming series must reach at least 70% of `baseline × scale`. That
//! turns the gate into a test of *streaming overhead relative to batch
//! checking* — exactly the quantity the merge-path work optimizes — and
//! keeps it stable across CI runner generations. The sharded series are
//! gated like-for-like: when this box's autotuned geometry differs from the
//! baseline's recorded one, the gate re-measures the sharded checkers at
//! the baseline geometry for the comparison (the autotuned numbers stay in
//! the artifact as this machine's trail).
//!
//! ```text
//! cargo run --release -p mtc-bench --bin streaming_bench_gate -- \
//!     --out BENCH_streaming.json --check ci/BENCH_streaming_baseline.json
//! ```
//!
//! Flags: `--txns N` sets the history size (default 4000), `--out PATH` the
//! report path, `--check PATH` enables the regression comparison.

use mtc_bench::histories::serial_mt_history;
use mtc_core::{
    check_ser, check_si, check_sser, check_streaming, check_streaming_sharded, tune, GcPolicy,
    IncrementalChecker, IsolationLevel, Verdict,
};
use mtc_dbsim::{BackendSpec, ExecutionOptions};
use mtc_history::History;
use mtc_workload::{generate_mt_workload, Distribution, MtWorkloadSpec};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Throughput must stay above this fraction of the machine-scaled baseline.
const MIN_RELATIVE_THROUGHPUT: f64 = 0.70;

/// The run's peak-RSS high-water mark must stay below this multiple of the
/// baseline's. Memory is workload-dominated (graph + history footprint), so
/// unlike throughput it is gated without machine scaling — but with a
/// generous allowance for allocator and platform variance.
const MAX_RSS_GROWTH: f64 = 1.5;

/// Timing repetitions per series; the best run is reported (CI noise floor).
const REPS: usize = 5;

/// One measured checker configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct Series {
    /// `<level>/<flavour>`, e.g. `ser/sharded`.
    name: String,
    /// Best-of-[`REPS`] wall time for one pass, in milliseconds.
    millis: f64,
    /// Transactions per second at that wall time.
    txns_per_sec: f64,
    /// Process peak resident set (`VmHWM`, kB) when the series finished —
    /// monotone across the run, so deltas between consecutive series bound
    /// each series' extra footprint. 0 when the platform has no `/proc`.
    peak_rss_kb: u64,
    /// Live graph nodes resident in the checker after the pass (only
    /// meaningful for the `*-gc` series; 0 for batch checkers, history
    /// size for unbounded streaming ones). Artifact-only, not gated.
    retained_nodes: u64,
}

/// The `BENCH_streaming.json` document.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct BenchReport {
    /// Format version.
    schema: u32,
    /// Transactions per measured history (excluding `⊥T`).
    txns: u64,
    /// Autotuned shard count used by the sharded series.
    shards: u64,
    /// Autotuned hand-off batch size used by the sharded series.
    batch: u64,
    /// All measured series.
    series: Vec<Series>,
}

impl BenchReport {
    fn series(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }
}

/// Process peak resident set in kB (`VmHWM` on Linux; 0 elsewhere).
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find_map(|l| {
                l.strip_prefix("VmHWM:")
                    .and_then(|rest| rest.split_whitespace().next())
                    .and_then(|n| n.parse().ok())
            })
        })
        .unwrap_or(0)
}

/// Best-of-[`REPS`] wall time of `run`, which must return a clean verdict.
fn measure(label: &str, mut run: impl FnMut() -> Verdict) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..REPS {
        let start = Instant::now();
        let verdict = run();
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        assert!(
            verdict.is_satisfied(),
            "{label}: the gate history is serial by construction"
        );
        best = best.min(elapsed);
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let txns: u64 = flag("--txns")
        .map(|v| v.parse().expect("--txns takes a number"))
        .unwrap_or(4000);
    let out = flag("--out").unwrap_or_else(|| "BENCH_streaming.json".to_string());
    let baseline_path = flag("--check");

    let tuning = tune();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let history = serial_mt_history(txns, 64, 8);
    let per_level: [(&str, IsolationLevel); 3] = [
        ("ser", IsolationLevel::Serializability),
        ("si", IsolationLevel::SnapshotIsolation),
        ("sser", IsolationLevel::StrictSerializability),
    ];

    let mut series = Vec::new();
    for (tag, level) in per_level {
        let batch_fn: fn(&History) -> Verdict = match level {
            IsolationLevel::Serializability => |h| check_ser(h).unwrap(),
            IsolationLevel::SnapshotIsolation => |h| check_si(h).unwrap(),
            IsolationLevel::StrictSerializability => |h| check_sser(h).unwrap(),
        };
        // Settled-prefix GC series: same stream, bounded resident state.
        // The perf trail records its throughput, peak RSS and how many
        // graph nodes stayed resident (the quantity the GC bounds).
        // Settled-prefix GC series share the measurement loop; the retained
        // node count is captured from the measured reps themselves (no
        // extra pass), and the RSS high-water mark is sampled right after
        // each series so consecutive deltas attribute footprint per series.
        let gc_policy = GcPolicy {
            window: 1024,
            every: 256,
            reader_cap: 0,
        };
        let gc_retained = std::cell::Cell::new(0u64);
        let run_gc = || {
            let mut c = IncrementalChecker::new(level).with_gc(gc_policy);
            let _ = c.push_history(&history);
            gc_retained.set(c.live_node_count() as u64);
            c.finish().unwrap()
        };
        let mut record = |flavour: &str, millis: f64, retained: u64| {
            let name = format!("{tag}/{flavour}");
            let txns_per_sec = txns as f64 / (millis / 1e3);
            let peak_rss = peak_rss_kb();
            println!(
                "{name:<18} {millis:>9.3} ms   {txns_per_sec:>12.0} txns/s   \
                 rss {peak_rss:>8} kB   retained {retained}"
            );
            series.push(Series {
                name,
                millis,
                txns_per_sec,
                peak_rss_kb: peak_rss,
                retained_nodes: retained,
            });
        };
        let millis = measure(&format!("{tag}/batch"), || batch_fn(&history));
        record("batch", millis, 0);
        let millis = measure(&format!("{tag}/incremental"), || {
            check_streaming(level, &history).unwrap()
        });
        record("incremental", millis, 0);
        let millis = measure(&format!("{tag}/incremental-gc"), run_gc);
        record("incremental-gc", millis, gc_retained.get());
        let millis = measure(&format!("{tag}/sharded"), || {
            check_streaming_sharded(level, &history, tuning.shards, tuning.batch).unwrap()
        });
        record("sharded", millis, 0);
        // Multi-core fan-out series (artifact-only): the sharded checker at
        // one shard per available core with the tuned hand-off batch — the
        // throughput a caller on this machine gets by throwing every core
        // at the stream. Not gated: core counts differ across CI runners.
        let millis = measure(&format!("{tag}/sharded-allcores"), || {
            check_streaming_sharded(level, &history, cores, tuning.batch).unwrap()
        });
        record("sharded-allcores", millis, 0);
    }

    // Observability overhead (schema 5, gated in-run): the streaming SER
    // pass with metric recording enabled, against the `ser/incremental`
    // number measured moments ago with recording off (the process default).
    // Gated against *this run's* own uninstrumented measurement rather than
    // the committed baseline, so the 5% bound holds machine-independently.
    let mut inrun_failures: Vec<String> = Vec::new();
    {
        let level = IsolationLevel::Serializability;
        let base_tps = series
            .iter()
            .find(|s| s.name == "ser/incremental")
            .map(|s| s.txns_per_sec)
            .expect("ser/incremental measured above");
        mtc_obs::set_enabled(true);
        mtc_obs::registry().reset();
        let millis = measure("ser/incremental-obs", || {
            check_streaming(level, &history).unwrap()
        });
        mtc_obs::set_enabled(false);
        let name = "ser/incremental-obs".to_string();
        let txns_per_sec = txns as f64 / (millis / 1e3);
        let peak_rss = peak_rss_kb();
        let ratio = txns_per_sec / base_tps;
        println!(
            "{name:<18} {millis:>9.3} ms   {txns_per_sec:>12.0} txns/s   \
             rss {peak_rss:>8} kB   ({:.1}% of uninstrumented)",
            ratio * 1e2
        );
        if ratio < 0.95 {
            inrun_failures.push(format!(
                "{name}: instrumented ingest reaches only {:.1}% of the uninstrumented \
                 pass (floor 95%)",
                ratio * 1e2
            ));
        }
        series.push(Series {
            name,
            millis,
            txns_per_sec,
            peak_rss_kb: peak_rss,
            retained_nodes: 0,
        });
    }

    // Online-SSER fast path (schema 6, gated in-run): streaming SSER
    // ingest must keep pace with the batch SSER checker it replaced on the
    // hot path. Both sides were measured minutes apart in this process, so
    // the ratio is machine-independent; no baseline involved.
    {
        let tps = |name: &str| {
            series
                .iter()
                .find(|s| s.name == name)
                .map(|s| s.txns_per_sec)
                .expect("measured above")
        };
        let ratio = tps("sser/incremental") / tps("sser/batch");
        println!(
            "gate sser/incremental: {:.1}% of sser/batch (floor 95%)   [{}]",
            ratio * 1e2,
            if ratio >= 0.95 { "ok" } else { "REGRESSED" }
        );
        if ratio < 0.95 {
            inrun_failures.push(format!(
                "sser/incremental: streaming SSER reaches only {:.1}% of the batch \
                 checker measured in this run (floor 95%)",
                ratio * 1e2
            ));
        }
    }

    // Per-backend execution throughput (schema 3, artifact-only): the same
    // MT workload executed end-to-end against each engine of the fleet.
    // Committed-transaction throughput, best of 3 runs (thread-spawn noise).
    let backend_txns = (txns / 4).max(200);
    let wl_spec = MtWorkloadSpec {
        sessions: 4,
        txns_per_session: (backend_txns / 4).max(1) as u32,
        num_keys: 64,
        distribution: Distribution::Uniform,
        read_only_fraction: 0.2,
        two_key_fraction: 0.5,
        seed: 0xBE7C,
    };
    let workload = generate_mt_workload(&wl_spec);
    for spec in BackendSpec::fleet(wl_spec.num_keys) {
        let mut best = f64::MAX;
        let mut committed = 0usize;
        for _ in 0..3 {
            let db = spec.build();
            let start = Instant::now();
            let (_, report) = ExecutionOptions::threaded().run(db.as_ref(), &workload);
            let elapsed = start.elapsed().as_secs_f64() * 1e3;
            // Keep numerator and denominator from the same run: committed
            // counts vary per run on nondeterministic backends (wait-die).
            if elapsed < best {
                best = elapsed;
                committed = report.committed;
            }
        }
        let name = format!("backend/{}", spec.label());
        let txns_per_sec = committed as f64 / (best / 1e3);
        let peak_rss = peak_rss_kb();
        println!(
            "{name:<18} {best:>9.3} ms   {txns_per_sec:>12.0} txns/s   \
             rss {peak_rss:>8} kB   committed {committed}"
        );
        series.push(Series {
            name,
            millis: best,
            txns_per_sec,
            peak_rss_kb: peak_rss,
            retained_nodes: 0,
        });
    }

    // Remote execution throughput (artifact-only: `backend/net-*` is not in
    // the committed baseline, so these series inform without gating): the
    // same workload against representative engines behind the loopback TCP
    // server, sessions multiplexed by the async ingest driver. The gap to
    // the matching in-process series is the price of a real wire.
    for engine in ["sim-ser", "2pl"] {
        let spec = mtc_net::spec_for_label(engine, wl_spec.num_keys).expect("fleet label");
        let mut best = f64::MAX;
        let mut committed = 0usize;
        for _ in 0..3 {
            let server = mtc_net::NetServer::spawn(spec.clone()).expect("loopback server");
            let db = mtc_net::NetBackend::connect(server.addr()).expect("loopback connect");
            // A blocking engine needs one worker per session (see
            // `Driver::Async`); non-blocking ones showcase the multiplexing
            // with fewer.
            let workers = if spec.blocking() {
                wl_spec.sessions as usize
            } else {
                2
            };
            let start = Instant::now();
            let (_, report) =
                mtc_dbsim::ExecutionOptions::async_workers(workers).run(&db, &workload);
            let elapsed = start.elapsed().as_secs_f64() * 1e3;
            if elapsed < best {
                best = elapsed;
                committed = report.committed;
            }
            drop(db);
            let _ = server.shutdown();
        }
        let name = format!("backend/net-{engine}");
        let txns_per_sec = committed as f64 / (best / 1e3);
        let peak_rss = peak_rss_kb();
        println!(
            "{name:<18} {best:>9.3} ms   {txns_per_sec:>12.0} txns/s   \
             rss {peak_rss:>8} kB   committed {committed}"
        );
        series.push(Series {
            name,
            millis: best,
            txns_per_sec,
            peak_rss_kb: peak_rss,
            retained_nodes: 0,
        });
    }

    // Verification-as-a-service scaling curve (schema 4, artifact-only):
    // the `mtc-service` daemon in-process, N concurrent tenants streaming
    // clean synthetic histories over loopback TCP. `millis` records the p99
    // per-batch ingest latency (admission time, backpressure retries
    // included) rather than a pass wall time; `txns_per_sec` the sustained
    // end-to-end verification rate across all tenants. Not gated: the curve
    // depends on core count and loopback scheduling.
    {
        let root = std::env::temp_dir().join(format!("mtc_bench_service_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let server = mtc_service::ServiceServer::spawn(mtc_service::ServiceConfig::new(&root))
            .expect("in-process service daemon spawns");
        for tenants in [1usize, 2, 4, 8] {
            let spec = mtc_service::LoadSpec {
                tenants,
                sessions: 4,
                txns_per_session: 250,
                ..Default::default()
            };
            let point = mtc_service::drive(server.addr(), &spec, &format!("bench{tenants}"))
                .expect("clean synthetic streams verify with zero loss");
            let name = format!("service/tenants-{tenants}");
            let p99_ms = point.p99_ingest_micros as f64 / 1e3;
            let peak_rss = peak_rss_kb();
            println!(
                "{name:<18} {p99_ms:>9.3} ms   {:>12.0} txns/s   rss {peak_rss:>8} kB   \
                 backpressure {}",
                point.txns_per_sec, point.backpressure_hits
            );
            series.push(Series {
                name,
                millis: p99_ms,
                txns_per_sec: point.txns_per_sec,
                peak_rss_kb: peak_rss,
                retained_nodes: 0,
            });
        }
        let _ = server.shutdown();
        let _ = std::fs::remove_dir_all(&root);
        // The in-process daemon switched recording on for its own curve;
        // anything measured after this point must be uninstrumented again.
        mtc_obs::set_enabled(false);
    }

    let report = BenchReport {
        schema: 6,
        txns,
        shards: tuning.shards as u64,
        batch: tuning.batch as u64,
        series,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!(
        "wrote {out} (autotuned: {} shards, batch {})",
        report.shards, report.batch
    );

    if !inrun_failures.is_empty() {
        eprintln!("in-run gate regression:");
        for f in &inrun_failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("gate ser/incremental-obs: instrumented ingest within 5% of uninstrumented [ok]");

    let Some(baseline_path) = baseline_path else {
        return;
    };
    let baseline_text = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
    let baseline: BenchReport =
        serde_json::from_str(&baseline_text).expect("baseline parses as a BenchReport");

    let mut failures = Vec::new();
    // Machine scale: how much faster/slower this box runs the batch
    // checkers than the baseline box did — the geometric mean over all
    // three levels, so single-series noise cannot skew the expectation.
    let mut log_scale_sum = 0.0f64;
    let mut refs = 0usize;
    for (tag, _) in per_level {
        let reference = format!("{tag}/batch");
        if let (Some(cur), Some(base)) = (report.series(&reference), baseline.series(&reference)) {
            log_scale_sum += (cur.txns_per_sec / base.txns_per_sec).ln();
            refs += 1;
        } else {
            failures.push(format!("missing reference series {reference}"));
        }
    }
    let scale = if refs > 0 {
        (log_scale_sum / refs as f64).exp()
    } else {
        1.0
    };
    println!("gate machine scale vs baseline: {scale:.3}");
    // The sharded series are only comparable like-for-like: the baseline's
    // sharded numbers were measured at the geometry recorded in its JSON.
    // When this box's autotuned geometry differs (e.g. a multi-core CI
    // runner vs a single-core baseline box), re-measure the sharded
    // checkers at the *baseline's* geometry for gating — deterministic and
    // like-for-like — while the autotuned series above remain the artifact
    // trail of what a caller on this machine actually gets.
    let same_geometry = report.shards == baseline.shards && report.batch == baseline.batch;
    let gate_geom =
        mtc_core::ShardTuning::clamped(baseline.shards as usize, baseline.batch as usize);
    if !same_geometry {
        println!(
            "gate note: autotuned geometry ({}x{}) differs from the baseline's \
             ({}x{}); gating sharded series re-measured at the baseline geometry",
            report.shards, report.batch, baseline.shards, baseline.batch
        );
    }
    let mut sharded_gate_tps: Vec<(String, f64)> = Vec::new();
    for (tag, level) in per_level {
        let name = format!("{tag}/sharded");
        if same_geometry {
            if let Some(s) = report.series(&name) {
                sharded_gate_tps.push((name, s.txns_per_sec));
            }
            continue;
        }
        let millis = measure(&name, || {
            check_streaming_sharded(level, &history, gate_geom.shards, gate_geom.batch).unwrap()
        });
        let tps = txns as f64 / (millis / 1e3);
        println!(
            "{name:<18} {millis:>9.3} ms   {tps:>12.0} txns/s   (baseline geometry {}x{})",
            gate_geom.shards, gate_geom.batch
        );
        sharded_gate_tps.push((name, tps));
    }
    for (tag, _) in per_level {
        for flavour in ["incremental", "incremental-gc", "sharded"] {
            let name = format!("{tag}/{flavour}");
            let cur_tps = if flavour == "sharded" {
                sharded_gate_tps
                    .iter()
                    .find(|(n, _)| *n == name)
                    .map(|&(_, tps)| tps)
            } else {
                report.series(&name).map(|s| s.txns_per_sec)
            };
            let (Some(cur_tps), Some(base)) = (cur_tps, baseline.series(&name)) else {
                failures.push(format!("missing series {name}"));
                continue;
            };
            let expected = base.txns_per_sec * scale;
            let ratio = cur_tps / expected;
            let verdict = if ratio >= MIN_RELATIVE_THROUGHPUT {
                "ok"
            } else {
                failures.push(format!(
                    "{name}: {cur_tps:.0} txns/s is {:.0}% of the machine-scaled baseline \
                     ({expected:.0} txns/s expected)",
                    ratio * 100.0,
                ));
                "REGRESSED"
            };
            println!(
                "gate {name:<18} {:>6.1}% of scaled baseline   [{verdict}]",
                ratio * 100.0
            );
        }
    }
    // Peak-RSS gate: the run's memory high-water mark (`VmHWM` is monotone,
    // so the max over the series is the whole run's footprint) must stay
    // within [`MAX_RSS_GROWTH`] of the baseline's. Skipped when either side
    // recorded 0 (no `/proc` on that platform). The `service/*` series are
    // excluded from the gate on both sides: the in-process daemon carries N
    // tenants' checkers plus the load threads, so its footprint measures
    // the *service* (artifact-only, like its latency), not the checkers
    // this gate protects — and `VmHWM`'s monotony would otherwise leak that
    // footprint into the checker gate forever after.
    let gated_peak = |r: &BenchReport| {
        r.series
            .iter()
            .filter(|s| !s.name.starts_with("service/"))
            .map(|s| s.peak_rss_kb)
            .max()
            .unwrap_or(0)
    };
    let cur_peak = gated_peak(&report);
    let base_peak = gated_peak(&baseline);
    if cur_peak > 0 && base_peak > 0 {
        let ratio = cur_peak as f64 / base_peak as f64;
        let verdict = if ratio <= MAX_RSS_GROWTH {
            "ok"
        } else {
            failures.push(format!(
                "peak_rss_kb: {cur_peak} kB is {:.0}% of the baseline's {base_peak} kB \
                 (limit {:.0}%)",
                ratio * 100.0,
                MAX_RSS_GROWTH * 100.0
            ));
            "REGRESSED"
        };
        println!(
            "gate peak_rss_kb       {:>6.1}% of baseline          [{verdict}]",
            ratio * 100.0
        );
    }
    if !failures.is_empty() {
        eprintln!(
            "streaming throughput regression (> {:.0}% drop):",
            (1.0 - MIN_RELATIVE_THROUGHPUT) * 100.0
        );
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!(
        "gate passed: no streaming series regressed more than {:.0}%",
        (1.0 - MIN_RELATIVE_THROUGHPUT) * 100.0
    );
}
