//! Regenerates Figure 13: bug-detecting trials of MTC vs Elle (list-append and
//! rw-register) as the maximum transaction length varies.
use mtc_runner::experiments::{fig13_effectiveness, EffectivenessSweep};
fn main() {
    let sweep = if mtc_bench::quick_requested() {
        EffectivenessSweep::quick()
    } else {
        EffectivenessSweep::paper()
    };
    mtc_bench::emit(&fig13_effectiveness(&sweep));
}
