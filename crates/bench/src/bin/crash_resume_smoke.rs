//! Crash–resume smoke test, process-kill edition (the CI job).
//!
//! The parent re-spawns this binary as a *recorder child*: the child runs a
//! fault-injected workload under the durable live verifier (write-ahead log
//! plus periodic checkpoints) while a watchdog thread SIGKILLs the process
//! mid-stream — no destructors, no final sync, exactly the crash the store
//! layer exists for. The parent then recovers the directory, resumes
//! verification from the newest intact checkpoint, and asserts the verdict
//! equals a clean from-scratch verification of the same logged stream.
//!
//! Since the store writes *delta* checkpoints between full snapshots, the
//! parent also asserts the kill landed mid-delta-chain (at least one
//! `.mtcckd` file survived), so the recovery being validated is the
//! chain-resolving path, not just the single-full-file one.
//!
//! ```text
//! cargo run --release -p mtc-bench --bin crash_resume_smoke
//! ```
//!
//! Exit code 0 on success; nonzero (with a diagnostic) on any mismatch.

use mtc_core::check_streaming;
use mtc_runner::{record_streaming, resume_verification, RecordOptions};
use mtc_store::recover;
use mtc_workload::{generate_mt_workload, Distribution, MtWorkloadSpec};
use std::process::Command;
use std::time::Duration;

const LEVEL: mtc_core::IsolationLevel = mtc_core::IsolationLevel::SnapshotIsolation;

fn workload_spec() -> MtWorkloadSpec {
    MtWorkloadSpec {
        sessions: 4,
        txns_per_session: 4000,
        num_keys: 8,
        distribution: Distribution::Uniform,
        read_only_fraction: 0.2,
        two_key_fraction: 0.5,
        seed: 41,
    }
}

fn child(dir: &str) -> ! {
    use mtc_dbsim::{ClientOptions, Database, DbConfig, FaultKind, FaultSpec, IsolationMode};
    // The watchdog: SIGKILL ourselves mid-stream. `kill -9` cannot be
    // caught or cleaned up after — the log tail is whatever made it to the
    // OS, which is the point.
    std::thread::spawn(|| {
        std::thread::sleep(Duration::from_millis(500));
        let me = std::process::id().to_string();
        let _ = Command::new("kill").args(["-9", &me]).status();
        // If there is no `kill` binary, die almost as abruptly.
        std::process::abort();
    });
    let spec = workload_spec();
    let workload = generate_mt_workload(&spec);
    // Injected lost updates + latency so the run outlives the watchdog.
    let config = DbConfig::correct(IsolationMode::Snapshot, spec.num_keys)
        .with_latency(Duration::from_micros(300), Duration::from_micros(150))
        .with_faults(
            vec![FaultSpec::new(FaultKind::SkipWriteValidation, 0.01)],
            11,
        );
    let out = record_streaming(
        dir,
        &Database::new(config),
        &workload,
        &ClientOptions::default(),
        LEVEL,
        &RecordOptions {
            // Tight cadence: even a slow child (cold page cache, loaded CI
            // box) writes several checkpoints — and so enters the delta
            // chain — before the watchdog fires.
            checkpoint_every: 16,
            stop_on_violation: false,
            gc: None,
        },
    )
    .expect("recorder must start");
    // Reaching this point means the workload finished before the watchdog
    // fired; the parent still validates recovery of the complete log.
    eprintln!(
        "child: finished before the kill ({} txns checked)",
        out.checked_txns
    );
    std::process::exit(0)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--child") {
        child(args.get(2).expect("--child <dir>"));
    }

    let dir = std::env::temp_dir().join(format!("mtc_crash_resume_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let exe = std::env::current_exe().expect("own path");
    let status = Command::new(&exe)
        .arg("--child")
        .arg(&dir)
        .status()
        .expect("spawn recorder child");
    println!("recorder child exited with {status} (kill expected)");

    // The checkpoint cadence (every 64 txns over a multi-second workload)
    // guarantees several checkpoints before the 500 ms watchdog fires, and
    // the store's rebase interval makes most of them deltas: the kill must
    // land mid-delta-chain for this smoke to exercise chain recovery.
    let count_ext = |ext: &str| {
        std::fs::read_dir(&dir)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .filter(|e| e.file_name().to_string_lossy().ends_with(ext))
                    .count()
            })
            .unwrap_or(0)
    };
    let (fulls, deltas) = (count_ext(".mtcck"), count_ext(".mtcckd"));
    println!("checkpoints on disk: {fulls} full, {deltas} delta");
    if deltas == 0 {
        eprintln!("FAIL: the kill did not land mid-delta-chain (no .mtcckd files)");
        std::process::exit(1);
    }

    let resumed = resume_verification(&dir).expect("store must recover");
    println!(
        "resume: {} logged txns, resumed from {} (checkpoint: {}), torn tail: {}",
        resumed.logged_txns, resumed.resumed_from, resumed.from_checkpoint, resumed.torn_tail
    );
    if resumed.logged_txns == 0 {
        eprintln!("FAIL: the child recorded nothing before dying");
        std::process::exit(1);
    }

    // Reference: verify the very same logged stream from scratch.
    let recovery = recover(&dir).expect("store must recover");
    let clean = check_streaming(LEVEL, &recovery.to_history());
    let resumed_verdict = &resumed.verdict;
    let matches = match (&clean, resumed_verdict) {
        (Ok(a), Ok(b)) => a == b,
        (Err(a), Err(b)) => format!("{a}") == format!("{b}"),
        _ => false,
    };
    if !matches {
        eprintln!("FAIL: resumed verdict diverges from the clean run");
        eprintln!("  clean:   {clean:?}");
        eprintln!("  resumed: {resumed_verdict:?}");
        std::process::exit(1);
    }
    println!("verdicts match: {resumed_verdict:?}");
    let _ = std::fs::remove_dir_all(&dir);
    println!("crash-resume smoke PASSED");
}
