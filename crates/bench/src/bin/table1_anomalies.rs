//! Regenerates Table I / Figure 5: the 14 anomalies expressed as MT
//! histories and the verdict of each MTC verifier on them.
fn main() {
    let table = mtc_runner::experiments::table1_anomalies();
    mtc_bench::emit(&[table]);
}
