//! Regenerates Figure 14: end-to-end checking time (generation +
//! verification) of MTC vs Elle across transaction lengths.
use mtc_runner::experiments::{fig14_elle_end_to_end, EffectivenessSweep};
fn main() {
    let sweep = if mtc_bench::quick_requested() {
        EffectivenessSweep::quick()
    } else {
        EffectivenessSweep::paper()
    };
    mtc_bench::emit(&fig14_elle_end_to_end(&sweep));
}
