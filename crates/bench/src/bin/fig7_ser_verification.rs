//! Regenerates Figure 7: SER verification time, MTC-SER vs Cobra, across the
//! object-access distribution, #objects, #sessions and #txns sweeps.
use mtc_runner::experiments::{fig7_ser_verification, VerificationSweep};
fn main() {
    let sweep = if mtc_bench::quick_requested() {
        VerificationSweep::quick()
    } else {
        VerificationSweep::paper()
    };
    mtc_bench::emit(&fig7_ser_verification(&sweep));
}
