//! Regenerates Figure 10: end-to-end SER checking time and memory,
//! MTC (MT workloads) vs Cobra (GT workloads).
use mtc_runner::experiments::{fig10_end_to_end_ser, EndToEndSweep};
fn main() {
    let sweep = if mtc_bench::quick_requested() {
        EndToEndSweep::quick()
    } else {
        EndToEndSweep::paper()
    };
    mtc_bench::emit(&fig10_end_to_end_ser(&sweep));
}
