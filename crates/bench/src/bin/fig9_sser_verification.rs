//! Regenerates Figure 9: SSER/LIN verification on synthetic LWT histories,
//! MTC-SSER (VL-LWT) vs a Porcupine-style checker.
use mtc_runner::experiments::{fig9_sser_verification, SserSweep};
fn main() {
    let sweep = if mtc_bench::quick_requested() {
        SserSweep::quick()
    } else {
        SserSweep::paper()
    };
    mtc_bench::emit(&fig9_sser_verification(&sweep));
}
