//! The backend dimension of the experiment matrix: runs the same MT
//! workload against every in-tree backend (OCC simulator at three modes,
//! strict-2PL wait-die, weak MVCC at RC and RU — all fault-free) and prints
//! per-backend promises, verdicts, abort rates and timings.
use mtc_runner::experiments as e;
fn main() {
    let quick = mtc_bench::quick_requested();
    let sweep = if quick {
        e::BackendSweep::quick()
    } else {
        e::BackendSweep::paper()
    };
    mtc_bench::emit(&[e::backend_matrix(&sweep)]);
}
