//! Regenerates Table II / Figures 12 and 18: rediscovery of the six injected
//! isolation bugs, with counterexample position and stage timings.
use mtc_runner::experiments::{table2_bug_rediscovery, BugSweep};
fn main() {
    let sweep = if mtc_bench::quick_requested() {
        BugSweep::quick()
    } else {
        BugSweep::paper()
    };
    mtc_bench::emit(&[table2_bug_rediscovery(&sweep)]);
}
