//! Regenerates Figure 8: SI verification time, MTC-SI vs PolySI.
use mtc_runner::experiments::{fig8_si_verification, VerificationSweep};
fn main() {
    let sweep = if mtc_bench::quick_requested() {
        VerificationSweep::quick()
    } else {
        VerificationSweep::paper()
    };
    mtc_bench::emit(&fig8_si_verification(&sweep));
}
