//! Regenerates Figure 11: abort rates of GT vs MT workloads under SER and SI.
use mtc_runner::experiments::{fig11_abort_rates, AbortRateSweep};
fn main() {
    let sweep = if mtc_bench::quick_requested() {
        AbortRateSweep::quick()
    } else {
        AbortRateSweep::paper()
    };
    mtc_bench::emit(&fig11_abort_rates(&sweep));
}
