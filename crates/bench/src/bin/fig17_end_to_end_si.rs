//! Regenerates Figure 17 (Appendix D): end-to-end SI checking time and
//! memory, MTC (MT workloads) vs PolySI (GT workloads).
use mtc_runner::experiments::{fig17_end_to_end_si, EndToEndSweep};
fn main() {
    let sweep = if mtc_bench::quick_requested() {
        EndToEndSweep::quick()
    } else {
        EndToEndSweep::paper()
    };
    mtc_bench::emit(&fig17_end_to_end_si(&sweep));
}
