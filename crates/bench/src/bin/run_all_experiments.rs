//! Runs every table and figure sweep in sequence (pass `--quick` for a smoke
//! run) and writes all CSV series under `target/experiments/`.
use mtc_runner::experiments as e;
fn main() {
    let quick = mtc_bench::quick_requested();
    println!("# MTC reproduction — running all experiments (quick = {quick})\n");
    mtc_bench::emit(&[e::table1_anomalies()]);
    let v = if quick {
        e::VerificationSweep::quick()
    } else {
        e::VerificationSweep::paper()
    };
    mtc_bench::emit(&e::fig7_ser_verification(&v));
    mtc_bench::emit(&e::fig8_si_verification(&v));
    let s = if quick {
        e::SserSweep::quick()
    } else {
        e::SserSweep::paper()
    };
    mtc_bench::emit(&e::fig9_sser_verification(&s));
    let e2e = if quick {
        e::EndToEndSweep::quick()
    } else {
        e::EndToEndSweep::paper()
    };
    mtc_bench::emit(&e::fig10_end_to_end_ser(&e2e));
    let a = if quick {
        e::AbortRateSweep::quick()
    } else {
        e::AbortRateSweep::paper()
    };
    mtc_bench::emit(&e::fig11_abort_rates(&a));
    let b = if quick {
        e::BugSweep::quick()
    } else {
        e::BugSweep::paper()
    };
    mtc_bench::emit(&[e::table2_bug_rediscovery(&b)]);
    let bm = if quick {
        e::BackendSweep::quick()
    } else {
        e::BackendSweep::paper()
    };
    mtc_bench::emit(&[e::backend_matrix(&bm)]);
    let eff = if quick {
        e::EffectivenessSweep::quick()
    } else {
        e::EffectivenessSweep::paper()
    };
    mtc_bench::emit(&e::fig13_effectiveness(&eff));
    mtc_bench::emit(&e::fig14_elle_end_to_end(&eff));
    mtc_bench::emit(&e::fig17_end_to_end_si(&e2e));
    println!("done.");
}
