//! Load generator and acceptance smoke for the verification daemon.
//!
//! Two modes:
//!
//! * **Curve** (default): drive `--tenants 1,2,4,8` concurrent tenants
//!   against a daemon (an external one via `--addr`, else a freshly
//!   spawned in-process one) and record the scaling curve — sustained
//!   verified txns/s and p99 ingest latency per tenant count — as JSON
//!   (`--out PATH`, stdout by default).
//!
//! * **Smoke** (`--smoke`): the CI acceptance run. Spawns the
//!   `mtc_service_server` binary as a child, drives 8 concurrent tenants
//!   to completion demanding zero event loss (backpressure may refuse,
//!   admitted events must all be checked), then SIGKILLs a second daemon
//!   mid-ingest and proves every tenant resumes from its WAL checkpoint
//!   to a verdict bit-identical to a clean replay of the same log —
//!   locally via `mtc_store::recover`, and end-to-end by restarting the
//!   daemon on the same root, re-sending the unacknowledged suffix and
//!   closing every tenant clean.
//!
//! Exit code 0 on success; nonzero with a diagnostic otherwise.

use mtc_core::{check_streaming, IncrementalChecker, IsolationLevel};
use mtc_service::loadgen::{drive, synthetic_events, LoadSpec};
use mtc_service::{ServiceClient, ServiceConfig, ServiceServer};
use serde::Serialize;
use std::io::BufRead;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// One emitted scaling point.
#[derive(Serialize)]
struct CurvePoint {
    tenants: usize,
    total_txns: u64,
    wall_ms: f64,
    txns_per_sec: f64,
    p99_ingest_ms: f64,
    backpressure_hits: u64,
}

/// The emitted document.
#[derive(Serialize)]
struct CurveReport {
    schema: u32,
    sessions: u32,
    txns_per_session: u32,
    points: Vec<CurvePoint>,
}

fn fail(msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    std::process::exit(1)
}

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mtc_service_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Spawns the daemon binary (a sibling of this executable) rooted at
/// `root` and scrapes its announced address.
fn spawn_daemon(root: &Path, extra: &[&str]) -> (Child, SocketAddr) {
    let me = std::env::current_exe().expect("own path");
    let server = me
        .parent()
        .expect("executable has a directory")
        .join("mtc_service_server");
    let mut child = Command::new(&server)
        .arg("--root")
        .arg(root)
        .args(extra)
        .stdout(Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| fail(&format!("cannot spawn {}: {e}", server.display())));
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut line)
        .expect("daemon announces its address");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| fail(&format!("unexpected announcement: {line:?}")))
        .parse()
        .expect("announced address parses");
    (child, addr)
}

fn sigkill(child: &mut Child) {
    let pid = child.id().to_string();
    let _ = Command::new("kill").args(["-9", &pid]).status();
    let _ = child.wait();
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let tenant_counts: Vec<usize> = flag("--tenants")
        .unwrap_or_else(|| "1,2,4,8".to_string())
        .split(',')
        .map(|t| t.trim().parse().expect("--tenants takes a CSV of counts"))
        .collect();
    let txns_per_session: u32 = flag("--txns")
        .map(|v| v.parse().expect("--txns takes a number"))
        .unwrap_or(400);
    let sessions: u32 = flag("--sessions")
        .map(|v| v.parse().expect("--sessions takes a number"))
        .unwrap_or(4);
    let out = flag("--out");

    // An external daemon, or a private in-process one.
    let external: Option<SocketAddr> = flag("--addr").map(|a| a.parse().expect("--addr parses"));
    let root = temp_root("curve");
    let server = if external.is_none() {
        Some(
            ServiceServer::spawn(ServiceConfig::new(&root))
                .unwrap_or_else(|e| fail(&format!("cannot spawn in-process daemon: {e}"))),
        )
    } else {
        None
    };
    let addr = external.unwrap_or_else(|| server.as_ref().expect("spawned above").addr());

    let mut points = Vec::new();
    for (round, &tenants) in tenant_counts.iter().enumerate() {
        let spec = LoadSpec {
            tenants,
            sessions,
            txns_per_session,
            ..LoadSpec::default()
        };
        let point = drive(addr, &spec, &format!("curve{round}"))
            .unwrap_or_else(|e| fail(&format!("load run with {tenants} tenants: {e}")));
        eprintln!(
            "tenants {tenants:>3}: {:>10.0} txns/s sustained, p99 ingest {:>8.3} ms, \
             {} backpressure hits",
            point.txns_per_sec,
            point.p99_ingest_micros as f64 / 1e3,
            point.backpressure_hits
        );
        // In-process daemon: the load generator mirrored every measured
        // ingest latency into the shared registry, so the wire-scraped
        // histogram p99 must agree with the exact sorted-vec p99 (the
        // log-linear buckets quantize at ≤1.6%; demand 10%).
        if external.is_none() {
            let snapshot = ServiceClient::connect(addr)
                .and_then(|mut c| c.metrics())
                .unwrap_or_else(|e| fail(&format!("metrics scrape: {e}")));
            let hist = snapshot
                .histogram(&format!("service.ingest_micros.curve{round}"))
                .unwrap_or_else(|| fail("scraped snapshot is missing the run histogram"));
            let exact = point.p99_ingest_micros.max(1) as f64;
            let deviation = (hist.p99 as f64 - exact).abs() / exact;
            if deviation > 0.10 {
                fail(&format!(
                    "scraped ingest p99 {} µs deviates {:.1}% from measured {} µs",
                    hist.p99,
                    deviation * 1e2,
                    point.p99_ingest_micros
                ));
            }
            eprintln!(
                "             scraped p99 {:>8.3} ms agrees with measured ({:.1}% off)",
                hist.p99 as f64 / 1e3,
                deviation * 1e2
            );
        }
        points.push(CurvePoint {
            tenants: point.tenants,
            total_txns: point.total_txns,
            wall_ms: point.wall.as_secs_f64() * 1e3,
            txns_per_sec: point.txns_per_sec,
            p99_ingest_ms: point.p99_ingest_micros as f64 / 1e3,
            backpressure_hits: point.backpressure_hits,
        });
    }
    if let Some(server) = server {
        let _ = server.shutdown();
        let _ = std::fs::remove_dir_all(&root);
    }

    let report = CurveReport {
        schema: 1,
        sessions,
        txns_per_session,
        points,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    match out {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
}

/// The acceptance smoke: zero-loss multi-tenant load, then kill/resume.
fn smoke() {
    const LEVEL: IsolationLevel = IsolationLevel::Serializability;

    // ---- Phase A: 8 concurrent tenants, zero loss under backpressure ----
    let root_a = temp_root("smoke_load");
    let (mut daemon, addr) = spawn_daemon(&root_a, &["--queue-cap", "256"]);
    let spec = LoadSpec {
        tenants: 8,
        sessions: 4,
        txns_per_session: 200,
        level: LEVEL,
        ..LoadSpec::default()
    };
    // drive() fails on any lost event or spurious violation.
    let point = drive(addr, &spec, "smoke")
        .unwrap_or_else(|e| fail(&format!("phase A (8-tenant load): {e}")));
    println!(
        "phase A ok: 8 tenants, {} events verified, {:.0} txns/s sustained, \
         p99 ingest {:.3} ms, {} backpressure hits, zero loss",
        point.total_txns,
        point.txns_per_sec,
        point.p99_ingest_micros as f64 / 1e3,
        point.backpressure_hits
    );
    sigkill(&mut daemon);
    let _ = std::fs::remove_dir_all(&root_a);

    // ---- Phase B: SIGKILL mid-ingest, checkpoint resume, bit-identical ----
    let root = temp_root("smoke_kill");
    let (mut daemon, addr) = spawn_daemon(&root, &["--checkpoint-every", "64"]);
    let kr_spec = LoadSpec {
        tenants: 4,
        sessions: 4,
        txns_per_session: 300,
        level: LEVEL,
        ..LoadSpec::default()
    };
    let total = kr_spec.events_per_tenant() as usize;
    let half = total / 2;
    let streams: Vec<_> = (0..kr_spec.tenants)
        .map(|t| synthetic_events(&kr_spec, t))
        .collect();

    let mut client = ServiceClient::connect(addr).expect("connect");
    let mut ids = Vec::new();
    for (t, events) in streams.iter().enumerate() {
        let open = client
            .open_tenant(&format!("kr-{t}"), LEVEL, kr_spec.num_keys)
            .expect("open tenant");
        for chunk in events[..half].chunks(kr_spec.batch) {
            client
                .ingest_all(open.tenant, chunk.to_vec(), Duration::from_micros(200))
                .expect("ingest first half");
        }
        ids.push(open.tenant);
    }
    // Wait until every tenant has written at least one checkpoint, so the
    // resume below actually starts from a snapshot rather than log replay.
    for &id in &ids {
        loop {
            let status = client.status(id).expect("status");
            if status.checkpoints >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    sigkill(&mut daemon);
    println!("phase B: daemon SIGKILLed mid-ingest ({half} of {total} events sent per tenant)");

    // Local proof: for every tenant WAL, resuming from the newest
    // checkpoint plus tail replay reaches a verdict *bit-identical* to
    // replaying the whole log from scratch.
    let mut logged = Vec::new();
    for t in 0..kr_spec.tenants {
        let dir = root.join(format!("kr-{t}"));
        let recovery = mtc_store::recover(&dir)
            .unwrap_or_else(|e| fail(&format!("tenant kr-{t}: recover: {e}")));
        let snapshot = recovery
            .snapshot
            .clone()
            .unwrap_or_else(|| fail(&format!("tenant kr-{t}: no checkpoint despite waiting")));
        let mut resumed = IncrementalChecker::resume(snapshot);
        for txn in recovery.tail() {
            let _ = resumed.push(txn.clone());
        }
        let resumed_verdict = resumed.finish().expect("resumed stream checks");
        let scratch_verdict =
            check_streaming(LEVEL, &recovery.to_history()).expect("scratch stream checks");
        if resumed_verdict != scratch_verdict {
            fail(&format!(
                "tenant kr-{t}: checkpoint-resumed verdict {resumed_verdict:?} differs from \
                 clean replay {scratch_verdict:?}"
            ));
        }
        if recovery.txns.len() > half {
            fail(&format!(
                "tenant kr-{t}: log holds {} events but only {half} were ever sent",
                recovery.txns.len()
            ));
        }
        println!(
            "  kr-{t}: {} events logged (resume from {}), resumed verdict == clean replay",
            recovery.txns.len(),
            recovery.resume_from
        );
        logged.push(recovery.txns.len());
    }

    // End-to-end proof: restart the daemon on the same root; every tenant
    // resumes from its checkpoint; the client re-sends the unacknowledged
    // suffix and the stream closes clean with nothing lost and nothing
    // double-counted.
    let (mut daemon, addr) = spawn_daemon(&root, &["--checkpoint-every", "64"]);
    let mut client = ServiceClient::connect(addr).expect("reconnect");
    let mut any_from_checkpoint = false;
    for (t, events) in streams.iter().enumerate() {
        let open = client
            .open_tenant(&format!("kr-{t}"), LEVEL, kr_spec.num_keys)
            .expect("reopen tenant");
        if open.resumed_txns != logged[t] as u64 {
            fail(&format!(
                "tenant kr-{t}: daemon resumed {} events, local recovery saw {}",
                open.resumed_txns, logged[t]
            ));
        }
        any_from_checkpoint |= open.from_checkpoint;
        // The daemon acknowledged (and logged) exactly `resumed_txns`
        // events; everything after that is the client's to re-send.
        for chunk in events[open.resumed_txns as usize..].chunks(kr_spec.batch) {
            client
                .ingest_all(open.tenant, chunk.to_vec(), Duration::from_micros(200))
                .expect("ingest suffix");
        }
        let summary = client.close_tenant(open.tenant).expect("close tenant");
        if summary.checked != total as u64 {
            fail(&format!(
                "tenant kr-{t}: {} checked after resume, expected {total}",
                summary.checked
            ));
        }
        if summary.violated {
            fail(&format!(
                "tenant kr-{t}: clean stream reported violated after resume (first at {:?})",
                summary.first_violation_at
            ));
        }
        // Final local check: the reunited log replays clean from scratch.
        let recovery =
            mtc_store::recover(root.join(format!("kr-{t}"))).expect("post-close recover");
        let verdict = check_streaming(LEVEL, &recovery.to_history()).expect("final replay");
        if !verdict.is_satisfied() || recovery.txns.len() != total {
            fail(&format!(
                "tenant kr-{t}: final log has {} events (expected {total}), verdict {verdict:?}",
                recovery.txns.len()
            ));
        }
        println!(
            "  kr-{t}: resumed at {}, closed clean with {total} checked",
            logged[t]
        );
    }
    if !any_from_checkpoint {
        fail("no tenant resumed from a checkpoint — the smoke proves nothing");
    }
    sigkill(&mut daemon);
    let _ = std::fs::remove_dir_all(&root);
    println!("smoke passed: zero loss under load; kill/resume verdicts bit-identical");
}
