//! The verification daemon: tenant streams over framed TCP, until killed.
//!
//! ```text
//! mtc_service_server --root DIR [--addr 127.0.0.1:0] [--queue-cap N]
//!                    [--checkpoint-every N] [--drain-workers N]
//! ```
//!
//! Prints `listening on <addr>` on stdout once bound (the line the smoke
//! harnesses scrape), then serves until the process dies. There is no
//! graceful-shutdown path on purpose: crash-resume from the per-tenant
//! WALs *is* the shutdown story, and the smoke tests SIGKILL this binary
//! to prove it.

use mtc_service::{serve, ServiceConfig, ServiceCore};
use std::io::Write;
use std::net::TcpListener;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: mtc_service_server --root DIR [--addr HOST:PORT] [--queue-cap N] \
         [--checkpoint-every N] [--drain-workers N]"
    );
    std::process::exit(2)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut root: Option<String> = None;
    let mut addr = "127.0.0.1:0".to_string();
    let mut queue_cap: Option<usize> = None;
    let mut checkpoint_every: Option<usize> = None;
    let mut drain_workers: Option<usize> = None;
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--root" => root = Some(value()),
            "--addr" => addr = value(),
            "--queue-cap" => queue_cap = value().parse().ok(),
            "--checkpoint-every" => checkpoint_every = value().parse().ok(),
            "--drain-workers" => drain_workers = value().parse().ok(),
            _ => usage(),
        }
    }
    let Some(root) = root else { usage() };

    let mut config = ServiceConfig::new(root);
    if let Some(cap) = queue_cap {
        config = config.queue_cap(cap);
    }
    if let Some(every) = checkpoint_every {
        config = config.checkpoint_every(every);
    }
    if let Some(workers) = drain_workers {
        config = config.drain_workers(workers);
    }

    let core = Arc::new(ServiceCore::new(config).unwrap_or_else(|e| {
        eprintln!("cannot initialize service root: {e}");
        std::process::exit(1)
    }));
    let listener = TcpListener::bind(&addr).unwrap_or_else(|e| {
        eprintln!("cannot bind {addr}: {e}");
        std::process::exit(1)
    });
    println!(
        "listening on {}",
        listener.local_addr().expect("bound socket has an address")
    );
    let _ = std::io::stdout().flush();

    let drain_core = Arc::clone(&core);
    std::thread::spawn(move || drain_core.run_drain());

    let shutdown = AtomicBool::new(false);
    if let Err(e) = serve(core.as_ref(), listener, &shutdown) {
        eprintln!("accept loop failed: {e}");
        std::process::exit(1)
    }
}
