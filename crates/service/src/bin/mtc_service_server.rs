//! The verification daemon: tenant streams over framed TCP, until killed.
//!
//! ```text
//! mtc_service_server --root DIR [--addr 127.0.0.1:0] [--queue-cap N]
//!                    [--checkpoint-every N] [--drain-workers N]
//! mtc_service_server --metrics-json --addr HOST:PORT
//! ```
//!
//! Prints `listening on <addr>` on stdout once bound (the line the smoke
//! harnesses scrape), then serves until the process dies. There is no
//! graceful-shutdown path on purpose: crash-resume from the per-tenant
//! WALs *is* the shutdown story, and the smoke tests SIGKILL this binary
//! to prove it.
//!
//! Observability is on: metric recording is enabled, structured one-line
//! JSON events (startup, connection-accepted, tenant-open/close,
//! violation) go to stderr, and the daemon answers
//! `Request::MetricsSnapshot` on its ordinary port. `--metrics-json`
//! dials a *running* daemon at `--addr`, fetches one snapshot, prints it
//! as JSON on stdout and exits.

use mtc_obs::events::JsonValue;
use mtc_service::{serve, ServiceClient, ServiceConfig, ServiceCore};
use serde::Serialize as _;
use std::io::Write;
use std::net::{TcpListener, ToSocketAddrs};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: mtc_service_server --root DIR [--addr HOST:PORT] [--queue-cap N] \
         [--checkpoint-every N] [--drain-workers N]\n\
         \u{20}      mtc_service_server --metrics-json --addr HOST:PORT"
    );
    std::process::exit(2)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut root: Option<String> = None;
    let mut addr = "127.0.0.1:0".to_string();
    let mut queue_cap: Option<usize> = None;
    let mut checkpoint_every: Option<usize> = None;
    let mut drain_workers: Option<usize> = None;
    let mut metrics_json = false;
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--root" => root = Some(value()),
            "--addr" => addr = value(),
            "--queue-cap" => queue_cap = value().parse().ok(),
            "--checkpoint-every" => checkpoint_every = value().parse().ok(),
            "--drain-workers" => drain_workers = value().parse().ok(),
            "--metrics-json" => metrics_json = true,
            _ => usage(),
        }
    }

    if metrics_json {
        match scrape_metrics(&addr) {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("cannot scrape {addr}: {e}");
                std::process::exit(1)
            }
        }
        return;
    }

    let Some(root) = root else { usage() };

    let mut config = ServiceConfig::new(root);
    if let Some(cap) = queue_cap {
        config = config.queue_cap(cap);
    }
    if let Some(every) = checkpoint_every {
        config = config.checkpoint_every(every);
    }
    if let Some(workers) = drain_workers {
        config = config.drain_workers(workers);
    }

    let core = Arc::new(ServiceCore::new(config).unwrap_or_else(|e| {
        eprintln!("cannot initialize service root: {e}");
        std::process::exit(1)
    }));
    let listener = TcpListener::bind(&addr).unwrap_or_else(|e| {
        eprintln!("cannot bind {addr}: {e}");
        std::process::exit(1)
    });
    let local = listener.local_addr().expect("bound socket has an address");
    println!("listening on {local}");
    let _ = std::io::stdout().flush();

    mtc_obs::set_enabled(true);
    mtc_obs::events::log_to_stderr();
    mtc_obs::events::emit(
        "startup",
        &[
            ("role", JsonValue::Str("service".to_string())),
            ("addr", JsonValue::Str(local.to_string())),
            (
                "root",
                JsonValue::Str(core.config().root.display().to_string()),
            ),
            ("queue_cap", JsonValue::U64(core.config().queue_cap as u64)),
            (
                "checkpoint_every",
                JsonValue::U64(core.config().checkpoint_every as u64),
            ),
            (
                "drain_workers",
                JsonValue::U64(core.config().drain_workers as u64),
            ),
        ],
    );

    let drain_core = Arc::clone(&core);
    std::thread::spawn(move || drain_core.run_drain());

    let shutdown = AtomicBool::new(false);
    if let Err(e) = serve(core.as_ref(), listener, &shutdown) {
        eprintln!("accept loop failed: {e}");
        std::process::exit(1)
    }
}

/// Dials a running daemon, fetches one `MetricsSnapshot`, and renders the
/// reply as one JSON document.
fn scrape_metrics(addr: &str) -> std::io::Result<String> {
    let target = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::other(format!("{addr} resolves to no address")))?;
    let snapshot = ServiceClient::connect(target)?.metrics()?;
    let mut out = String::new();
    snapshot.to_json_value().render(&mut out);
    Ok(out)
}
