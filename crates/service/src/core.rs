//! The protocol-independent heart of the daemon: the tenant registry, the
//! per-tenant admission queue / checker / WAL assembly, and the drain loop
//! that multiplexes ingestion over the `futures_lite` executor.
//!
//! A [`Tenant`] is three pieces glued by locks chosen for their contention
//! profile:
//!
//! * a **bounded admission queue** (`Mutex<VecDeque<IngestEvent>>`):
//!   connection handlers push whole `Ingest` batches all-or-nothing, or
//!   refuse with `Backpressure` when the batch would overflow — admission
//!   never blocks an ingest RPC on verification;
//! * a **single-flight drain lock** held across pop-and-record, so any
//!   number of drain workers preserve admission order per tenant (two
//!   workers that popped consecutive batches could otherwise record them
//!   in either order, which would corrupt session order and the verdict);
//! * the tenant's [`LiveVerifier`], built *exclusively* through
//!   [`LiveVerifier::builder`]: settled-prefix GC on, write-ahead
//!   [`MtcStore`] WAL under `root/<tenant>/` with periodic checkpoints, and
//!   — when the directory already holds a log — resumed from the newest
//!   checkpoint plus tail replay.
//!
//! [`ServiceCore::run_drain`] runs the drain as a fixed set of cooperative
//! futures on [`futures_lite::executor::run_all`]: each worker sweeps the
//! registry round-robin (offset by its index so workers spread over
//! tenants), drains one bounded batch per tenant, and yields between
//! tenants.

use mtc_core::{GcPolicy, IncrementalChecker, IsolationLevel};
use mtc_dbsim::{IngestEvent, LiveVerifier};
use mtc_net::proto::TenantStatus;
use mtc_store::{MtcStore, StreamMeta};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Tuning of a [`ServiceCore`]; every knob has a serviceable default.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Root directory of the per-tenant WAL stores (`root/<tenant>/`).
    pub root: PathBuf,
    /// Per-tenant admission queue capacity, in events. An `Ingest` batch
    /// that would push the queue past this is refused whole with a
    /// `Backpressure` reply — events are never partially admitted and never
    /// dropped after admission.
    pub queue_cap: usize,
    /// A checkpoint (full checker snapshot) is written to the tenant's WAL
    /// every this many recorded events.
    pub checkpoint_every: usize,
    /// Settled-prefix GC policy applied to every tenant's checker, or
    /// `None` to retain the full stream.
    pub gc: Option<GcPolicy>,
    /// Worker futures (and executor threads) carrying the drain loop.
    pub drain_workers: usize,
    /// Events a drain worker feeds a tenant's checker per sweep — the unit
    /// of fairness across tenants.
    pub drain_batch: usize,
}

impl ServiceConfig {
    /// Defaults rooted at `root`: 1024-event queues, checkpoint every 256
    /// events, default GC policy, 2 drain workers, 128-event drain batches.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        ServiceConfig {
            root: root.into(),
            queue_cap: 1024,
            checkpoint_every: 256,
            gc: Some(GcPolicy::default()),
            drain_workers: 2,
            drain_batch: 128,
        }
    }

    /// Replaces the admission queue capacity.
    pub fn queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap.max(1);
        self
    }

    /// Replaces the checkpoint cadence.
    pub fn checkpoint_every(mut self, every: usize) -> Self {
        self.checkpoint_every = every.max(1);
        self
    }

    /// Replaces (or disables, with `None`) the per-tenant GC policy.
    pub fn gc(mut self, gc: Option<GcPolicy>) -> Self {
        self.gc = gc;
        self
    }

    /// Replaces the drain worker count.
    pub fn drain_workers(mut self, workers: usize) -> Self {
        self.drain_workers = workers.max(1);
        self
    }
}

/// Admission verdict of one `Ingest` batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// The whole batch was queued.
    Accepted(u64),
    /// The batch would overflow the queue; nothing was admitted. The
    /// client backs off and retries the same batch.
    Backpressure {
        /// Events currently queued.
        queue_depth: u64,
        /// The queue capacity.
        queue_cap: u64,
    },
}

/// What [`ServiceCore::close_tenant`] distills out of
/// [`mtc_dbsim::LiveOutcome`] for the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantSummary {
    /// Events the checker consumed over the tenant's lifetime (including
    /// any resumed prefix).
    pub checked: u64,
    /// True iff the stream violated its isolation level.
    pub violated: bool,
    /// Stream index of the first violating transaction, if any.
    pub first_violation_at: Option<u64>,
}

/// Result of opening (or re-attaching to) a tenant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantOpen {
    /// The tenant handle subsequent `Ingest`/`TenantStatus`/`CloseTenant`
    /// requests use.
    pub tenant: u64,
    /// Logged transactions already consumed when the stream resumed (0 for
    /// a fresh stream).
    pub resumed_txns: u64,
    /// True iff the resume restarted from a checkpoint snapshot rather
    /// than replaying the log from scratch.
    pub from_checkpoint: bool,
}

struct TenantQueue {
    queue: VecDeque<IngestEvent>,
    closing: bool,
}

/// One named verification stream: queue, drain lock, verifier, counters.
pub struct Tenant {
    name: String,
    level: IsolationLevel,
    num_keys: u64,
    queue_cap: usize,
    checkpoint_every: usize,
    queue: Mutex<TenantQueue>,
    /// Single-flight drain: held across pop-and-record so concurrent drain
    /// workers cannot reorder a tenant's events.
    drain: Mutex<()>,
    verifier: Mutex<Option<LiveVerifier>>,
    /// Drain freeze — the deterministic-backpressure knob for tests and
    /// operations. Admission stays open until the queue fills.
    paused: AtomicBool,
    ingested: AtomicU64,
    drained: AtomicU64,
    backpressured: AtomicU64,
    /// Admission latency histogram, `service.tenant.<name>.admit_micros` —
    /// resolved once at open so the ingest path never touches the registry.
    admit_hist: &'static mtc_obs::Histogram,
    /// Latch: the tenant's violation has been written to the event log.
    violation_logged: AtomicBool,
}

impl Tenant {
    /// All-or-nothing admission of one batch.
    fn ingest(&self, events: Vec<IngestEvent>) -> Result<Admission, String> {
        let timer = mtc_obs::enabled().then(std::time::Instant::now);
        let mut q = self.queue.lock();
        if q.closing {
            return Err(format!("tenant \"{}\" is closing", self.name));
        }
        if q.queue.len() + events.len() > self.queue_cap {
            self.backpressured.fetch_add(1, Ordering::Relaxed);
            mtc_obs::counter!("service.backpressure_rejections").inc();
            return Ok(Admission::Backpressure {
                queue_depth: q.queue.len() as u64,
                queue_cap: self.queue_cap as u64,
            });
        }
        let n = events.len() as u64;
        q.queue.extend(events);
        self.ingested.fetch_add(n, Ordering::Relaxed);
        mtc_obs::gauge!("service.queue_depth").add(n);
        if let Some(t0) = timer {
            self.admit_hist.record(t0.elapsed().as_micros() as u64);
        }
        Ok(Admission::Accepted(n))
    }

    /// Feeds at most `cap` queued events to the checker, in admission
    /// order. Returns how many were recorded; 0 when the queue is empty,
    /// the tenant is paused, or another worker is already draining it.
    fn drain_batch(&self, cap: usize) -> usize {
        let Some(_flight) = self.drain.try_lock() else {
            // Another worker already holds this tenant's drain — the sweep
            // moves on, but the contention is worth counting.
            mtc_obs::counter!("service.drain_stalls").inc();
            return 0;
        };
        if self.paused.load(Ordering::Acquire) {
            return 0;
        }
        let batch: Vec<IngestEvent> = {
            let mut q = self.queue.lock();
            let n = q.queue.len().min(cap);
            q.queue.drain(..n).collect()
        };
        if batch.is_empty() {
            return 0;
        }
        let n = batch.len();
        let guard = self.verifier.lock();
        if let Some(v) = guard.as_ref() {
            for event in batch {
                v.record_event(event);
            }
            self.maybe_log_violation(v);
        }
        drop(guard);
        self.drained.fetch_add(n as u64, Ordering::Relaxed);
        mtc_obs::gauge!("service.queue_depth").sub(n as u64);
        n
    }

    /// Writes the structured "violation" event-log line the first time this
    /// tenant's verifier latches: tenant name, stream index of the offender,
    /// wall-clock detection latency, and the certificate as JSON.
    fn maybe_log_violation(&self, v: &LiveVerifier) {
        if !v.is_violated() || self.violation_logged.swap(true, Ordering::AcqRel) {
            return;
        }
        use mtc_obs::events::JsonValue;
        use serde::Serialize as _;
        // `violation()` flushes the hand-off buffer and latches the
        // metadata, so take the certificate *before* reading it.
        let certificate = v
            .violation()
            .map(|c| c.to_json_value())
            .unwrap_or(JsonValue::Null);
        let latched = v.first_violation();
        mtc_obs::events::emit(
            "violation",
            &[
                ("tenant", JsonValue::Str(self.name.clone())),
                (
                    "first_violation_at",
                    match latched.as_ref().map(|l| l.at_txn as u64) {
                        Some(at) => JsonValue::U64(at),
                        None => JsonValue::Null,
                    },
                ),
                (
                    "detection_micros",
                    match latched.as_ref().map(|l| l.elapsed.as_micros() as u64) {
                        Some(us) => JsonValue::U64(us),
                        None => JsonValue::Null,
                    },
                ),
                ("certificate", certificate),
            ],
        );
    }

    /// Seals the tenant: refuses further admission, drains the queue to
    /// empty (unpausing if needed), then finishes the verifier.
    fn close(&self) -> Result<TenantSummary, String> {
        {
            let mut q = self.queue.lock();
            if q.closing {
                return Err(format!("tenant \"{}\" is already closing", self.name));
            }
            q.closing = true;
        }
        self.paused.store(false, Ordering::Release);
        // Waits out any in-flight drain batch, then keeps workers off while
        // we drain the remainder ourselves (close must not depend on the
        // drain loop even running).
        let _flight = self.drain.lock();
        loop {
            let batch: Vec<IngestEvent> = {
                let mut q = self.queue.lock();
                let n = q.queue.len();
                q.queue.drain(..n).collect()
            };
            if batch.is_empty() {
                break;
            }
            let n = batch.len() as u64;
            let guard = self.verifier.lock();
            let Some(v) = guard.as_ref() else {
                return Err(format!("tenant \"{}\" is already closed", self.name));
            };
            for event in batch {
                v.record_event(event);
            }
            self.maybe_log_violation(v);
            drop(guard);
            self.drained.fetch_add(n, Ordering::Relaxed);
            mtc_obs::gauge!("service.queue_depth").sub(n);
        }
        let verifier = self
            .verifier
            .lock()
            .take()
            .ok_or_else(|| format!("tenant \"{}\" is already closed", self.name))?;
        let outcome = verifier.finish();
        let violated = match &outcome.verdict {
            Ok(verdict) => verdict.is_violated(),
            // A checker domain error means the stream cannot be certified.
            Err(_) => true,
        };
        Ok(TenantSummary {
            checked: outcome.checked_txns as u64,
            violated,
            // `finish()` already falls back to the checker's latched index
            // for violations that only surfaced on the final flush.
            first_violation_at: outcome.first_violation.map(|v| v.at_txn as u64),
        })
    }

    /// A point-in-time stats snapshot; `rss_kb` is the daemon process RSS
    /// (shared across tenants — the per-tenant share is not separable).
    fn status(&self, rss_kb: u64) -> TenantStatus {
        let (queue_depth, _closing) = {
            let q = self.queue.lock();
            (q.queue.len() as u64, q.closing)
        };
        let (checked, violated, first_violation_at, live_txns, sink) = {
            let guard = self.verifier.lock();
            match guard.as_ref() {
                Some(v) => (
                    v.consumed() as u64,
                    v.is_violated(),
                    v.first_violation_at().map(|i| i as u64),
                    v.live_txn_count() as u64,
                    v.sink_stats(),
                ),
                None => (self.drained.load(Ordering::Relaxed), false, None, 0, None),
            }
        };
        TenantStatus {
            name: self.name.clone(),
            ingested: self.ingested.load(Ordering::Relaxed),
            checked,
            queue_depth,
            queue_cap: self.queue_cap as u64,
            backpressured: self.backpressured.load(Ordering::Relaxed),
            violated,
            first_violation_at,
            live_txns,
            // Sink-counted when a WAL sink is attached; otherwise
            // cadence-derived (checkpoint every `checkpoint_every`
            // recorded events).
            checkpoints: match &sink {
                Some(s) => s.checkpoints,
                None => self.drained.load(Ordering::Relaxed) / self.checkpoint_every as u64,
            },
            rss_kb,
            wal_append_p99_micros: sink.map(|s| s.wal_append_p99_micros).unwrap_or(0),
            last_checkpoint_age_micros: sink.and_then(|s| s.last_checkpoint_age_micros),
            sink_errors: sink.map(|s| s.sink_errors).unwrap_or(0),
        }
    }
}

struct Registry {
    next_id: u64,
    by_id: HashMap<u64, Arc<Tenant>>,
    by_name: HashMap<String, u64>,
}

/// The daemon state shared by every connection handler and drain worker.
pub struct ServiceCore {
    config: ServiceConfig,
    tenants: Mutex<Registry>,
    shutdown: AtomicBool,
}

impl ServiceCore {
    /// Creates the core, making sure the WAL root exists.
    pub fn new(config: ServiceConfig) -> std::io::Result<Self> {
        std::fs::create_dir_all(&config.root)?;
        Ok(ServiceCore {
            config,
            tenants: Mutex::new(Registry {
                next_id: 1,
                by_id: HashMap::new(),
                by_name: HashMap::new(),
            }),
            shutdown: AtomicBool::new(false),
        })
    }

    /// The configuration the core was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Opens tenant `name` at `level` over a `num_keys`-key space.
    ///
    /// Fresh name → fresh WAL directory and empty checker. Name whose
    /// directory already holds a log (an earlier daemon run, crashed or
    /// closed) → the stream *resumes*: newest intact checkpoint snapshot,
    /// tail replay, verdict-equivalent to never having stopped. Name
    /// already open in this process → re-attach to the running tenant
    /// (same handle semantics as opening a second connection).
    pub fn open_tenant(
        &self,
        name: &str,
        level: IsolationLevel,
        num_keys: u64,
    ) -> Result<TenantOpen, String> {
        if name.is_empty() {
            return Err("tenant name must be non-empty".to_string());
        }
        let mut reg = self.tenants.lock();
        if let Some(&id) = reg.by_name.get(name) {
            // Re-attach: the stream's level/keyspace were fixed at first
            // open; a mismatched re-open is a client bug.
            let tenant = &reg.by_id[&id];
            if tenant.level != level || tenant.num_keys != num_keys {
                return Err(format!(
                    "tenant \"{name}\" is open at {} over {} keys; \
                     requested {level} over {num_keys}",
                    tenant.level, tenant.num_keys
                ));
            }
            return Ok(TenantOpen {
                tenant: id,
                resumed_txns: 0,
                from_checkpoint: false,
            });
        }

        let dir = self.config.root.join(tenant_dir_name(name));
        let (resumed_txns, from_checkpoint, verifier) = if dir.exists() {
            let (store, recovery) =
                MtcStore::open_append(&dir).map_err(|e| format!("open tenant store: {e}"))?;
            if recovery.meta.level != level || recovery.meta.num_keys != num_keys {
                return Err(format!(
                    "tenant \"{name}\" already has a stream at {} over {} keys; \
                     requested {level} over {num_keys}",
                    recovery.meta.level, recovery.meta.num_keys
                ));
            }
            let mut checker = match recovery.snapshot.clone() {
                Some(snapshot) => IncrementalChecker::resume(snapshot),
                None => IncrementalChecker::new(level).with_init_keys(0..num_keys),
            };
            for txn in recovery.tail() {
                let _ = checker.push(txn.clone());
            }
            let mut builder = LiveVerifier::builder(level, num_keys)
                .resume_from(checker)
                .store(store, self.config.checkpoint_every);
            if let Some(gc) = self.config.gc {
                builder = builder.gc(gc);
            }
            (
                recovery.txns.len() as u64,
                recovery.snapshot.is_some(),
                builder.build(),
            )
        } else {
            let store = MtcStore::create(&dir, &StreamMeta { level, num_keys })
                .map_err(|e| format!("create tenant store: {e}"))?;
            let mut builder =
                LiveVerifier::builder(level, num_keys).store(store, self.config.checkpoint_every);
            if let Some(gc) = self.config.gc {
                builder = builder.gc(gc);
            }
            (0, false, builder.build())
        };

        let id = reg.next_id;
        reg.next_id += 1;
        let tenant = Arc::new(Tenant {
            name: name.to_string(),
            level,
            num_keys,
            queue_cap: self.config.queue_cap,
            checkpoint_every: self.config.checkpoint_every,
            queue: Mutex::new(TenantQueue {
                queue: VecDeque::new(),
                closing: false,
            }),
            drain: Mutex::new(()),
            verifier: Mutex::new(Some(verifier)),
            paused: AtomicBool::new(false),
            ingested: AtomicU64::new(resumed_txns),
            drained: AtomicU64::new(resumed_txns),
            backpressured: AtomicU64::new(0),
            admit_hist: mtc_obs::registry()
                .histogram(&format!("service.tenant.{name}.admit_micros")),
            violation_logged: AtomicBool::new(false),
        });
        reg.by_id.insert(id, tenant);
        reg.by_name.insert(name.to_string(), id);
        {
            use mtc_obs::events::JsonValue;
            mtc_obs::events::emit(
                "tenant-open",
                &[
                    ("tenant", JsonValue::Str(name.to_string())),
                    ("id", JsonValue::U64(id)),
                    ("level", JsonValue::Str(level.to_string())),
                    ("resumed_txns", JsonValue::U64(resumed_txns)),
                    ("from_checkpoint", JsonValue::Bool(from_checkpoint)),
                ],
            );
        }
        Ok(TenantOpen {
            tenant: id,
            resumed_txns,
            from_checkpoint,
        })
    }

    fn tenant(&self, id: u64) -> Result<Arc<Tenant>, String> {
        self.tenants
            .lock()
            .by_id
            .get(&id)
            .cloned()
            .ok_or_else(|| format!("unknown tenant id {id}"))
    }

    /// Admits one `Ingest` batch, all-or-nothing.
    pub fn ingest(&self, id: u64, events: Vec<IngestEvent>) -> Result<Admission, String> {
        self.tenant(id)?.ingest(events)
    }

    /// A point-in-time stats snapshot of tenant `id`.
    pub fn status(&self, id: u64) -> Result<TenantStatus, String> {
        Ok(self.tenant(id)?.status(rss_kb()))
    }

    /// Freezes (or thaws) tenant `id`'s drain — admission stays open, so a
    /// frozen tenant's queue fills and `Ingest` turns into deterministic
    /// `Backpressure`. The lifecycle tests' backpressure knob; also an
    /// operational valve for shedding checker load.
    pub fn pause_tenant(&self, id: u64, paused: bool) -> Result<(), String> {
        self.tenant(id)?.paused.store(paused, Ordering::Release);
        Ok(())
    }

    /// Closes tenant `id`: drains the queue, finishes the checker, frees
    /// the registry slot. The WAL directory stays — reopening the name
    /// resumes the stream.
    pub fn close_tenant(&self, id: u64) -> Result<TenantSummary, String> {
        let tenant = self.tenant(id)?;
        let summary = tenant.close()?;
        let mut reg = self.tenants.lock();
        reg.by_id.remove(&id);
        reg.by_name.remove(&tenant.name);
        drop(reg);
        {
            use mtc_obs::events::JsonValue;
            mtc_obs::events::emit(
                "tenant-close",
                &[
                    ("tenant", JsonValue::Str(tenant.name.clone())),
                    ("id", JsonValue::U64(id)),
                    ("checked", JsonValue::U64(summary.checked)),
                    ("violated", JsonValue::Bool(summary.violated)),
                ],
            );
        }
        Ok(summary)
    }

    /// True once [`ServiceCore::stop`] has been called.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Asks the drain loop (and anything polling
    /// [`ServiceCore::is_shutdown`]) to wind down.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Runs the ingest drain until [`ServiceCore::stop`]: `drain_workers`
    /// cooperative futures on the scoped `futures_lite` executor, each
    /// sweeping the tenant registry round-robin (offset by worker index)
    /// and yielding between tenants. Blocks the calling thread; the daemon
    /// gives it a dedicated one.
    pub fn run_drain(&self) {
        let workers = self.config.drain_workers.max(1);
        let tasks: Vec<futures_lite::executor::BoxedTask<'_, ()>> = (0..workers)
            .map(|offset| {
                Box::pin(self.drain_task(offset)) as futures_lite::executor::BoxedTask<'_, ()>
            })
            .collect();
        futures_lite::executor::run_all(tasks, workers);
    }

    async fn drain_task(&self, offset: usize) {
        while !self.is_shutdown() {
            let tenants: Vec<Arc<Tenant>> =
                { self.tenants.lock().by_id.values().cloned().collect() };
            let mut fed = 0;
            let n = tenants.len();
            for i in 0..n {
                fed += tenants[(i + offset) % n].drain_batch(self.config.drain_batch);
                futures_lite::future::yield_now().await;
            }
            if fed == 0 {
                // Idle: this worker thread has nothing else to poll, so a
                // short blocking nap is the right kind of cheap.
                std::thread::sleep(Duration::from_micros(500));
                futures_lite::future::yield_now().await;
            }
        }
    }
}

/// Maps a tenant name to its WAL directory name: ASCII alphanumerics,
/// `-` and `_` pass through, everything else becomes `_` (names that
/// collide after mapping share a directory — pick filesystem-friendly
/// tenant names).
fn tenant_dir_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Current resident set size of this process in KiB (Linux `/proc`; 0
/// where unavailable).
pub fn rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            return rest
                .trim()
                .trim_end_matches(" kB")
                .trim()
                .parse()
                .unwrap_or(0);
        }
    }
    0
}
