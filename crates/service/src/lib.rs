//! # mtc-service
//!
//! Verification as a service: a long-lived daemon that keeps one GC'd
//! streaming checker per *named tenant*, fed over the `mtc-net` framed-TCP
//! protocol's service role (`OpenTenant` / `Ingest` / `TenantStatus` /
//! `CloseTenant`, protocol v2).
//!
//! The paper's end-to-end loop — execute, collect, verify — assumes the
//! checker lives inside the test harness. This crate moves it behind a
//! socket so many independent systems under test (the *tenants*) stream
//! their finished transactions to one resident verifier fleet:
//!
//! * **per-tenant admission control** — each tenant has a bounded ingest
//!   queue; a batch that would overflow is refused whole with a
//!   `Backpressure` reply (clients back off and retry), so the daemon
//!   sheds load by refusing, never by dropping: every *admitted* event is
//!   verified;
//! * **durability** — every tenant stream is write-ahead logged to an
//!   [`mtc_store`] WAL under `root/<tenant>/` with periodic checker
//!   checkpoints; a SIGKILL'd daemon resumes every tenant from its newest
//!   checkpoint plus tail replay, to verdicts identical to never having
//!   crashed;
//! * **multiplexed verification** — connection handlers only enqueue;
//!   a fixed pool of drain futures on the scoped `futures_lite` executor
//!   sweeps tenants fairly and feeds their checkers, with a single-flight
//!   per-tenant drain lock preserving admission order;
//! * **observability** — `TenantStatus` answers live per-tenant verdict,
//!   ingest/checked lag, queue depth, backpressure count, resident checker
//!   size and process RSS.
//!
//! Tenant verifiers are built exclusively through
//! [`mtc_dbsim::LiveVerifier::builder`]; the daemon is the reference
//! consumer of that unified construction API.
//!
//! * [`core`] — [`ServiceCore`], [`ServiceConfig`], tenant registry and
//!   drain loop (protocol-independent);
//! * [`server`] — [`serve`] accept loop and the [`ServiceServer`]
//!   in-process harness; the `mtc_service_server` binary is a thin shell
//!   around these;
//! * [`client`] — [`ServiceClient`], the tenant-side handle;
//! * [`loadgen`] — the `service_load` scaling-curve generator, shared with
//!   the bench gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod core;
pub mod loadgen;
pub mod server;

pub use client::{IngestOutcome, ServiceClient};
pub use core::{rss_kb, Admission, ServiceConfig, ServiceCore, Tenant, TenantOpen, TenantSummary};
pub use loadgen::{drive, synthetic_events, LoadPoint, LoadSpec};
pub use server::{serve, ServiceServer, SERVICE_LABEL};
