//! The tenant-side handle: one connection, typed calls, explicit
//! backpressure.
//!
//! [`ServiceClient`] wraps one TCP connection to a daemon and exposes the
//! service role as methods. [`ServiceClient::ingest`] surfaces
//! backpressure as a value ([`IngestOutcome::Backpressure`]) so callers
//! own their back-off policy; [`ServiceClient::ingest_all`] is the common
//! policy canned: retry the same batch with a short sleep until admitted
//! (all-or-nothing admission makes the retry safe — a refused batch
//! admitted nothing).

use mtc_core::IsolationLevel;
use mtc_dbsim::IngestEvent;
use mtc_net::proto::{self, Reply, Request, RequestEnvelope, TenantStatus, PROTOCOL_VERSION};
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

pub use crate::core::{TenantOpen, TenantSummary};

/// Outcome of one non-blocking ingest call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IngestOutcome {
    /// The whole batch was admitted.
    Accepted(u64),
    /// The daemon refused the whole batch; retry it after backing off.
    Backpressure {
        /// Events queued at the tenant when the batch was refused.
        queue_depth: u64,
        /// The tenant's queue capacity.
        queue_cap: u64,
    },
}

/// One connection to a verification daemon.
pub struct ServiceClient {
    stream: TcpStream,
    seq: u64,
}

impl ServiceClient {
    /// Connects and handshakes; fails on a protocol-version mismatch or if
    /// the peer is not a verification service.
    pub fn connect(addr: SocketAddr) -> io::Result<ServiceClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = ServiceClient { stream, seq: 0 };
        match client.call(Request::Hello {
            version: PROTOCOL_VERSION,
        })? {
            Reply::Hello { version, .. } if version == PROTOCOL_VERSION => Ok(client),
            Reply::Hello { version, .. } => Err(io::Error::other(format!(
                "server speaks protocol {version}, client {PROTOCOL_VERSION}"
            ))),
            Reply::Error(e) => Err(io::Error::other(e)),
            other => Err(unexpected("Hello", &other)),
        }
    }

    fn call(&mut self, request: Request) -> io::Result<Reply> {
        let seq = self.seq;
        self.seq += 1;
        proto::send(&mut self.stream, &RequestEnvelope { seq, request })?;
        loop {
            let env: proto::ReplyEnvelope = proto::recv(&mut self.stream)?;
            if env.seq == seq {
                return Ok(env.reply);
            }
            if env.seq > seq {
                return Err(io::Error::other(format!(
                    "reply sequence ran ahead: got {}, waiting for {seq}",
                    env.seq
                )));
            }
            // Smaller seq: stale duplicate; discard and keep waiting.
        }
    }

    /// Opens (or resumes, or re-attaches to) tenant `name`.
    pub fn open_tenant(
        &mut self,
        name: &str,
        level: IsolationLevel,
        num_keys: u64,
    ) -> io::Result<TenantOpen> {
        match self.call(Request::OpenTenant {
            tenant: name.to_string(),
            level,
            num_keys,
        })? {
            Reply::TenantOpened {
                tenant,
                resumed_txns,
                from_checkpoint,
            } => Ok(TenantOpen {
                tenant,
                resumed_txns,
                from_checkpoint,
            }),
            Reply::Error(e) => Err(io::Error::other(e)),
            other => Err(unexpected("OpenTenant", &other)),
        }
    }

    /// Offers one batch; never blocks on a full queue.
    pub fn ingest(&mut self, tenant: u64, events: Vec<IngestEvent>) -> io::Result<IngestOutcome> {
        match self.call(Request::Ingest { tenant, events })? {
            Reply::Ingested { accepted } => Ok(IngestOutcome::Accepted(accepted)),
            Reply::Backpressure {
                queue_depth,
                queue_cap,
            } => Ok(IngestOutcome::Backpressure {
                queue_depth,
                queue_cap,
            }),
            Reply::Error(e) => Err(io::Error::other(e)),
            other => Err(unexpected("Ingest", &other)),
        }
    }

    /// Offers one batch until admitted, sleeping `backoff` between refused
    /// attempts. Returns how many backpressure replies were absorbed.
    pub fn ingest_all(
        &mut self,
        tenant: u64,
        events: Vec<IngestEvent>,
        backoff: Duration,
    ) -> io::Result<u64> {
        let mut refused = 0u64;
        loop {
            match self.ingest(tenant, events.clone())? {
                IngestOutcome::Accepted(_) => return Ok(refused),
                IngestOutcome::Backpressure { .. } => {
                    refused += 1;
                    std::thread::sleep(backoff);
                }
            }
        }
    }

    /// A point-in-time stats snapshot of the tenant.
    pub fn status(&mut self, tenant: u64) -> io::Result<TenantStatus> {
        match self.call(Request::TenantStatus { tenant })? {
            Reply::TenantStat(status) => Ok(status),
            Reply::Error(e) => Err(io::Error::other(e)),
            other => Err(unexpected("TenantStatus", &other)),
        }
    }

    /// Scrapes the daemon's process-wide metrics registry.
    pub fn metrics(&mut self) -> io::Result<mtc_obs::MetricsSnapshot> {
        match self.call(Request::MetricsSnapshot)? {
            Reply::Metrics(snapshot) => Ok(snapshot),
            Reply::Error(e) => Err(io::Error::other(e)),
            other => Err(unexpected("MetricsSnapshot", &other)),
        }
    }

    /// Closes the tenant: waits for its queue to drain, finishes the
    /// checker, returns the stream verdict summary.
    pub fn close_tenant(&mut self, tenant: u64) -> io::Result<TenantSummary> {
        match self.call(Request::CloseTenant { tenant })? {
            Reply::TenantClosed {
                checked,
                violated,
                first_violation_at,
            } => Ok(TenantSummary {
                checked,
                violated,
                first_violation_at,
            }),
            Reply::Error(e) => Err(io::Error::other(e)),
            other => Err(unexpected("CloseTenant", &other)),
        }
    }
}

fn unexpected(what: &str, reply: &Reply) -> io::Error {
    io::Error::other(format!("unexpected reply to {what}: {reply:?}"))
}
