//! The daemon's wire face: the service role of the `mtc-net` protocol.
//!
//! Same framing, same envelopes, same handshake as an execution server —
//! one CRC-framed binval record per message, per-connection sequence
//! numbers — but the request vocabulary is the tenant-stream half of the
//! protocol (`OpenTenant` / `Ingest` / `TenantStatus` / `CloseTenant`).
//! Execution-role requests are refused with an explicit error, mirroring
//! how `mtc_net::serve` refuses service-role requests.
//!
//! [`serve`] is the accept loop (one scoped handler thread per
//! connection, pushing into the core's admission queues — handlers never
//! verify); [`ServiceServer`] is the in-process harness the tests, the
//! load generator and the bench gate build on: ephemeral loopback port,
//! its own accept *and* drain threads, shutdown on drop.

use crate::core::{Admission, ServiceConfig, ServiceCore};
use mtc_net::proto::{self, Reply, Request, RequestEnvelope, PROTOCOL_VERSION};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The label a service announces in its `Hello` reply.
pub const SERVICE_LABEL: &str = "mtc-service";

/// Serves `core` on `listener` until `shutdown` becomes true: one handler
/// thread per connection, same idle-peek loop as the execution server.
pub fn serve(core: &ServiceCore, listener: TcpListener, shutdown: &AtomicBool) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    std::thread::scope(|scope| {
        while !shutdown.load(Ordering::Acquire) && !core.is_shutdown() {
            match listener.accept() {
                Ok((stream, peer)) => {
                    use mtc_obs::events::JsonValue;
                    mtc_obs::gauge!("net.connections_open").add(1);
                    mtc_obs::events::emit(
                        "connection-accepted",
                        &[
                            ("role", JsonValue::Str("service".to_string())),
                            ("peer", JsonValue::Str(peer.to_string())),
                        ],
                    );
                    scope.spawn(move || {
                        handle_connection(core, stream, shutdown);
                        mtc_obs::gauge!("net.connections_open").sub(1);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    })
}

fn handle_connection(core: &ServiceCore, mut stream: TcpStream, shutdown: &AtomicBool) {
    let _ = stream.set_nodelay(true);
    while !shutdown.load(Ordering::Acquire) && !core.is_shutdown() {
        // Idle phase: peek with a short timeout so the handler notices
        // shutdown without consuming frame bytes.
        if stream
            .set_read_timeout(Some(Duration::from_millis(20)))
            .is_err()
        {
            break;
        }
        match stream.peek(&mut [0u8; 1]) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
        if stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .is_err()
        {
            break;
        }
        let env: RequestEnvelope = match proto::recv(&mut stream) {
            Ok(env) => env,
            Err(_) => break,
        };
        let reply = execute(core, env.request);
        let reply_env = proto::ReplyEnvelope {
            seq: env.seq,
            // The service has no transactional clock to share; 0 keeps the
            // field honest ("no later than anything").
            now: 0,
            reply,
        };
        if proto::send(&mut stream, &reply_env).is_err() {
            break;
        }
    }
    // Unlike the execution server there is nothing connection-scoped to
    // clean up: tenants outlive their connections by design.
}

fn execute(core: &ServiceCore, request: Request) -> Reply {
    match request {
        Request::Hello { version } => {
            if version != PROTOCOL_VERSION {
                return Reply::Error(format!(
                    "protocol version mismatch: client {version}, server {PROTOCOL_VERSION}"
                ));
            }
            Reply::Hello {
                version: PROTOCOL_VERSION,
                label: SERVICE_LABEL.to_string(),
                // A verification service executes nothing, so it promises
                // no isolation level of its own.
                promised: Vec::new(),
            }
        }
        Request::OpenTenant {
            tenant,
            level,
            num_keys,
        } => match core.open_tenant(&tenant, level, num_keys) {
            Ok(open) => Reply::TenantOpened {
                tenant: open.tenant,
                resumed_txns: open.resumed_txns,
                from_checkpoint: open.from_checkpoint,
            },
            Err(e) => Reply::Error(e),
        },
        Request::Ingest { tenant, events } => match core.ingest(tenant, events) {
            Ok(Admission::Accepted(accepted)) => Reply::Ingested { accepted },
            Ok(Admission::Backpressure {
                queue_depth,
                queue_cap,
            }) => Reply::Backpressure {
                queue_depth,
                queue_cap,
            },
            Err(e) => Reply::Error(e),
        },
        Request::TenantStatus { tenant } => match core.status(tenant) {
            Ok(status) => Reply::TenantStat(status),
            Err(e) => Reply::Error(e),
        },
        Request::CloseTenant { tenant } => match core.close_tenant(tenant) {
            Ok(summary) => Reply::TenantClosed {
                checked: summary.checked,
                violated: summary.violated,
                first_violation_at: summary.first_violation_at,
            },
            Err(e) => Reply::Error(e),
        },
        Request::MetricsSnapshot => Reply::Metrics(mtc_obs::registry().snapshot()),
        Request::Begin { .. }
        | Request::Read { .. }
        | Request::Write { .. }
        | Request::ReadList { .. }
        | Request::Append { .. }
        | Request::Commit { .. }
        | Request::Abort { .. }
        | Request::Now => {
            Reply::Error("this is a verification service, not an execution server".to_string())
        }
    }
}

/// An in-process daemon on an ephemeral loopback port: accept loop and
/// drain loop each on their own thread, shut down (and joined) on drop.
pub struct ServiceServer {
    addr: SocketAddr,
    core: Arc<ServiceCore>,
    shutdown: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<io::Result<()>>>,
    drain: Option<std::thread::JoinHandle<()>>,
}

impl ServiceServer {
    /// Binds `127.0.0.1:0` and starts serving a fresh core built from
    /// `config`. Observability recording is switched on for the process:
    /// a daemon's whole point is to be watchable, and the layer's cost is
    /// bounded by the bench gate's `obs-overhead` series.
    pub fn spawn(config: ServiceConfig) -> io::Result<ServiceServer> {
        mtc_obs::set_enabled(true);
        let core = Arc::new(ServiceCore::new(config)?);
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));

        let accept_core = Arc::clone(&core);
        let accept_flag = Arc::clone(&shutdown);
        let accept =
            std::thread::spawn(move || serve(accept_core.as_ref(), listener, &accept_flag));

        let drain_core = Arc::clone(&core);
        let drain = std::thread::spawn(move || drain_core.run_drain());

        Ok(ServiceServer {
            addr,
            core,
            shutdown,
            accept: Some(accept),
            drain: Some(drain),
        })
    }

    /// The daemon's loopback address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Direct access to the core — the tests' side door for knobs like
    /// [`ServiceCore::pause_tenant`].
    pub fn core(&self) -> &Arc<ServiceCore> {
        &self.core
    }

    /// Stops the accept and drain loops and joins both threads.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.stop()
    }

    fn stop(&mut self) -> io::Result<()> {
        self.core.stop();
        self.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.drain.take() {
            let _ = handle.join();
        }
        match self.accept.take() {
            Some(handle) => handle
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("service accept thread panicked"))),
            None => Ok(()),
        }
    }
}

impl Drop for ServiceServer {
    fn drop(&mut self) {
        let _ = self.stop();
    }
}
