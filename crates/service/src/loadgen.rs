//! The daemon load generator: N tenants × M sessions at full offered
//! load, measuring sustained verification throughput and ingest latency.
//!
//! Shared by the `service_load` binary (scaling curve, kill/resume smoke)
//! and the bench gate's `service/tenants-N` artifact series, so the CI
//! numbers and the command-line numbers come from the same code.
//!
//! Each tenant is driven by its own thread over its own connection:
//! generate a deterministic clean event stream ([`synthetic_events`]),
//! send it in fixed-size batches with bounded backoff on backpressure,
//! close the tenant (which drains and verifies the remainder), and demand
//! `checked == sent` — the zero-loss contract: admission may refuse, but
//! an admitted event is never dropped.

use crate::client::{IngestOutcome, ServiceClient};
use mtc_core::IsolationLevel;
use mtc_dbsim::IngestEvent;
use mtc_history::{Op, TxnStatus};
use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Shape of one load-generation run.
#[derive(Clone, Copy, Debug)]
pub struct LoadSpec {
    /// Concurrent tenants, each on its own connection and thread.
    pub tenants: usize,
    /// Sessions interleaved inside each tenant's stream.
    pub sessions: u32,
    /// Transactions per session.
    pub txns_per_session: u32,
    /// Keys per tenant stream.
    pub num_keys: u64,
    /// Isolation level every tenant verifies at.
    pub level: IsolationLevel,
    /// Events per `Ingest` batch.
    pub batch: usize,
    /// Stream seed (varies the per-tenant key walk).
    pub seed: u64,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            tenants: 4,
            sessions: 4,
            txns_per_session: 500,
            num_keys: 32,
            level: IsolationLevel::Serializability,
            batch: 64,
            seed: 1,
        }
    }
}

impl LoadSpec {
    /// Events each tenant sends.
    pub fn events_per_tenant(&self) -> u64 {
        self.sessions as u64 * self.txns_per_session as u64
    }
}

/// One point of the scaling curve.
#[derive(Clone, Copy, Debug)]
pub struct LoadPoint {
    /// Concurrent tenants driven.
    pub tenants: usize,
    /// Events sent (and verified) across all tenants.
    pub total_txns: u64,
    /// Wall-clock from first open to last close (verification included —
    /// close drains the tenant).
    pub wall: Duration,
    /// `total_txns / wall`: sustained end-to-end verification rate.
    pub txns_per_sec: f64,
    /// 99th percentile of per-batch ingest latency (time until the batch
    /// was admitted, backpressure retries included), in microseconds.
    pub p99_ingest_micros: u64,
    /// Backpressure replies absorbed across all tenants.
    pub backpressure_hits: u64,
}

/// A deterministic, isolation-clean event stream for one tenant:
/// `sessions` round-robin writers over a private key walk, every read
/// observing the stream's latest write, monotone disjoint commit windows
/// (clean at SER and SSER alike).
pub fn synthetic_events(spec: &LoadSpec, tenant_idx: usize) -> Vec<IngestEvent> {
    let total = spec.events_per_tenant();
    // Keys start at INIT_VALUE (0) — the daemon initializes each tenant's
    // checker with ⊥T over 0..num_keys — so the first touch reads 0.
    let mut last = vec![0u64; spec.num_keys as usize];
    let stride = spec.seed.wrapping_mul(2).wrapping_add(5) | 1;
    let mut events = Vec::with_capacity(total as usize);
    for i in 0..total {
        let k = i
            .wrapping_mul(stride)
            .wrapping_add(tenant_idx as u64)
            .rem_euclid(spec.num_keys.max(1));
        let v = 1_000 + i;
        // Mini-transaction discipline: read the key, then write it.
        let ops = vec![Op::read(k, last[k as usize]), Op::write(k, v)];
        last[k as usize] = v;
        events.push(IngestEvent::timed(
            (i % spec.sessions as u64) as u32,
            ops,
            TxnStatus::Committed,
            10 * i + 1,
            10 * i + 6,
        ));
    }
    events
}

/// Drives `spec.tenants` tenants against the daemon at `addr` and returns
/// the scaling point. Tenant names are `"{name_prefix}-{i}"`. Errors if
/// any tenant loses events (`checked != sent`) or reports a violation (the
/// synthetic stream is clean by construction).
pub fn drive(addr: SocketAddr, spec: &LoadSpec, name_prefix: &str) -> io::Result<LoadPoint> {
    let started = Instant::now();
    let per_tenant = spec.events_per_tenant();
    type TenantResult = io::Result<(Vec<u64>, u64)>;
    let results: Vec<TenantResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.tenants)
            .map(|t| {
                let prefix = name_prefix.to_string();
                scope.spawn(move || -> TenantResult {
                    let mut client = ServiceClient::connect(addr)?;
                    let open =
                        client.open_tenant(&format!("{prefix}-{t}"), spec.level, spec.num_keys)?;
                    let events = synthetic_events(spec, t);
                    let mut latencies = Vec::with_capacity(events.len() / spec.batch + 1);
                    let mut backpressure = 0u64;
                    // Client-measured ingest latency (round trip plus
                    // backpressure retries), mirrored into the registry so
                    // an in-process daemon's `MetricsSnapshot` can be
                    // cross-checked against the exact sorted-vec p99.
                    let tenant_hist = mtc_obs::registry()
                        .histogram(&format!("service.tenant.{prefix}-{t}.ingest_micros"));
                    let run_hist =
                        mtc_obs::registry().histogram(&format!("service.ingest_micros.{prefix}"));
                    for chunk in events.chunks(spec.batch.max(1)) {
                        let t0 = Instant::now();
                        loop {
                            match client.ingest(open.tenant, chunk.to_vec())? {
                                IngestOutcome::Accepted(_) => break,
                                IngestOutcome::Backpressure { .. } => {
                                    backpressure += 1;
                                    std::thread::sleep(Duration::from_micros(200));
                                }
                            }
                        }
                        let micros = t0.elapsed().as_micros() as u64;
                        tenant_hist.record(micros);
                        run_hist.record(micros);
                        latencies.push(micros);
                    }
                    let summary = client.close_tenant(open.tenant)?;
                    if summary.checked != open.resumed_txns + per_tenant {
                        return Err(io::Error::other(format!(
                            "tenant {t}: sent {} events (on top of {} resumed) but only {} \
                             were checked — events were lost",
                            per_tenant, open.resumed_txns, summary.checked
                        )));
                    }
                    if summary.violated {
                        return Err(io::Error::other(format!(
                            "tenant {t}: clean synthetic stream reported violated \
                             (first at {:?})",
                            summary.first_violation_at
                        )));
                    }
                    Ok((latencies, backpressure))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(io::Error::other("load thread panicked")))
            })
            .collect()
    });
    let wall = started.elapsed();

    let mut latencies = Vec::new();
    let mut backpressure_hits = 0u64;
    for r in results {
        let (l, b) = r?;
        latencies.extend(l);
        backpressure_hits += b;
    }
    latencies.sort_unstable();
    let p99 = percentile(&latencies, 0.99);
    let total_txns = per_tenant * spec.tenants as u64;
    Ok(LoadPoint {
        tenants: spec.tenants,
        total_txns,
        wall,
        txns_per_sec: total_txns as f64 / wall.as_secs_f64().max(1e-9),
        p99_ingest_micros: p99,
        backpressure_hits,
    })
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}
