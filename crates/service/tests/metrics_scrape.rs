//! The observability scrape contract, end to end: a live in-process
//! daemon must answer `Request::MetricsSnapshot` on its ordinary port
//! with a snapshot that (a) says recording is on, (b) carries the hot-path
//! metrics the instrumented stack is supposed to populate, and (c)
//! renders to a JSON document of the documented shape — the same document
//! `mtc_service_server --metrics-json` prints, so this test is the CI
//! guard for every downstream scraper.

use mtc_service::loadgen::{synthetic_events, LoadSpec};
use mtc_service::{ServiceClient, ServiceConfig, ServiceServer};
use serde::Serialize as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mtc_metrics_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn live_daemon_snapshot_has_the_documented_shape() {
    let root = temp_root("scrape");
    let server = ServiceServer::spawn(ServiceConfig::new(&root).checkpoint_every(64))
        .expect("daemon spawns");
    let mut client = ServiceClient::connect(server.addr()).expect("connect");

    let spec = LoadSpec {
        tenants: 1,
        sessions: 2,
        txns_per_session: 150,
        num_keys: 8,
        ..Default::default()
    };
    let open = client
        .open_tenant("scraped", spec.level, spec.num_keys)
        .expect("open");
    client
        .ingest_all(
            open.tenant,
            synthetic_events(&spec, 0),
            Duration::from_micros(200),
        )
        .expect("ingest");

    // Wait until the drain loop has pushed everything through the checker
    // and the WAL, so the store/checker metrics below are populated.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let status = client.status(open.tenant).expect("status");
        if status.checked >= spec.events_per_tenant() {
            // The WAL sink ran under the drain: the new TenantStatus
            // fields must reflect it.
            assert!(status.wal_append_p99_micros > 0, "WAL p99 unpopulated");
            assert_eq!(status.sink_errors, 0);
            assert!(
                status.checkpoints >= 1 && status.last_checkpoint_age_micros.is_some(),
                "expected a checkpoint after {} events",
                status.checked
            );
            break;
        }
        assert!(Instant::now() < deadline, "drain never caught up");
        std::thread::sleep(Duration::from_millis(5));
    }

    let snapshot = client.metrics().expect("metrics scrape");
    assert!(snapshot.enabled, "daemon must record metrics");
    let admit = snapshot
        .histogram("service.tenant.scraped.admit_micros")
        .expect("per-tenant admission histogram registered");
    assert!(admit.count > 0, "admission histogram never recorded");
    assert!(admit.p50 <= admit.p99 && admit.p99 <= admit.max);
    let wal = snapshot
        .histogram("store.wal_append_micros")
        .expect("WAL append histogram registered");
    assert!(wal.count >= spec.events_per_tenant());
    assert!(
        snapshot.gauge("service.queue_depth").is_some(),
        "queue depth gauge missing"
    );

    // Shape check on the rendered document — what --metrics-json prints
    // and what an external scraper parses.
    let mut rendered = String::new();
    snapshot.to_json_value().render(&mut rendered);
    let doc = serde_json::parse(&rendered).expect("snapshot renders valid JSON");
    assert_eq!(
        doc.get("enabled").and_then(|v| match v {
            serde::JsonValue::Bool(b) => Some(*b),
            _ => None,
        }),
        Some(true)
    );
    for section in ["counters", "gauges", "histograms"] {
        assert!(
            matches!(doc.get(section), Some(serde::JsonValue::Array(_))),
            "snapshot JSON is missing the {section} array"
        );
    }
    // Round trip: the wire codec and the JSON rendering agree.
    let reparsed: mtc_obs::MetricsSnapshot =
        serde_json::from_str(&rendered).expect("snapshot JSON deserializes");
    assert_eq!(reparsed, snapshot);

    client.close_tenant(open.tenant).expect("close");
    server.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&root);
}
