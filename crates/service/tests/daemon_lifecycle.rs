//! Daemon lifecycle tests: open/ingest/status/close round trips, reattach
//! and mismatch handling, deterministic backpressure with zero loss, role
//! separation, and SIGKILL + checkpoint resume bit-identical to a clean
//! replay (against the real `mtc_service_server` binary).

use mtc_core::IsolationLevel;
use mtc_service::loadgen::{synthetic_events, LoadSpec};
use mtc_service::{IngestOutcome, ServiceClient, ServiceConfig, ServiceServer};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mtc_lifecycle_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_spec() -> LoadSpec {
    LoadSpec {
        tenants: 1,
        sessions: 2,
        txns_per_session: 60,
        num_keys: 8,
        ..Default::default()
    }
}

#[test]
fn open_ingest_status_close_round_trip() {
    let root = temp_root("round_trip");
    let server = ServiceServer::spawn(ServiceConfig::new(&root)).expect("daemon spawns");
    let mut client = ServiceClient::connect(server.addr()).expect("connect");
    let spec = small_spec();
    let total = spec.events_per_tenant();

    let open = client
        .open_tenant("acct", spec.level, spec.num_keys)
        .expect("open");
    assert_eq!(open.resumed_txns, 0, "fresh tenant resumes nothing");
    assert!(!open.from_checkpoint);

    let refused = client
        .ingest_all(
            open.tenant,
            synthetic_events(&spec, 0),
            Duration::from_micros(200),
        )
        .expect("ingest");
    let status = client.status(open.tenant).expect("status");
    assert_eq!(status.name, "acct");
    assert_eq!(status.ingested, total);
    assert_eq!(status.queue_cap, 1024);
    assert!(!status.violated);
    assert_eq!(status.backpressured, refused);

    let summary = client.close_tenant(open.tenant).expect("close");
    assert_eq!(summary.checked, total, "close must drain and verify all");
    assert!(!summary.violated, "the synthetic stream is clean");

    // The tenant is gone: its handle no longer resolves.
    assert!(client.status(open.tenant).is_err());
    // But its WAL survives on disk for a later resume.
    assert!(root.join("acct").exists());
    server.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn reattach_shares_the_stream_and_mismatched_meta_is_refused() {
    let root = temp_root("reattach");
    let server = ServiceServer::spawn(ServiceConfig::new(&root)).expect("daemon spawns");
    let spec = small_spec();
    let mut a = ServiceClient::connect(server.addr()).expect("connect");
    let mut b = ServiceClient::connect(server.addr()).expect("connect");

    let open_a = a
        .open_tenant("shared", spec.level, spec.num_keys)
        .expect("open");
    // A second connection opening the same name attaches to the same stream.
    let open_b = b
        .open_tenant("shared", spec.level, spec.num_keys)
        .expect("reattach");
    assert_eq!(open_a.tenant, open_b.tenant);
    // ... but only under the same meta: level or key-space drift is refused.
    assert!(b
        .open_tenant("shared", IsolationLevel::SnapshotIsolation, spec.num_keys)
        .is_err());
    assert!(b
        .open_tenant("shared", spec.level, spec.num_keys + 1)
        .is_err());

    let events = synthetic_events(&spec, 0);
    let (half_a, half_b) = events.split_at(events.len() / 2);
    a.ingest_all(open_a.tenant, half_a.to_vec(), Duration::from_micros(200))
        .expect("ingest a");
    b.ingest_all(open_b.tenant, half_b.to_vec(), Duration::from_micros(200))
        .expect("ingest b");
    let summary = a.close_tenant(open_a.tenant).expect("close");
    assert_eq!(summary.checked, spec.events_per_tenant());
    server.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&root);
}

/// Freezing the drain loop (the test side door) fills the bounded queue, so
/// admission must deterministically refuse with `Backpressure` — and after
/// unfreezing, every refused-then-retried event is verified: shedding load
/// never loses admitted events.
#[test]
fn backpressure_refuses_whole_batches_and_loses_nothing() {
    let root = temp_root("backpressure");
    let server = ServiceServer::spawn(ServiceConfig::new(&root).queue_cap(64)).expect("spawns");
    let mut client = ServiceClient::connect(server.addr()).expect("connect");
    let spec = LoadSpec {
        sessions: 2,
        txns_per_session: 50,
        num_keys: 8,
        batch: 32,
        ..Default::default()
    };
    let open = client
        .open_tenant("firehose", spec.level, spec.num_keys)
        .expect("open");
    server
        .core()
        .pause_tenant(open.tenant, true)
        .expect("pause");

    let events = synthetic_events(&spec, 0);
    let mut sent = 0usize;
    let mut refused = 0u64;
    let mut stashed: Vec<_> = Vec::new();
    for chunk in events.chunks(spec.batch) {
        match client
            .ingest(open.tenant, chunk.to_vec())
            .expect("ingest call")
        {
            IngestOutcome::Accepted(n) => sent += n as usize,
            IngestOutcome::Backpressure {
                queue_depth,
                queue_cap,
            } => {
                assert_eq!(queue_cap, 64);
                assert!(
                    queue_depth + spec.batch as u64 > queue_cap,
                    "refusal must mean the batch would overflow"
                );
                refused += 1;
                stashed.extend_from_slice(chunk);
            }
        }
    }
    assert!(refused > 0, "a frozen 64-slot queue must refuse 100 events");
    assert!(sent as u64 <= 64);
    let status = client.status(open.tenant).expect("status");
    assert_eq!(status.backpressured, refused);
    assert_eq!(
        status.queue_depth, sent as u64,
        "frozen queue holds all admitted"
    );

    // Thaw and resend what was refused: nothing may be lost.
    server
        .core()
        .pause_tenant(open.tenant, false)
        .expect("unpause");
    client
        .ingest_all(open.tenant, stashed, Duration::from_micros(200))
        .expect("resend");
    let summary = client.close_tenant(open.tenant).expect("close");
    assert_eq!(summary.checked, events.len() as u64);
    assert!(!summary.violated);
    server.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&root);
}

/// The service role and the execution role share the protocol but not the
/// endpoints: a verification daemon refuses execution-role requests the
/// same way an execution server refuses service-role ones.
#[test]
fn the_daemon_refuses_execution_role_requests() {
    let root = temp_root("roles");
    let server = ServiceServer::spawn(ServiceConfig::new(&root)).expect("spawns");
    // A NetBackend client expects an execution server. The handshake itself
    // succeeds (same protocol), but the Hello exposes the role: a service
    // label and no promised isolation levels ...
    use mtc_dbsim::DbBackend;
    let backend = mtc_net::NetBackend::connect(server.addr()).expect("shared handshake");
    assert_eq!(backend.label(), "net/mtc-service");
    for level in [
        IsolationLevel::SnapshotIsolation,
        IsolationLevel::Serializability,
        IsolationLevel::StrictSerializability,
    ] {
        assert!(!backend.promises(level), "a verifier promises no execution");
    }
    // ... and every execution-role request is refused, surfacing as a clean
    // typed abort rather than a hang or a protocol wedge.
    let mut txn = backend.begin();
    assert!(txn.read_register(mtc_history::Key(0)).is_err());
    drop(txn);
    drop(backend);
    server.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&root);
}

/// A violating stream is reported per tenant and does not disturb its
/// neighbours.
#[test]
fn a_violating_tenant_is_isolated_from_clean_neighbours() {
    let root = temp_root("violation");
    let server = ServiceServer::spawn(ServiceConfig::new(&root)).expect("spawns");
    let mut client = ServiceClient::connect(server.addr()).expect("connect");
    let spec = small_spec();

    let clean = client
        .open_tenant("clean", spec.level, spec.num_keys)
        .expect("open");
    let dirty = client
        .open_tenant("dirty", spec.level, spec.num_keys)
        .expect("open");

    client
        .ingest_all(
            clean.tenant,
            synthetic_events(&spec, 0),
            Duration::from_micros(200),
        )
        .expect("clean ingest");
    // The dirty stream is a lost update: both transactions read the initial
    // version of key 0, then both overwrite it.
    use mtc_dbsim::IngestEvent;
    use mtc_history::{Op, TxnStatus};
    let lost_update = vec![
        IngestEvent::timed(
            0,
            vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)],
            TxnStatus::Committed,
            1,
            4,
        ),
        IngestEvent::timed(
            1,
            vec![Op::read(0u64, 0u64), Op::write(0u64, 2u64)],
            TxnStatus::Committed,
            2,
            6,
        ),
    ];
    client
        .ingest_all(dirty.tenant, lost_update, Duration::from_micros(200))
        .expect("dirty ingest");

    let dirty_summary = client.close_tenant(dirty.tenant).expect("close dirty");
    assert!(dirty_summary.violated, "the lost update must be caught");
    let clean_summary = client.close_tenant(clean.tenant).expect("close clean");
    assert!(
        !clean_summary.violated,
        "a neighbour's violation must not leak"
    );
    assert_eq!(clean_summary.checked, spec.events_per_tenant());
    server.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&root);
}

// ───────────────────────── kill/resume harness ─────────────────────────────

fn spawn_daemon(root: &Path, extra: &[&str]) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_mtc_service_server"))
        .arg("--root")
        .arg(root)
        .args(extra)
        .stdout(Stdio::piped())
        .spawn()
        .expect("daemon binary spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("daemon announces its address");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .expect("announcement format")
        .parse()
        .expect("announced address parses");
    (child, addr)
}

fn sigkill(child: &mut Child) {
    let _ = Command::new("kill")
        .args(["-9", &child.id().to_string()])
        .status();
    let _ = child.wait();
}

/// SIGKILL the real daemon binary mid-ingest, then: (a) prove offline that
/// resuming from the newest checkpoint plus tail replay reaches the same
/// verdict as a clean full replay of the log, and (b) restart the daemon on
/// the same root, re-send the unlogged suffix, and close to a clean verdict
/// over every event.
#[test]
fn sigkill_resume_matches_clean_replay() {
    let root = temp_root("sigkill");
    std::fs::create_dir_all(&root).expect("root");
    let (mut child, addr) = spawn_daemon(&root, &["--checkpoint-every", "32"]);

    let spec = LoadSpec {
        sessions: 2,
        txns_per_session: 80,
        num_keys: 8,
        batch: 16,
        ..Default::default()
    };
    let events = synthetic_events(&spec, 0);
    let mut client = ServiceClient::connect(addr).expect("connect");
    let open = client
        .open_tenant("phoenix", spec.level, spec.num_keys)
        .expect("open");
    // Send the first half, then wait until at least one checkpoint exists so
    // the resume below genuinely starts from a snapshot.
    let half = events.len() / 2;
    client
        .ingest_all(
            open.tenant,
            events[..half].to_vec(),
            Duration::from_micros(200),
        )
        .expect("first half");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let status = client.status(open.tenant).expect("status");
        if status.checkpoints >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no checkpoint after 10s (drained {})",
            status.checked
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    sigkill(&mut child);
    drop(client);

    // (a) Offline: checkpoint + tail replay ≡ clean replay of the whole log.
    let dir = root.join("phoenix");
    let recovery = mtc_store::recover(&dir).expect("recover");
    let logged = recovery.txns.len();
    assert!(logged <= half, "only WAL'd events survive the kill");
    let clean = mtc_core::check_streaming(spec.level, &recovery.to_history())
        .expect("clean replay in domain");
    let mut resumed = match &recovery.snapshot {
        Some(snapshot) => mtc_core::IncrementalChecker::resume(snapshot.clone()),
        None => mtc_core::IncrementalChecker::new(spec.level).with_init_keys(0..spec.num_keys),
    };
    assert!(
        recovery.snapshot.is_some(),
        "the checkpoint poll above guarantees a snapshot"
    );
    for txn in recovery.tail() {
        resumed.push(txn.clone()).expect("tail replays");
    }
    let resumed_verdict = resumed.finish().expect("resumed replay in domain");
    assert_eq!(
        clean, resumed_verdict,
        "checkpoint resume must be bit-identical to a clean replay"
    );

    // (b) Restart the daemon on the same root and finish the stream.
    let (mut child, addr) = spawn_daemon(&root, &["--checkpoint-every", "32"]);
    let mut client = ServiceClient::connect(addr).expect("reconnect");
    let open = client
        .open_tenant("phoenix", spec.level, spec.num_keys)
        .expect("reopen");
    assert_eq!(open.resumed_txns, logged as u64);
    assert!(
        open.from_checkpoint,
        "the reopen must start from the snapshot"
    );
    client
        .ingest_all(
            open.tenant,
            events[logged..].to_vec(),
            Duration::from_micros(200),
        )
        .expect("suffix");
    let summary = client.close_tenant(open.tenant).expect("close");
    assert_eq!(summary.checked, events.len() as u64);
    assert!(!summary.violated);
    sigkill(&mut child);
    let _ = std::fs::remove_dir_all(&root);
}
