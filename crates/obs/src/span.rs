//! Scoped span timers with thread-local sample buffers.
//!
//! A [`span`] captures `Instant::now()` when created (only if
//! observability is on — otherwise it is `None` and costs one branch) and
//! on drop pushes its elapsed microseconds into a thread-local buffer.
//! The buffer flushes into the target histograms every
//! [`FLUSH_EVERY`] samples and when the thread exits, so a burst of short
//! spans amortizes the shared-atomic traffic instead of paying it per
//! span. Call [`flush_spans`] before snapshotting if the last few samples
//! on the current thread matter.

use crate::metrics::Histogram;
use std::cell::RefCell;
use std::time::Instant;

/// Buffered samples per thread before an automatic flush.
const FLUSH_EVERY: usize = 64;

struct SpanBuf {
    samples: Vec<(&'static Histogram, u64)>,
}

impl SpanBuf {
    fn push(&mut self, hist: &'static Histogram, micros: u64) {
        self.samples.push((hist, micros));
        if self.samples.len() >= FLUSH_EVERY {
            self.flush();
        }
    }

    fn flush(&mut self) {
        for (hist, micros) in self.samples.drain(..) {
            // `record_always`: the sample was admitted while the switch
            // was on; a concurrent disable must not drop it.
            hist.record_always(micros);
        }
    }
}

impl Drop for SpanBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static BUF: RefCell<SpanBuf> = RefCell::new(SpanBuf {
        samples: Vec::with_capacity(FLUSH_EVERY),
    });
}

/// A live span: observes its elapsed wall-clock microseconds into the
/// target histogram when dropped.
pub struct SpanTimer {
    hist: &'static Histogram,
    start: Instant,
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        let micros = self.start.elapsed().as_micros() as u64;
        let _ = BUF.try_with(|b| b.borrow_mut().push(self.hist, micros));
    }
}

/// Starts a span against `hist`. Returns `None` (and reads no clock) while
/// observability is disabled — bind the result to keep the span alive:
///
/// ```
/// let hist = mtc_obs::registry().histogram("doc.work_micros");
/// let _span = mtc_obs::span(hist);
/// // ... timed work ...
/// ```
#[inline]
pub fn span(hist: &'static Histogram) -> Option<SpanTimer> {
    if !crate::enabled() {
        return None;
    }
    Some(SpanTimer {
        hist,
        start: Instant::now(),
    })
}

/// Drains the calling thread's span buffer into its histograms. Snapshots
/// only see flushed samples; call this before scraping if the tail of a
/// burst matters (the daemons do it at the end of each drain pass).
pub fn flush_spans() {
    let _ = BUF.try_with(|b| b.borrow_mut().flush());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::with_enabled;

    #[test]
    fn spans_record_after_flush() {
        let _on = with_enabled(true);
        let hist = crate::registry().histogram("test.span.lat");
        hist.reset();
        for _ in 0..10 {
            let _span = span(hist);
        }
        flush_spans();
        assert_eq!(hist.count(), 10);
    }

    #[test]
    fn buffer_auto_flushes_when_full() {
        let _on = with_enabled(true);
        let hist = crate::registry().histogram("test.span.auto");
        hist.reset();
        for _ in 0..FLUSH_EVERY {
            let _span = span(hist);
        }
        // The 64th drop crossed the threshold — no explicit flush needed.
        assert_eq!(hist.count(), FLUSH_EVERY as u64);
    }

    #[test]
    fn disabled_span_is_none() {
        let _off = with_enabled(false);
        let hist = crate::registry().histogram("test.span.off");
        assert!(span(hist).is_none());
    }
}
