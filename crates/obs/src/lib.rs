//! Process-wide metrics and tracing for the MTC stack.
//!
//! Everything here is built around one invariant: **when observability is
//! disabled, instrumented code must behave exactly like uninstrumented
//! code** — the hot paths pay one relaxed [`AtomicBool`] load and a
//! predictable branch, nothing else. Flip the switch with [`set_enabled`]
//! (the daemons do it at startup; libraries never touch it) and the same
//! call sites start recording.
//!
//! The building blocks:
//!
//! * [`Counter`] — monotone event count, striped across cache lines so N
//!   ingest threads don't serialize on one `fetch_add` destination.
//! * [`Gauge`] — instantaneous level (queue depth, live connections),
//!   striped signed deltas summed on read.
//! * [`Histogram`] — fixed-footprint log-linear buckets (32 sub-buckets
//!   per power-of-two octave, ≤ ~1.6% quantile quantization) with lock-free
//!   recording and p50/p90/p99 snapshots.
//! * [`span`] / [`SpanTimer`] — scoped wall-clock timers that observe
//!   their elapsed time into a histogram on drop, buffered thread-locally
//!   so a burst of short spans costs one atomic flush per 64 samples.
//! * [`registry`] — the global name → metric table. Handles are
//!   `&'static` (metrics are leaked once and live forever), so call sites
//!   resolve a name once and then touch pure atomics. The [`counter!`],
//!   [`gauge!`] and [`histogram!`] macros cache the lookup in a per-site
//!   `OnceLock` for static names; per-tenant metrics resolve dynamically
//!   and store the handle in the tenant struct.
//! * [`MetricsSnapshot`] — a serializable point-in-time view of every
//!   registered metric, served over the wire by the daemons.
//! * [`events`] — a structured JSONL event log (startup, connections,
//!   tenant lifecycle, violations) that is off by default and routes to
//!   stderr or a file when a binary opts in.
//!
//! [`AtomicBool`]: std::sync::atomic::AtomicBool

mod metrics;
mod registry;
mod span;

pub mod events;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{registry, MetricsSnapshot, Registry};
pub use span::{flush_spans, span, SpanTimer};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Test-only support for flipping the global switch without races: tests
/// that toggle [`set_enabled`] run in parallel threads within one binary,
/// so they serialize on this guard. Not part of the public API.
#[doc(hidden)]
pub mod test_support {
    use std::sync::{Mutex, MutexGuard, OnceLock};

    fn lock() -> &'static Mutex<()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
    }

    /// Holds the toggle lock, sets the switch, and restores the previous
    /// state on drop.
    pub struct EnabledGuard {
        was: bool,
        _guard: MutexGuard<'static, ()>,
    }

    /// Serializes the caller against other switch-toggling tests and sets
    /// the switch to `on` until the guard drops.
    pub fn with_enabled(on: bool) -> EnabledGuard {
        let guard = lock().lock().unwrap_or_else(|e| e.into_inner());
        let was = crate::enabled();
        crate::set_enabled(on);
        EnabledGuard { was, _guard: guard }
    }

    impl Drop for EnabledGuard {
        fn drop(&mut self) {
            crate::set_enabled(self.was);
        }
    }
}

/// Turns metric recording on or off process-wide.
///
/// Off (the default) every [`Counter::add`], [`Gauge::add`],
/// [`Histogram::record`] and [`span`] is a relaxed load plus an untaken
/// branch. Binaries that want observability (the daemons, the bench
/// gate's instrumented series) flip this once at startup; libraries never
/// call it.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether metric recording is currently on.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Resolves (once per call site) a named [`Counter`] from the global
/// registry. The name must be a `&'static str`-valued expression that is
/// stable across calls — the lookup is cached in a per-site `OnceLock`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static SITE: std::sync::OnceLock<&'static $crate::Counter> = std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::registry().counter($name))
    }};
}

/// Resolves (once per call site) a named [`Gauge`] from the global
/// registry. See [`counter!`] for the caching contract.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static SITE: std::sync::OnceLock<&'static $crate::Gauge> = std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::registry().gauge($name))
    }};
}

/// Resolves (once per call site) a named [`Histogram`] from the global
/// registry. See [`counter!`] for the caching contract.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static SITE: std::sync::OnceLock<&'static $crate::Histogram> = std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::registry().histogram($name))
    }};
}
