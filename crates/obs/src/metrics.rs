//! The metric primitives: striped counters and gauges, log-linear
//! histograms.
//!
//! All three share the recording contract: mutation methods are gated on
//! [`crate::enabled`] and become a relaxed load + untaken branch when
//! observability is off; read methods (`get`, `snapshot`) always work and
//! simply report whatever was recorded while it was on.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};

/// Stripes per counter/gauge. Threads hash onto stripes by a thread-local
/// ticket, so with ≤ 16 hot threads every thread owns its own cache line.
const STRIPES: usize = 16;

/// One cache line worth of atomic counter, so adjacent stripes never
/// false-share.
#[repr(align(64))]
struct Stripe(AtomicU64);

impl Stripe {
    // Interior mutability is the point: this const exists only as the
    // `[Stripe::ZERO; STRIPES]` array initializer inside `const fn new`,
    // where each use instantiates a fresh atomic.
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: Stripe = Stripe(AtomicU64::new(0));
}

static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

#[inline]
fn stripe_of_thread() -> usize {
    thread_local! {
        static TICKET: usize = NEXT_THREAD.fetch_add(1, Relaxed);
    }
    TICKET.with(|t| *t) & (STRIPES - 1)
}

/// A monotone event counter, striped across cache lines.
///
/// `add` is one relaxed `fetch_add` on the calling thread's stripe;
/// `get` sums the stripes. Successive `get`s are non-decreasing (the
/// stripes only grow).
pub struct Counter {
    stripes: [Stripe; STRIPES],
}

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Counter {
            stripes: [Stripe::ZERO; STRIPES],
        }
    }

    /// Adds `n` events. No-op while observability is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.stripes[stripe_of_thread()].0.fetch_add(n, Relaxed);
    }

    /// Adds one event. No-op while observability is disabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The total recorded so far.
    pub fn get(&self) -> u64 {
        self.stripes.iter().map(|s| s.0.load(Relaxed)).sum()
    }

    /// Zeroes the counter (bench/test support; racing `add`s may survive).
    pub fn reset(&self) {
        for s in &self.stripes {
            s.0.store(0, Relaxed);
        }
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// An instantaneous level (queue depth, open connections): striped signed
/// deltas, summed on read. `add`/`sub` pair up across threads, so the sum
/// tracks the true level even when the incrementing and decrementing
/// threads differ.
pub struct Gauge {
    stripes: [Stripe; STRIPES],
}

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Self {
        Gauge {
            stripes: [Stripe::ZERO; STRIPES],
        }
    }

    /// Raises the level by `n`. No-op while observability is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.stripes[stripe_of_thread()].0.fetch_add(n, Relaxed);
    }

    /// Lowers the level by `n`. No-op while observability is disabled.
    #[inline]
    pub fn sub(&self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.stripes[stripe_of_thread()].0.fetch_sub(n, Relaxed);
    }

    /// The current level. Clamped at zero: a `sub` that raced ahead of its
    /// paired `add` (or deltas recorded while the switch flipped) can make
    /// the transient sum negative.
    pub fn get(&self) -> i64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Relaxed) as i64)
            .sum::<i64>()
            .max(0)
    }

    /// Zeroes the gauge (bench/test support).
    pub fn reset(&self) {
        for s in &self.stripes {
            s.0.store(0, Relaxed);
        }
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

/// Sub-buckets per power-of-two octave: 2^5 = 32, bounding quantile
/// quantization error at half a sub-bucket width ≈ 1.6%.
const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS;
/// Bucket count: `SUB` exact buckets for values < 32, then 32 sub-buckets
/// for each of the 59 octaves with top bit 5..=63.
const BUCKETS: usize = SUB + (64 - 1 - SUB_BITS as usize) * SUB + SUB;

/// A lock-free log-linear latency/size histogram.
///
/// Values below 32 land in exact buckets; above that, each power-of-two
/// octave splits into 32 linear sub-buckets, so quantile estimates are
/// within ~1.6% of the true value at any magnitude — tight enough that a
/// histogram-derived p99 agrees with an exactly-measured p99 well inside
/// 10%. The footprint is fixed (~15 KiB of atomics) regardless of range.
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    ((msb - SUB_BITS) as usize) * SUB + SUB + ((v >> shift) as usize & (SUB - 1))
}

/// The midpoint of bucket `idx` — the value a quantile query reports for
/// samples that landed there.
fn bucket_value(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let octave = (idx - SUB) / SUB;
    let sub = ((idx - SUB) % SUB) as u64;
    let lower = (1u64 << (octave as u32 + SUB_BITS)) + (sub << octave);
    lower + ((1u64 << octave) >> 1)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        // `AtomicU64` is not `Copy`; build the boxed array through a Vec.
        let v: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKETS]> =
            v.into_boxed_slice().try_into().unwrap_or_else(|_| {
                unreachable!("vec built with BUCKETS elements");
            });
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. No-op while observability is disabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.record_always(v);
    }

    /// Records one sample regardless of the global switch. Used by the
    /// span buffer flush (samples were admitted while the switch was on)
    /// and by tests.
    pub fn record_always(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.min.fetch_min(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Samples recorded so far. Non-decreasing across successive calls.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Adds every sample recorded in `other` into this histogram. Both
    /// histograms share the fixed bucket layout, so the merge is exact:
    /// bucket-wise addition plus min/max widening. Used to aggregate
    /// per-worker or per-tenant histograms into a fleet-wide one.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Relaxed);
            if n > 0 {
                mine.fetch_add(n, Relaxed);
            }
        }
        self.count.fetch_add(other.count.load(Relaxed), Relaxed);
        self.sum.fetch_add(other.sum.load(Relaxed), Relaxed);
        // An empty `other` holds min = u64::MAX / max = 0; both merges are
        // then no-ops, so emptiness needs no special case.
        self.min.fetch_min(other.min.load(Relaxed), Relaxed);
        self.max.fetch_max(other.max.load(Relaxed), Relaxed);
    }

    /// A point-in-time summary. Concurrent recording is fine: the summary
    /// is built from a relaxed sweep, and `count` never decreases between
    /// successive snapshots.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u32, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Relaxed);
                (c > 0).then_some((i as u32, c))
            })
            .collect();
        let count: u64 = buckets.iter().map(|&(_, c)| c).sum();
        let raw_min = self.min.load(Relaxed);
        let min = if raw_min == u64::MAX { 0 } else { raw_min };
        let max = self.max.load(Relaxed);
        let (p50, p90, p99) = quantiles_from(&buckets, count, min, max);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Relaxed),
            min,
            max,
            p50,
            p90,
            p99,
            buckets,
        }
    }

    /// Empties the histogram (bench/test support; racing `record`s may
    /// survive).
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Relaxed);
        }
        self.count.store(0, Relaxed);
        self.sum.store(0, Relaxed);
        self.min.store(u64::MAX, Relaxed);
        self.max.store(0, Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .finish_non_exhaustive()
    }
}

/// Quantile estimates over a sparse `(bucket index, count)` list, clamped
/// into `[min, max]` (bucket midpoints can overshoot the exact extremes).
fn quantiles_from(buckets: &[(u32, u64)], count: u64, min: u64, max: u64) -> (u64, u64, u64) {
    let quantile = |q: f64| -> u64 {
        if count == 0 {
            return 0;
        }
        let target = ((count as f64 - 1.0) * q).round() as u64;
        let mut seen = 0u64;
        for &(i, c) in buckets {
            seen += c;
            if seen > target {
                return bucket_value(i as usize);
            }
        }
        bucket_value(BUCKETS - 1)
    };
    let clamped = |q: f64| quantile(q).clamp(min, max.max(min));
    (clamped(0.50), clamped(0.90), clamped(0.99))
}

/// A point-in-time summary of one [`Histogram`]: sample count, sum, exact
/// min/max, log-linear-estimated quantiles (≤ ~1.6% off), and the sparse
/// bucket counts the quantiles were computed from. Carrying the buckets
/// makes snapshots *mergeable*: aggregating scrapes from several workers
/// (or daemons) yields the same quantiles the union of their samples
/// would.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (mean = `sum / count`).
    pub sum: u64,
    /// Smallest sample (exact; 0 when empty).
    pub min: u64,
    /// Largest sample (exact).
    pub max: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
    /// Sparse `(bucket index, samples)` pairs, ascending by index; only
    /// non-empty buckets appear.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Folds `other` into this snapshot: counts and sums add, extremes
    /// widen, bucket lists union (both share the fixed layout, so the
    /// merge is exact), and the quantiles are recomputed from the merged
    /// buckets.
    pub fn merge_from(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ai, ac)), Some(&&(bi, bc))) => {
                    if ai < bi {
                        merged.push((ai, ac));
                        a.next();
                    } else if bi < ai {
                        merged.push((bi, bc));
                        b.next();
                    } else {
                        merged.push((ai, ac + bc));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    merged.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        let (p50, p90, p99) = quantiles_from(&merged, self.count, self.min, self.max);
        self.p50 = p50;
        self.p90 = p90;
        self.p99 = p99;
        self.buckets = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::test_support::with_enabled;

    #[test]
    fn bucket_roundtrip_error_is_bounded() {
        for shift in 0..60 {
            for off in [0u64, 1, 7] {
                let v = (1u64 << shift) + off;
                let est = bucket_value(bucket_index(v));
                let err = (est as f64 - v as f64).abs() / v.max(1) as f64;
                assert!(err <= 0.016, "v={v} est={est} err={err}");
            }
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut last = 0usize;
        for shift in 0..64u32 {
            let v = 1u64 << shift;
            for probe in [v, v + v / 3, v + v / 2] {
                let idx = bucket_index(probe);
                assert!(idx < BUCKETS);
                assert!(idx >= last, "index regressed at {probe}");
                last = idx;
            }
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn disabled_records_nothing() {
        let _off = with_enabled(false);
        let c = Counter::new();
        c.inc();
        assert_eq!(c.get(), 0);
        let h = Histogram::new();
        h.record(42);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn quantiles_track_known_distribution() {
        let _on = with_enabled(true);
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10_000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 10_000);
        for (q, expect) in [(s.p50, 5_000.0), (s.p90, 9_000.0), (s.p99, 9_900.0)] {
            let err = (q as f64 - expect).abs() / expect;
            assert!(err < 0.02, "quantile {q} vs {expect}: err {err}");
        }
    }

    #[test]
    fn histogram_merge_matches_recording_everything_in_one() {
        let _on = with_enabled(true);
        let (a, b, both) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in 1..=5_000u64 {
            a.record(v);
            both.record(v);
        }
        for v in 5_001..=10_000u64 {
            b.record(v * 7);
            both.record(v * 7);
        }
        a.merge_from(&b);
        assert_eq!(a.snapshot(), both.snapshot(), "live merge must be exact");
        // Merging an empty histogram changes nothing.
        let before = a.snapshot();
        a.merge_from(&Histogram::new());
        assert_eq!(a.snapshot(), before);
    }

    #[test]
    fn snapshot_merge_aligns_buckets_exactly() {
        let _on = with_enabled(true);
        let (a, b, both) = (Histogram::new(), Histogram::new(), Histogram::new());
        // Interleaved magnitudes, so the sparse lists overlap on some
        // buckets and are disjoint on others.
        for v in [1u64, 3, 31, 32, 33, 1000, 1_000_000] {
            a.record(v);
            both.record(v);
        }
        for v in [3u64, 17, 33, 999, 1000, 50_000_000] {
            b.record(v);
            both.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge_from(&b.snapshot());
        assert_eq!(merged, both.snapshot(), "snapshot merge must be exact");
        assert!(
            merged.buckets.windows(2).all(|w| w[0].0 < w[1].0),
            "merged bucket list must stay strictly ascending"
        );
        // Empty edges: empty ← x clones, x ← empty is a no-op.
        let mut empty = HistogramSnapshot::default();
        empty.merge_from(&merged);
        assert_eq!(empty, merged);
        let before = merged.clone();
        merged.merge_from(&HistogramSnapshot::default());
        assert_eq!(merged, before);
    }

    #[test]
    fn gauge_tracks_level_across_threads() {
        let _on = with_enabled(true);
        let g = Gauge::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        g.add(3);
                        g.sub(3);
                    }
                    g.add(5);
                });
            }
        });
        assert_eq!(g.get(), 20);
    }
}
