//! The global metric registry: name → `&'static` metric.
//!
//! Metrics are registered on first use and leaked, so handles are plain
//! `'static` references and the hot path never touches the table — call
//! sites resolve a name once (the [`counter!`]/[`gauge!`]/[`histogram!`]
//! macros cache static names per site; per-tenant code stores the handle
//! next to the tenant). Dynamic names are fine: a tenant that opens,
//! closes and reopens reuses the same leaked metric.
//!
//! [`counter!`]: crate::counter!
//! [`gauge!`]: crate::gauge!
//! [`histogram!`]: crate::histogram!

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::{OnceLock, RwLock};

/// The process-wide name → metric table. Obtain it via [`registry`].
#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, &'static Counter>>,
    gauges: RwLock<BTreeMap<String, &'static Gauge>>,
    histograms: RwLock<BTreeMap<String, &'static Histogram>>,
}

/// The global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

fn get_or_leak<T: Default>(table: &RwLock<BTreeMap<String, &'static T>>, name: &str) -> &'static T {
    if let Some(m) = table.read().unwrap_or_else(|e| e.into_inner()).get(name) {
        return m;
    }
    let mut w = table.write().unwrap_or_else(|e| e.into_inner());
    w.entry(name.to_string())
        .or_insert_with(|| Box::leak(Box::new(T::default())))
}

impl Registry {
    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> &'static Counter {
        get_or_leak(&self.counters, name)
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        get_or_leak(&self.gauges, name)
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        get_or_leak(&self.histograms, name)
    }

    /// A point-in-time view of every registered metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(n, g)| (n.clone(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(n, h)| (n.clone(), h.snapshot()))
            .collect();
        MetricsSnapshot {
            enabled: crate::enabled(),
            counters,
            gauges,
            histograms,
        }
    }

    /// Zeroes every registered metric (bench/test support). Registration
    /// survives — only the recorded values are cleared.
    pub fn reset(&self) {
        for c in self
            .counters
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            c.reset();
        }
        for g in self
            .gauges
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            g.reset();
        }
        for h in self
            .histograms
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            h.reset();
        }
    }
}

/// A serializable point-in-time view of the registry, served over the
/// wire by the daemons (`Request::MetricsSnapshot`) and printed by the
/// `--metrics-json` scrape mode.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Whether recording was on when the snapshot was taken. A scrape of
    /// a daemon that never enabled observability returns all-zero
    /// metrics; this flag tells the operator why.
    pub enabled: bool,
    /// `(name, total)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)` for every gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, summary)` for every histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// The value of counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The level of gauge `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The summary of histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    /// Folds another snapshot into this one, by metric name: counters and
    /// gauges add, histograms bucket-merge (see
    /// [`HistogramSnapshot::merge_from`]), and metrics present in only one
    /// snapshot carry over. Used to aggregate scrapes from several daemons
    /// or workers into one fleet view; name ordering is preserved.
    pub fn merge_from(&mut self, other: &MetricsSnapshot) {
        fn union<V, M: Fn(&mut V, &V)>(
            mine: &mut Vec<(String, V)>,
            theirs: &[(String, V)],
            merge: M,
        ) where
            V: Clone,
        {
            let mut merged: BTreeMap<String, V> = mine.drain(..).collect();
            for (name, v) in theirs {
                match merged.get_mut(name) {
                    Some(existing) => merge(existing, v),
                    None => {
                        merged.insert(name.clone(), v.clone());
                    }
                }
            }
            mine.extend(merged);
        }
        self.enabled |= other.enabled;
        union(&mut self.counters, &other.counters, |a, b| *a += *b);
        union(&mut self.gauges, &other.gauges, |a, b| *a += *b);
        union(&mut self.histograms, &other.histograms, |a, b| {
            a.merge_from(b)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::with_enabled;

    #[test]
    fn registry_reuses_and_snapshots() {
        let _on = with_enabled(true);
        let c = registry().counter("test.registry.hits");
        let again = registry().counter("test.registry.hits");
        assert!(std::ptr::eq(c, again), "same name must yield same metric");
        c.reset();
        c.add(7);
        registry().histogram("test.registry.lat").record(100);
        let snap = registry().snapshot();
        assert_eq!(snap.counter("test.registry.hits"), Some(7));
        assert!(snap.histogram("test.registry.lat").unwrap().count >= 1);
        assert_eq!(snap.counter("test.registry.absent"), None);
    }

    #[test]
    fn metrics_snapshots_merge_by_name() {
        let _on = with_enabled(true);
        let hist = |values: &[u64]| {
            let h = crate::metrics::Histogram::new();
            for &v in values {
                h.record(v);
            }
            h.snapshot()
        };
        let mut a = MetricsSnapshot {
            enabled: false,
            counters: vec![("both".into(), 10), ("only_a".into(), 1)],
            gauges: vec![("depth".into(), 5)],
            histograms: vec![("lat".into(), hist(&[10, 20, 30]))],
        };
        let b = MetricsSnapshot {
            enabled: true,
            counters: vec![("both".into(), 32), ("only_b".into(), 2)],
            gauges: vec![("depth".into(), -3)],
            histograms: vec![
                ("lat".into(), hist(&[40, 50])),
                ("extra".into(), hist(&[7])),
            ],
        };
        a.merge_from(&b);
        assert!(a.enabled);
        assert_eq!(a.counter("both"), Some(42));
        assert_eq!(a.counter("only_a"), Some(1));
        assert_eq!(a.counter("only_b"), Some(2));
        assert_eq!(a.gauge("depth"), Some(2));
        let lat = a.histogram("lat").unwrap();
        assert_eq!((lat.count, lat.min, lat.max), (5, 10, 50));
        assert_eq!(lat, &hist(&[10, 20, 30, 40, 50]), "exact bucket union");
        assert_eq!(a.histogram("extra").unwrap().count, 1);
        // Sorted-by-name invariant survives the union.
        assert!(a.counters.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(a.histograms.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
