//! A structured JSONL event log.
//!
//! One JSON object per line, written to a sink the *binary* chooses —
//! libraries call [`emit`] and pay nothing while no sink is installed
//! (the default). The daemons route lifecycle events (startup, connection
//! accepted, tenant open/close) and violation reports here so operators
//! get machine-parseable logs instead of ad-hoc `eprintln!`s.
//!
//! Every line carries `ts_micros` (wall clock, microseconds since the
//! Unix epoch) and `event` (the kind), then the caller's fields in order:
//!
//! ```json
//! {"ts_micros":1754650000000000,"event":"startup","role":"mtc-service","addr":"127.0.0.1:7777"}
//! ```

pub use serde::JsonValue;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// A file sink, optionally size-rotated.
struct FileSink {
    file: File,
    path: PathBuf,
    /// Bytes in the live file (seeded from its length on open).
    written: u64,
    /// Rotation config: rollover threshold and how many rotated files to
    /// retain. `None` grows one file without bound.
    rotate: Option<(u64, usize)>,
}

enum Sink {
    Off,
    Stderr,
    File(FileSink),
}

static SINK: Mutex<Sink> = Mutex::new(Sink::Off);

/// Routes events to stderr (one JSON object per line).
pub fn log_to_stderr() {
    *SINK.lock().unwrap_or_else(|e| e.into_inner()) = Sink::Stderr;
}

fn open_sink(path: &Path, rotate: Option<(u64, usize)>) -> io::Result<FileSink> {
    let file = OpenOptions::new().create(true).append(true).open(path)?;
    let written = file.metadata().map(|m| m.len()).unwrap_or(0);
    Ok(FileSink {
        file,
        path: path.to_path_buf(),
        written,
        rotate,
    })
}

/// Routes events to `path`, appending (one JSON object per line). The file
/// grows without bound; long-running daemons should prefer
/// [`log_to_file_rotating`].
pub fn log_to_file(path: &Path) -> io::Result<()> {
    let sink = open_sink(path, None)?;
    *SINK.lock().unwrap_or_else(|e| e.into_inner()) = Sink::File(sink);
    Ok(())
}

/// Routes events to `path` with size-based rotation: once the live file
/// exceeds `max_bytes`, it rolls to `<path>.1` (older generations shift to
/// `.2`, `.3`, …) and a fresh file is started. At most `keep` rotated
/// generations are retained, so the log's disk footprint is bounded by
/// roughly `(keep + 1) * max_bytes`. Lines are never split across files.
pub fn log_to_file_rotating(path: &Path, max_bytes: u64, keep: usize) -> io::Result<()> {
    let sink = open_sink(path, Some((max_bytes.max(1), keep.max(1))))?;
    *SINK.lock().unwrap_or_else(|e| e.into_inner()) = Sink::File(sink);
    Ok(())
}

/// The path of rotated generation `n` (1-based): `events.jsonl.3`.
fn generation(path: &Path, n: usize) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(format!(".{n}"));
    PathBuf::from(name)
}

impl FileSink {
    /// Rolls the live file into generation 1, shifting older generations
    /// up and dropping the one past `keep`, then reopens a fresh live
    /// file. Rotation failures leave the current file in place (events
    /// keep flowing into it; the next threshold crossing retries).
    fn rotate_now(&mut self, keep: usize) -> io::Result<()> {
        let _ = std::fs::remove_file(generation(&self.path, keep));
        for n in (1..keep).rev() {
            let from = generation(&self.path, n);
            if from.exists() {
                let _ = std::fs::rename(&from, generation(&self.path, n + 1));
            }
        }
        std::fs::rename(&self.path, generation(&self.path, 1))?;
        let fresh = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        self.file = fresh;
        self.written = 0;
        Ok(())
    }
}

/// Stops routing events (the default state).
pub fn disable() {
    *SINK.lock().unwrap_or_else(|e| e.into_inner()) = Sink::Off;
}

/// Emits one event line. A no-op (one mutex lock) while no sink is
/// installed; events are rare (lifecycle + violations), so the lock is
/// never contended on a hot path.
pub fn emit(kind: &str, fields: &[(&str, JsonValue)]) {
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    if matches!(*sink, Sink::Off) {
        return;
    }
    let ts = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    let mut entries = Vec::with_capacity(fields.len() + 2);
    entries.push(("ts_micros".to_string(), JsonValue::U64(ts)));
    entries.push(("event".to_string(), JsonValue::Str(kind.to_string())));
    for (k, v) in fields {
        entries.push((k.to_string(), v.clone()));
    }
    let mut line = String::new();
    JsonValue::Object(entries).render(&mut line);
    line.push('\n');
    // Lifecycle events should be visible promptly; write + flush per line.
    let _ = match &mut *sink {
        Sink::Off => Ok(()),
        Sink::Stderr => io::stderr().write_all(line.as_bytes()),
        Sink::File(f) => f
            .file
            .write_all(line.as_bytes())
            .and_then(|()| f.file.flush())
            .and_then(|()| {
                f.written += line.len() as u64;
                match f.rotate {
                    Some((max_bytes, keep)) if f.written >= max_bytes => f.rotate_now(keep),
                    _ => Ok(()),
                }
            }),
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test body: these share the global sink, so they must not run in
    // parallel test threads.
    #[test]
    fn file_sink_writes_one_json_line_per_event() {
        emit("dropped-while-off", &[]); // default sink: no-op

        let dir = std::env::temp_dir().join(format!("mtc-obs-events-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let _ = std::fs::remove_file(&path);
        log_to_file(&path).unwrap();
        emit(
            "unit-test",
            &[
                ("tenant", JsonValue::Str("t0".into())),
                ("checked", JsonValue::U64(42)),
            ],
        );
        disable();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1);
        let line = lines[0];
        assert!(line.starts_with("{\"ts_micros\":"), "line: {line}");
        assert!(line.contains("\"event\":\"unit-test\""), "line: {line}");
        assert!(line.contains("\"tenant\":\"t0\""), "line: {line}");
        assert!(line.contains("\"checked\":42"), "line: {line}");
        let _ = std::fs::remove_file(&path);

        // Rotation: a tiny threshold forces a roll on every line; with
        // keep=2 only two rotated generations may survive, and every
        // retained file holds whole lines.
        let rot = dir.join("rotating.jsonl");
        for n in 0..5 {
            let _ = std::fs::remove_file(generation(&rot, n + 1));
        }
        let _ = std::fs::remove_file(&rot);
        log_to_file_rotating(&rot, 16, 2).unwrap();
        for i in 0..5u64 {
            emit("rot", &[("i", JsonValue::U64(i))]);
        }
        disable();
        assert!(generation(&rot, 1).exists());
        assert!(generation(&rot, 2).exists());
        assert!(
            !generation(&rot, 3).exists(),
            "keep=2 must bound retained generations"
        );
        // Newest rotated generation holds the second-newest line, intact.
        let g1 = std::fs::read_to_string(generation(&rot, 1)).unwrap();
        assert_eq!(g1.lines().count(), 1);
        assert!(g1.contains("\"i\":4"), "g1: {g1}");
        assert!(g1.ends_with('\n'), "lines must never split across files");
        let g2 = std::fs::read_to_string(generation(&rot, 2)).unwrap();
        assert!(g2.contains("\"i\":3"), "g2: {g2}");
        // The live file is empty (the last line crossed the threshold and
        // rolled); re-opening with rotation seeds `written` from its size.
        assert_eq!(std::fs::read_to_string(&rot).unwrap(), "");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
