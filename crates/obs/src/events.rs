//! A structured JSONL event log.
//!
//! One JSON object per line, written to a sink the *binary* chooses —
//! libraries call [`emit`] and pay nothing while no sink is installed
//! (the default). The daemons route lifecycle events (startup, connection
//! accepted, tenant open/close) and violation reports here so operators
//! get machine-parseable logs instead of ad-hoc `eprintln!`s.
//!
//! Every line carries `ts_micros` (wall clock, microseconds since the
//! Unix epoch) and `event` (the kind), then the caller's fields in order:
//!
//! ```json
//! {"ts_micros":1754650000000000,"event":"startup","role":"mtc-service","addr":"127.0.0.1:7777"}
//! ```

pub use serde::JsonValue;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

enum Sink {
    Off,
    Stderr,
    File(File),
}

static SINK: Mutex<Sink> = Mutex::new(Sink::Off);

/// Routes events to stderr (one JSON object per line).
pub fn log_to_stderr() {
    *SINK.lock().unwrap_or_else(|e| e.into_inner()) = Sink::Stderr;
}

/// Routes events to `path`, appending (one JSON object per line).
pub fn log_to_file(path: &std::path::Path) -> io::Result<()> {
    let file = OpenOptions::new().create(true).append(true).open(path)?;
    *SINK.lock().unwrap_or_else(|e| e.into_inner()) = Sink::File(file);
    Ok(())
}

/// Stops routing events (the default state).
pub fn disable() {
    *SINK.lock().unwrap_or_else(|e| e.into_inner()) = Sink::Off;
}

/// Emits one event line. A no-op (one mutex lock) while no sink is
/// installed; events are rare (lifecycle + violations), so the lock is
/// never contended on a hot path.
pub fn emit(kind: &str, fields: &[(&str, JsonValue)]) {
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    if matches!(*sink, Sink::Off) {
        return;
    }
    let ts = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    let mut entries = Vec::with_capacity(fields.len() + 2);
    entries.push(("ts_micros".to_string(), JsonValue::U64(ts)));
    entries.push(("event".to_string(), JsonValue::Str(kind.to_string())));
    for (k, v) in fields {
        entries.push((k.to_string(), v.clone()));
    }
    let mut line = String::new();
    JsonValue::Object(entries).render(&mut line);
    line.push('\n');
    // Lifecycle events should be visible promptly; write + flush per line.
    let _ = match &mut *sink {
        Sink::Off => Ok(()),
        Sink::Stderr => io::stderr().write_all(line.as_bytes()),
        Sink::File(f) => f.write_all(line.as_bytes()).and_then(|()| f.flush()),
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test body: these share the global sink, so they must not run in
    // parallel test threads.
    #[test]
    fn file_sink_writes_one_json_line_per_event() {
        emit("dropped-while-off", &[]); // default sink: no-op

        let dir = std::env::temp_dir().join(format!("mtc-obs-events-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let _ = std::fs::remove_file(&path);
        log_to_file(&path).unwrap();
        emit(
            "unit-test",
            &[
                ("tenant", JsonValue::Str("t0".into())),
                ("checked", JsonValue::U64(42)),
            ],
        );
        disable();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1);
        let line = lines[0];
        assert!(line.starts_with("{\"ts_micros\":"), "line: {line}");
        assert!(line.contains("\"event\":\"unit-test\""), "line: {line}");
        assert!(line.contains("\"tenant\":\"t0\""), "line: {line}");
        assert!(line.contains("\"checked\":42"), "line: {line}");
        let _ = std::fs::remove_file(&path);
    }
}
