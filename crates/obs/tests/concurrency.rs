//! Concurrency properties of the metric primitives: N threads hammer
//! counters, gauges and histograms, and nothing is lost — totals are
//! exact after a join, and mid-flight snapshots only ever move forward.

use mtc_obs::test_support::with_enabled;
use mtc_obs::{registry, Counter, Gauge, Histogram};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Counters lose no increments under contention: the post-join total
    /// is exactly `threads × per_thread × delta`.
    #[test]
    fn counter_exact_under_contention(
        threads in 2usize..8,
        per_thread in 1u64..2_000,
        delta in 1u64..5,
    ) {
        let _on = with_enabled(true);
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for _ in 0..per_thread {
                        c.add(delta);
                    }
                });
            }
        });
        prop_assert_eq!(c.get(), threads as u64 * per_thread * delta);
    }

    /// Histograms lose no samples under contention, min/max are exact,
    /// and the bucket sum matches the count.
    #[test]
    fn histogram_exact_under_contention(
        threads in 2usize..8,
        per_thread in 1u64..1_000,
        base in 1u64..1_000_000,
    ) {
        let _on = with_enabled(true);
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..threads as u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..per_thread {
                        h.record(base + t * per_thread + i);
                    }
                });
            }
        });
        let total = threads as u64 * per_thread;
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, total);
        prop_assert_eq!(h.count(), total);
        prop_assert_eq!(snap.min, base);
        prop_assert_eq!(snap.max, base + total - 1);
        prop_assert!(snap.p50 >= snap.min / 2 && snap.p99 <= snap.max * 2);
    }

    /// Paired add/sub across threads leaves the gauge at exactly the sum
    /// of the unpaired residues.
    #[test]
    fn gauge_exact_after_paired_updates(
        threads in 2usize..8,
        pairs in 1u64..2_000,
        residue in 0u64..10,
    ) {
        let _on = with_enabled(true);
        let g = Gauge::new();
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for _ in 0..pairs {
                        g.add(2);
                        g.sub(2);
                    }
                    g.add(residue);
                });
            }
        });
        prop_assert_eq!(g.get(), threads as i64 * residue as i64);
    }
}

/// Snapshots taken *while* writers are running are monotone: counter
/// totals and histogram counts never move backwards between successive
/// observations, and the final observation sees everything.
#[test]
fn snapshots_are_monotone_under_concurrent_writes() {
    let _on = with_enabled(true);
    let c = registry().counter("test.conc.snapshot_counter");
    let h = registry().histogram("test.conc.snapshot_hist");
    c.reset();
    h.reset();
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 50_000;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    c.inc();
                    h.record(1 + (t * PER_THREAD + i) % 10_000);
                }
            });
        }
        let mut last_count = 0u64;
        let mut last_hist = 0u64;
        for _ in 0..200 {
            let snap = registry().snapshot();
            let now_count = snap.counter("test.conc.snapshot_counter").unwrap();
            let now_hist = snap.histogram("test.conc.snapshot_hist").unwrap().count;
            assert!(now_count >= last_count, "counter went backwards");
            assert!(now_hist >= last_hist, "histogram count went backwards");
            last_count = now_count;
            last_hist = now_hist;
        }
    });
    assert_eq!(c.get(), THREADS * PER_THREAD);
    assert_eq!(h.count(), THREADS * PER_THREAD);
}
