//! Differential tests through the *binary* persistence layer: random
//! streams — valid and corrupted, timed and untimed — are recorded to a
//! segmented log with a binary checkpoint at a random prefix; everything is
//! dropped, recovered from disk, resumed and finished. Verdict,
//! counterexample certificate and `first_violation_at` must be
//! bit-identical to the uninterrupted in-memory run, at every isolation
//! level and under sequential *and* sharded resumption.

use mtc_core::{IncrementalChecker, IsolationLevel, ShardedIncrementalChecker};
use mtc_history::{Op, SessionId, Transaction, TxnId, TxnStatus};
use mtc_store::{recover, MtcStore, StreamMeta};
use proptest::prelude::*;
use std::path::PathBuf;

fn tmpdir(tag: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mtc_store_diff_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A random stream over `keys` keys: mostly serial read-modify-writes, with
/// optional stale-read corruption, optional clock skew, and a sprinkle of
/// aborted and partially timed transactions.
#[allow(clippy::too_many_arguments)]
#[allow(clippy::explicit_counter_loop)] // `value` is allocator state
fn build_stream(
    picks: &[(u64, u64, u64)],
    keys: u64,
    sessions: u32,
    corrupt: Option<usize>,
    skew: Option<usize>,
    strip: Option<usize>,
    abort: Option<usize>,
) -> Vec<Transaction> {
    let keys = keys.max(2);
    let mut state = vec![0u64; keys as usize];
    let mut value = 1u64;
    let mut out = Vec::new();
    for (i, &(kpick, spick, shape)) in picks.iter().enumerate() {
        let k = kpick % keys;
        let session = (spick % sessions as u64) as u32;
        let mut read = state[k as usize];
        if corrupt == Some(i) {
            read /= 2; // stale or thin-air
        }
        let mut ops = vec![Op::read(k, read)];
        if shape % 3 != 0 {
            ops.push(Op::write(k, value));
        }
        let status = if abort == Some(i) {
            TxnStatus::Aborted
        } else {
            TxnStatus::Committed
        };
        if shape % 3 != 0 && status == TxnStatus::Committed {
            state[k as usize] = value;
        }
        value += 1;
        let i64_ = i as u64;
        let mut begin = Some(10 * i64_ + 1);
        let mut end = Some(10 * i64_ + 7);
        if skew == Some(i) {
            end = Some((10 * i64_ + 7).saturating_sub(120));
        }
        if strip == Some(i) {
            if shape % 2 == 0 {
                begin = None;
            } else {
                end = None;
            }
        }
        out.push(Transaction {
            id: TxnId(0),
            session: SessionId(session),
            ops,
            status,
            begin,
            end,
        });
    }
    out
}

fn run_reference(
    level: IsolationLevel,
    keys: u64,
    txns: &[Transaction],
) -> (String, Option<TxnId>) {
    let mut c = IncrementalChecker::new(level).with_init_keys(0..keys);
    for t in txns {
        let _ = c.push(t.clone());
    }
    let first = c.first_violation_at();
    (format!("{:?}", c.finish()), first)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Record → binary checkpoint → drop → recover from disk → resume →
    /// finish must equal the uninterrupted run bit for bit.
    #[test]
    fn disk_round_trip_is_bit_identical(
        picks in prop::collection::vec((0u64..5, 0u64..4, 0u64..6), 1..40),
        keys in 2u64..5,
        cut in 0usize..40,
        corrupt in prop::option::of(0usize..40),
        skew in prop::option::of(0usize..40),
        strip in prop::option::of(0usize..40),
        abort in prop::option::of(0usize..40),
        seed in 0u64..1_000_000,
    ) {
        let txns = build_stream(&picks, keys, 4, corrupt, skew, strip, abort);
        let cut = cut % (txns.len() + 1);
        for level in [
            IsolationLevel::Serializability,
            IsolationLevel::SnapshotIsolation,
            IsolationLevel::StrictSerializability,
        ] {
            let (expected, expected_first) = run_reference(level, keys, &txns);

            let dir = tmpdir(seed);
            let meta = StreamMeta { level, num_keys: keys };
            let mut store = MtcStore::create(&dir, &meta).unwrap();
            let mut checker = IncrementalChecker::new(level).with_init_keys(0..keys);
            for t in &txns[..cut] {
                store.append_txn(t).unwrap();
                let _ = checker.push(t.clone());
            }
            store.checkpoint(cut as u64, &checker.checkpoint()).unwrap();
            // The rest of the stream reaches the log but not the checker —
            // the crash happens before they are consumed.
            for t in &txns[cut..] {
                store.append_txn(t).unwrap();
            }
            store.sync().unwrap();
            drop(store);
            drop(checker);

            let recovery = recover(&dir).unwrap();
            prop_assert_eq!(recovery.resume_from, cut as u64);
            prop_assert_eq!(recovery.txns.len(), txns.len());
            // Sequential resume.
            let mut resumed = IncrementalChecker::resume(recovery.snapshot.clone().unwrap());
            for t in recovery.tail() {
                let _ = resumed.push(t.clone());
            }
            prop_assert_eq!(resumed.first_violation_at(), expected_first, "{}", level);
            prop_assert_eq!(format!("{:?}", resumed.finish()), expected.clone(), "{}", level);
            // Sharded resume from the very same on-disk snapshot.
            let mut sharded =
                ShardedIncrementalChecker::resume(recovery.snapshot.clone().unwrap(), 3);
            for chunk in recovery.tail().chunks(5) {
                let _ = sharded.push_batch(chunk.to_vec());
            }
            prop_assert_eq!(sharded.first_violation_at(), expected_first, "{}", level);
            prop_assert_eq!(format!("{:?}", sharded.finish()), expected, "{}", level);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
