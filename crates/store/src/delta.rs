//! Byte-level deltas between checkpoint payloads.
//!
//! A checker snapshot re-serialized every checkpoint cadence mostly repeats
//! the previous one: the settled prefix of the graph, key states and maps
//! barely move between cadences. [`compute`] expresses a new payload as a
//! sequence of [`DeltaOp`]s against the previous payload — `Copy` ranges
//! for the repeated parts, `Insert` bytes for the fresh ones — so a delta
//! checkpoint writes (and fsyncs) only what actually changed.
//!
//! The matcher is rsync-shaped: the base is indexed by non-overlapping
//! [`BLOCK`]-sized windows under a polynomial rolling hash, and the target
//! is scanned byte-by-byte, sliding the hash in `O(1)`, so matches are
//! found at *any* alignment — essential here, because variable-length
//! binval encodings shift every byte after the first structural change.
//! Candidate matches are confirmed by comparison and greedily extended.
//!
//! [`apply`] is the exact inverse and validates every range, so a corrupt
//! op stream surfaces as an error instead of a bogus snapshot (the
//! checkpoint layer additionally CRCs the reconstructed payload).

use std::collections::HashMap;

/// Width of the match windows the base is indexed by. Runs shorter than
/// this are emitted as literals; larger blocks shrink the index, smaller
/// ones catch shorter repeats.
pub const BLOCK: usize = 64;

/// Multiplier of the polynomial rolling hash (odd, large, arbitrary).
const R: u64 = 0x1000_0000_01B3;

/// One instruction of a delta stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaOp {
    /// Copy `len` bytes from offset `off` of the base payload.
    Copy {
        /// Byte offset into the base payload.
        off: u64,
        /// Number of bytes to copy.
        len: u64,
    },
    /// Append these literal bytes.
    Insert {
        /// The literal bytes.
        bytes: Vec<u8>,
    },
}

/// `R^(BLOCK-1)`, the weight of the byte leaving the rolling window.
fn high_weight() -> u64 {
    let mut w = 1u64;
    for _ in 0..BLOCK - 1 {
        w = w.wrapping_mul(R);
    }
    w
}

/// The polynomial hash of one full window.
fn window_hash(bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(0u64, |h, &b| h.wrapping_mul(R).wrapping_add(u64::from(b)))
}

/// Expresses `target` as copy/insert ops over `base`.
pub fn compute(base: &[u8], target: &[u8]) -> Vec<DeltaOp> {
    let mut ops: Vec<DeltaOp> = Vec::new();
    let mut literal: Vec<u8> = Vec::new();
    let flush = |ops: &mut Vec<DeltaOp>, literal: &mut Vec<u8>| {
        if !literal.is_empty() {
            ops.push(DeltaOp::Insert {
                bytes: std::mem::take(literal),
            });
        }
    };

    // Index the base by non-overlapping blocks. Colliding hashes chain;
    // candidates are confirmed byte-for-byte before use.
    let mut index: HashMap<u64, Vec<u32>> = HashMap::new();
    for off in (0..base.len().saturating_sub(BLOCK - 1)).step_by(BLOCK) {
        index
            .entry(window_hash(&base[off..off + BLOCK]))
            .or_default()
            .push(off as u32);
    }

    let hw = high_weight();
    let mut i = 0usize;
    // Rolling hash of target[i..i + BLOCK], maintained while sliding.
    let mut h = if target.len() >= BLOCK {
        window_hash(&target[..BLOCK])
    } else {
        0
    };
    while i + BLOCK <= target.len() {
        let matched = index.get(&h).and_then(|cands| {
            cands.iter().find_map(|&off| {
                let off = off as usize;
                (base[off..off + BLOCK] == target[i..i + BLOCK]).then(|| {
                    let mut len = BLOCK;
                    while off + len < base.len()
                        && i + len < target.len()
                        && base[off + len] == target[i + len]
                    {
                        len += 1;
                    }
                    (off, len)
                })
            })
        });
        match matched {
            Some((off, len)) => {
                flush(&mut ops, &mut literal);
                ops.push(DeltaOp::Copy {
                    off: off as u64,
                    len: len as u64,
                });
                i += len;
                if i + BLOCK <= target.len() {
                    h = window_hash(&target[i..i + BLOCK]);
                }
            }
            None => {
                literal.push(target[i]);
                i += 1;
                // Slide the window one byte: drop target[i - 1], take the
                // byte entering on the right.
                if i + BLOCK <= target.len() {
                    h = h
                        .wrapping_sub(u64::from(target[i - 1]).wrapping_mul(hw))
                        .wrapping_mul(R)
                        .wrapping_add(u64::from(target[i + BLOCK - 1]));
                }
            }
        }
    }
    literal.extend_from_slice(&target[i..]);
    flush(&mut ops, &mut literal);
    ops
}

/// Encodes a delta stream compactly: tag byte, then little-endian `u64`
/// fields (`off`/`len` for a copy, byte count then bytes for an insert).
/// The generic value encoding would spend ~90 bytes of structure per op;
/// this spends 17.
pub fn encode_ops(ops: &[DeltaOp]) -> Vec<u8> {
    let mut out = Vec::new();
    for op in ops {
        match op {
            DeltaOp::Copy { off, len } => {
                out.push(0);
                out.extend_from_slice(&off.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
            }
            DeltaOp::Insert { bytes } => {
                out.push(1);
                out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
                out.extend_from_slice(bytes);
            }
        }
    }
    out
}

/// Inverse of [`encode_ops`]; rejects truncated or unknown-tag input.
pub fn decode_ops(bytes: &[u8]) -> Result<Vec<DeltaOp>, String> {
    let mut ops = Vec::new();
    let mut pos = 0usize;
    let take_u64 = |pos: &mut usize| -> Result<u64, String> {
        let end = pos.checked_add(8).filter(|&e| e <= bytes.len());
        let end = end.ok_or("truncated delta op")?;
        let v = u64::from_le_bytes(bytes[*pos..end].try_into().unwrap());
        *pos = end;
        Ok(v)
    };
    while pos < bytes.len() {
        let tag = bytes[pos];
        pos += 1;
        match tag {
            0 => {
                let off = take_u64(&mut pos)?;
                let len = take_u64(&mut pos)?;
                ops.push(DeltaOp::Copy { off, len });
            }
            1 => {
                let n = take_u64(&mut pos)? as usize;
                let end = pos.checked_add(n).filter(|&e| e <= bytes.len());
                let end = end.ok_or("truncated delta literal")?;
                ops.push(DeltaOp::Insert {
                    bytes: bytes[pos..end].to_vec(),
                });
                pos = end;
            }
            t => return Err(format!("unknown delta op tag {t}")),
        }
    }
    Ok(ops)
}

/// Reconstructs the target payload from `base` and a delta stream. Errors
/// on any out-of-range copy instead of panicking.
pub fn apply(base: &[u8], ops: &[DeltaOp]) -> Result<Vec<u8>, String> {
    let mut out = Vec::new();
    for op in ops {
        match op {
            DeltaOp::Copy { off, len } => {
                let (off, len) = (*off as usize, *len as usize);
                let range = base
                    .get(off..off.checked_add(len).ok_or("copy range overflows")?)
                    .ok_or_else(|| format!("copy {off}+{len} beyond base of {}", base.len()))?;
                out.extend_from_slice(range);
            }
            DeltaOp::Insert { bytes } => out.extend_from_slice(bytes),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(base: &[u8], target: &[u8]) -> Vec<DeltaOp> {
        let ops = compute(base, target);
        assert_eq!(apply(base, &ops).unwrap(), target, "delta must invert");
        assert_eq!(
            decode_ops(&encode_ops(&ops)).unwrap(),
            ops,
            "wire encoding must invert"
        );
        ops
    }

    #[test]
    fn decode_rejects_malformed_streams() {
        assert!(decode_ops(&[0, 1, 2]).is_err(), "truncated copy");
        let mut insert = vec![1];
        insert.extend_from_slice(&100u64.to_le_bytes());
        insert.push(7); // claims 100 literal bytes, carries 1
        assert!(decode_ops(&insert).is_err(), "truncated literal");
        assert!(decode_ops(&[9]).is_err(), "unknown tag");
        assert_eq!(decode_ops(&[]).unwrap(), vec![]);
    }

    #[test]
    fn identical_payloads_collapse_to_one_copy() {
        let data: Vec<u8> = (0..1000u32).flat_map(|x| x.to_le_bytes()).collect();
        let ops = round_trip(&data, &data);
        assert_eq!(
            ops,
            vec![DeltaOp::Copy {
                off: 0,
                len: data.len() as u64
            }]
        );
    }

    #[test]
    fn shifted_payload_still_matches_unaligned() {
        // A prefix insertion shifts every subsequent byte — the rolling scan
        // must still find the old content at its new (unaligned) offset.
        let base: Vec<u8> = (0..4096u32).flat_map(|x| x.to_le_bytes()).collect();
        let mut target = vec![0xAB, 0xCD, 0xEF];
        target.extend_from_slice(&base);
        let ops = round_trip(&base, &target);
        let inserted: usize = ops
            .iter()
            .map(|op| match op {
                DeltaOp::Insert { bytes } => bytes.len(),
                _ => 0,
            })
            .sum();
        assert!(
            inserted < 3 + 2 * BLOCK,
            "shifted content must be copied, not re-inserted (inserted {inserted})"
        );
    }

    #[test]
    fn disjoint_payloads_degrade_to_inserts() {
        let base = vec![0u8; 512];
        let target: Vec<u8> = (0..512u32).flat_map(|x| (x | 1).to_le_bytes()).collect();
        round_trip(&base, &target);
    }

    #[test]
    fn short_and_empty_payloads() {
        round_trip(b"", b"");
        round_trip(b"", b"tiny");
        round_trip(b"tiny", b"");
        round_trip(b"abc", b"abd");
        let small: Vec<u8> = (0..BLOCK as u8).collect();
        round_trip(&small, &small);
    }

    #[test]
    fn corrupt_copy_range_is_an_error() {
        let ops = vec![DeltaOp::Copy { off: 10, len: 100 }];
        assert!(apply(b"short", &ops).is_err());
        let ops = vec![DeltaOp::Copy {
            off: u64::MAX,
            len: 2,
        }];
        assert!(apply(b"short", &ops).is_err());
    }

    #[test]
    fn mid_stream_edit_keeps_both_sides_copied() {
        let mut target: Vec<u8> = (0..8192u32).flat_map(|x| x.to_le_bytes()).collect();
        let base = target.clone();
        // Splice 7 bytes into the middle and flip one later byte.
        target.splice(10_000..10_000, [1, 2, 3, 4, 5, 6, 7]);
        target[20_000] ^= 0x55;
        let ops = round_trip(&base, &target);
        let inserted: usize = ops
            .iter()
            .map(|op| match op {
                DeltaOp::Insert { bytes } => bytes.len(),
                _ => 0,
            })
            .sum();
        assert!(
            inserted < 4 * BLOCK,
            "a small edit must stay a small delta (inserted {inserted})"
        );
    }
}
