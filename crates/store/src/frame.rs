//! CRC-checked record framing.
//!
//! Every record in a log segment or checkpoint file is one *frame*:
//!
//! ```text
//! [len: u32 LE] [crc32: u32 LE] [payload: len bytes]
//! ```
//!
//! `crc32` is the IEEE CRC-32 of the payload. Reading distinguishes the two
//! failure modes recovery cares about: a frame whose bytes simply end early
//! ([`FrameError::Truncated`] — the classic torn tail of a crashed writer)
//! and a frame whose checksum does not match ([`FrameError::Corrupt`] —
//! bit rot or a torn *overwrite*). Recovery treats either at the tail of
//! the last segment as "the log ends here"; anywhere else it is an error.

/// Frame header size: length + checksum.
pub const FRAME_HEADER: usize = 8;

/// Maximum accepted payload length (a corrupt length field must not turn
/// into a gigabyte allocation).
pub const MAX_FRAME_LEN: usize = 256 << 20;

/// Why a frame could not be read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The input ends before the frame does (torn tail).
    Truncated,
    /// The checksum does not match the payload, or the length is absurd.
    Corrupt,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::Corrupt => write!(f, "corrupt frame"),
        }
    }
}

impl std::error::Error for FrameError {}

/// IEEE CRC-32 (reflected, polynomial `0xEDB88320`), byte-at-a-time with a
/// lazily built table.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ u32::from(b)) & 0xff) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// Appends one frame wrapping `payload` to `out`.
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
    assert!(payload.len() <= MAX_FRAME_LEN, "frame payload too large");
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Reads the frame starting at `*pos`, advancing `*pos` past it on success.
/// On failure `*pos` is left unchanged.
pub fn read_frame<'a>(input: &'a [u8], pos: &mut usize) -> Result<&'a [u8], FrameError> {
    let start = *pos;
    let header = input
        .get(start..start + FRAME_HEADER)
        .ok_or(FrameError::Truncated)?;
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
    let want_crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Corrupt);
    }
    let payload = input
        .get(start + FRAME_HEADER..start + FRAME_HEADER + len)
        .ok_or(FrameError::Truncated)?;
    if crc32(payload) != want_crc {
        return Err(FrameError::Corrupt);
    }
    *pos = start + FRAME_HEADER + len;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first");
        write_frame(&mut buf, b"");
        write_frame(&mut buf, b"third record");
        let mut pos = 0;
        assert_eq!(read_frame(&buf, &mut pos).unwrap(), b"first");
        assert_eq!(read_frame(&buf, &mut pos).unwrap(), b"");
        assert_eq!(read_frame(&buf, &mut pos).unwrap(), b"third record");
        assert_eq!(pos, buf.len());
        assert_eq!(read_frame(&buf, &mut pos), Err(FrameError::Truncated));
    }

    #[test]
    fn torn_tail_is_truncated_not_corrupt() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"whole");
        write_frame(&mut buf, b"torn away");
        for cut in buf.len() - 12..buf.len() {
            let mut pos = 0;
            assert_eq!(read_frame(&buf[..cut], &mut pos).unwrap(), b"whole");
            let before = pos;
            assert_eq!(
                read_frame(&buf[..cut], &mut pos),
                Err(FrameError::Truncated),
                "cut at {cut}"
            );
            assert_eq!(pos, before, "pos must not move on failure");
        }
    }

    #[test]
    fn flipped_bit_is_corrupt() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload under test");
        let mut pos = 0;
        for i in FRAME_HEADER..buf.len() {
            let mut dirty = buf.clone();
            dirty[i] ^= 0x40;
            pos = 0;
            assert_eq!(
                read_frame(&dirty, &mut pos),
                Err(FrameError::Corrupt),
                "flip at {i}"
            );
        }
        let _ = pos;
    }

    #[test]
    fn absurd_length_is_corrupt() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 64]);
        let mut pos = 0;
        assert_eq!(read_frame(&buf, &mut pos), Err(FrameError::Corrupt));
    }
}
