//! The segmented, append-only history log.
//!
//! A log is a directory of segment files:
//!
//! ```text
//! <dir>/segment-00000000.mtclog
//! <dir>/segment-00000001.mtclog
//! ...
//! ```
//!
//! Every segment starts with a [`SegmentHeader`] frame binding it to the
//! stream (magic, format version, segment index, index of its first
//! transaction) followed by one frame per [`LogRecord`]. The first segment
//! carries the stream's [`StreamMeta`] as its first record. Frames are
//! CRC-checked ([`crate::frame`]); appends go through a buffered writer and
//! [`LogWriter::sync`] flushes down to the OS.
//!
//! ## Crash tolerance
//!
//! A crashed writer leaves at most a torn frame at the end of the *last*
//! segment. [`read_log`] therefore accepts a truncated or corrupt tail
//! frame in the final segment (reporting it via [`RecoveredLog::torn_tail`])
//! but treats damage anywhere else as [`StoreError::Corrupt`].
//! [`LogWriter::open_append`] reuses the same scan and truncates the torn
//! bytes before appending further records.

use crate::binval;
use crate::frame::{read_frame, write_frame, FrameError};
use crate::StoreError;
use mtc_core::IsolationLevel;
use mtc_history::Transaction;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic tag binding a file to this log format.
pub const LOG_MAGIC: &str = "mtc-store-log";
/// Current log format version. Version 2 segments use a schema-table
/// record encoding: every record payload carries the object keys it
/// introduces (`[varint n_new][n_new length-prefixed strings][value]`) and
/// the value encodes objects with varint key *indices* into the segment's
/// accumulated key table instead of repeating field-name strings. The
/// table resets at every segment boundary, so segments stay individually
/// decodable. Version 1 segments (inline keys in every record) remain
/// readable; [`LogWriter::open_append`] keeps appending v1 records to an
/// existing v1 tail segment and switches to v2 at the next rotation.
pub const LOG_VERSION: u32 = 2;
/// Oldest segment format version the reader still accepts.
pub const MIN_LOG_VERSION: u32 = 1;
/// Default segment rotation threshold, in payload bytes.
pub const DEFAULT_SEGMENT_BYTES: usize = 4 << 20;

/// Per-segment header (the first frame of every segment file).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct SegmentHeader {
    magic: String,
    version: u32,
    segment: u64,
    /// Stream index of the first transaction recorded in this segment.
    first_txn: u64,
    /// Rotation threshold the log was created with, so `open_append`
    /// continues with the same segment geometry.
    segment_bytes: u64,
}

/// Stream-level metadata, recorded once at the head of the first segment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StreamMeta {
    /// Isolation level the stream is being checked against.
    pub level: IsolationLevel,
    /// Number of keys `⊥T` initializes (the checker seed).
    pub num_keys: u64,
}

/// One record of the history log.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LogRecord {
    /// Stream metadata (first record of the stream).
    Meta(StreamMeta),
    /// One recorded transaction attempt, in stream (commit) order.
    Txn(Transaction),
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("segment-{index:08}.mtclog"))
}

/// Lists the segment files of `dir` in index order.
fn segment_files(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(index) = name
            .strip_prefix("segment-")
            .and_then(|s| s.strip_suffix(".mtclog"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((index, entry.path()));
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// An append-only writer over a segmented log directory.
pub struct LogWriter {
    dir: PathBuf,
    file: fs::File,
    segment: u64,
    segment_bytes: usize,
    written_in_segment: usize,
    /// Stream index of the next transaction to append.
    next_txn: u64,
    /// Format version of the segment currently being appended to (an
    /// `open_append` may be continuing an old v1 segment).
    segment_version: u32,
    /// Schema table of the current segment (v2 segments only).
    dict: binval::KeyDict,
}

impl std::fmt::Debug for LogWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogWriter")
            .field("dir", &self.dir)
            .field("segment", &self.segment)
            .field("next_txn", &self.next_txn)
            .finish()
    }
}

impl LogWriter {
    /// Creates a fresh log in `dir` (created if absent; must not already
    /// contain segments) and writes the stream header.
    pub fn create(dir: impl AsRef<Path>, meta: &StreamMeta) -> Result<Self, StoreError> {
        Self::create_with_segment_bytes(dir, meta, DEFAULT_SEGMENT_BYTES)
    }

    /// [`LogWriter::create`] with an explicit segment rotation threshold.
    pub fn create_with_segment_bytes(
        dir: impl AsRef<Path>,
        meta: &StreamMeta,
        segment_bytes: usize,
    ) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        let segment_bytes = segment_bytes.max(1);
        fs::create_dir_all(&dir)?;
        if !segment_files(&dir)?.is_empty() {
            return Err(StoreError::Format(format!(
                "{} already contains a log",
                dir.display()
            )));
        }
        let mut w = LogWriter {
            file: open_segment(&dir, 0, 0, segment_bytes)?,
            dir,
            segment: 0,
            segment_bytes,
            written_in_segment: 0,
            next_txn: 0,
            segment_version: LOG_VERSION,
            dict: binval::KeyDict::default(),
        };
        w.append_record(&LogRecord::Meta(meta.clone()))?;
        Ok(w)
    }

    /// Re-opens an existing log for appending: scans it (tolerating a torn
    /// tail, whose bytes are truncated away) and positions after the last
    /// intact record. Returns the writer together with the recovered
    /// contents, so a resuming process replays and appends from one scan.
    pub fn open_append(dir: impl AsRef<Path>) -> Result<(Self, RecoveredLog), StoreError> {
        let dir = dir.as_ref().to_path_buf();
        let mut recovered = read_log(&dir)?;
        if recovered.torn_tail && recovered.last_valid_offset == 0 {
            // The crash tore the freshly rotated segment's own header:
            // drop the file and rescan (the records all live before it).
            let (_, path) = segment_files(&dir)?.pop().expect("read_log found segments");
            fs::remove_file(path)?;
            recovered = read_log(&dir)?;
        }
        let segments = segment_files(&dir)?;
        let &(segment, ref last_path) = segments.last().expect("read_log found segments");
        if recovered.torn_tail {
            // In-place, metadata-only truncation: a read-then-rewrite would
            // open a window where a crash *during recovery* destroys the
            // intact records before the torn tail.
            let keep = recovered.last_valid_offset as u64;
            let file = fs::OpenOptions::new().write(true).open(last_path)?;
            file.set_len(keep)?;
            file.sync_all()?;
        }
        let file = fs::OpenOptions::new().append(true).open(last_path)?;
        let written_in_segment = fs::metadata(last_path)?.len() as usize;
        Ok((
            LogWriter {
                dir,
                file,
                segment,
                // Continue with the geometry the log was created with.
                segment_bytes: recovered.segment_bytes.max(1),
                written_in_segment,
                next_txn: recovered.txns.len() as u64,
                // Continue the tail segment in its own format: mixing v2
                // records into a v1 segment (or vice versa) would break the
                // per-segment header's format promise.
                segment_version: recovered.last_segment_version,
                dict: {
                    let mut dict = binval::KeyDict::default();
                    dict.extend_known(&recovered.last_segment_dict);
                    dict
                },
            },
            recovered,
        ))
    }

    /// Stream index the next appended transaction will get.
    pub fn next_txn_index(&self) -> u64 {
        self.next_txn
    }

    /// Appends one transaction, returning its stream index. The record is
    /// buffered by the OS; call [`LogWriter::sync`] to force it down.
    pub fn append(&mut self, txn: &Transaction) -> Result<u64, StoreError> {
        let index = self.next_txn;
        self.append_record(&LogRecord::Txn(txn.clone()))?;
        self.next_txn = index + 1;
        Ok(index)
    }

    /// Flushes appended records to the OS (fsync).
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file.sync_all()?;
        Ok(())
    }

    fn append_record(&mut self, record: &LogRecord) -> Result<(), StoreError> {
        if self.written_in_segment >= self.segment_bytes {
            self.file.sync_all()?;
            self.segment += 1;
            self.file = open_segment(&self.dir, self.segment, self.next_txn, self.segment_bytes)?;
            self.written_in_segment = 0;
            // Fresh segments are always written in the current format, even
            // when the writer was continuing an old v1 tail segment.
            self.segment_version = LOG_VERSION;
            self.dict = binval::KeyDict::default();
            mtc_obs::counter!("store.segment_rotations").inc();
        }
        let payload = if self.segment_version >= 2 {
            encode_record_v2(record, &mut self.dict)
        } else {
            binval::to_bytes(record)
        };
        let mut framed = Vec::with_capacity(payload.len() + 8);
        write_frame(&mut framed, &payload);
        self.file.write_all(&framed)?;
        self.written_in_segment += framed.len();
        Ok(())
    }
}

/// Encodes one record in the v2 schema-table form: the keys this record
/// introduces to the segment's table (shipped as length-prefixed strings)
/// followed by the value with indexed object keys.
fn encode_record_v2(record: &LogRecord, dict: &mut binval::KeyDict) -> Vec<u8> {
    let start = dict.len();
    let mut body = Vec::new();
    binval::encode_value_indexed(&record.to_json_value(), dict, &mut body);
    let new = &dict.keys()[start..];
    let mut payload = Vec::new();
    binval::put_varint(&mut payload, new.len() as u64);
    for key in new {
        binval::put_varint(&mut payload, key.len() as u64);
        payload.extend_from_slice(key.as_bytes());
    }
    payload.extend_from_slice(&body);
    payload
}

/// Decodes one v2 record payload against the segment's accumulated key
/// table, committing the record's newly introduced keys to `dict` only
/// when the whole record decodes — a torn record must not leave keys in
/// the table that its (discarded) payload introduced.
fn decode_record_v2(payload: &[u8], dict: &mut Vec<String>) -> Result<LogRecord, StoreError> {
    let mut pos = 0usize;
    let n_new = binval::get_varint(payload, &mut pos).map_err(StoreError::Decode)? as usize;
    let mut pending = Vec::with_capacity(n_new.min(4096));
    for _ in 0..n_new {
        pending.push(binval::decode_str(payload, &mut pos).map_err(StoreError::Decode)?);
    }
    let value = binval::decode_value_indexed(&payload[pos..], dict, &pending)
        .map_err(StoreError::Decode)?;
    let record =
        LogRecord::from_json_value(&value).map_err(|e| StoreError::Serde(e.to_string()))?;
    dict.extend(pending);
    Ok(record)
}

/// Decodes one record payload in the given segment format version.
fn decode_record(
    payload: &[u8],
    version: u32,
    dict: &mut Vec<String>,
) -> Result<LogRecord, StoreError> {
    if version >= 2 {
        decode_record_v2(payload, dict)
    } else {
        binval::from_bytes(payload)
    }
}

/// Creates segment file `index` with its header frame, returning the handle
/// positioned for appending.
fn open_segment(
    dir: &Path,
    index: u64,
    first_txn: u64,
    segment_bytes: usize,
) -> Result<fs::File, StoreError> {
    let path = segment_path(dir, index);
    let header = SegmentHeader {
        magic: LOG_MAGIC.to_string(),
        version: LOG_VERSION,
        segment: index,
        first_txn,
        segment_bytes: segment_bytes as u64,
    };
    let mut bytes = Vec::new();
    write_frame(&mut bytes, &binval::to_bytes(&header));
    let mut file = fs::OpenOptions::new()
        .create_new(true)
        .append(true)
        .open(&path)?;
    file.write_all(&bytes)?;
    Ok(file)
}

/// A scanned log directory.
#[derive(Clone, Debug)]
pub struct RecoveredLog {
    /// The stream metadata from the first segment.
    pub meta: StreamMeta,
    /// Every intact recorded transaction, in stream order.
    pub txns: Vec<Transaction>,
    /// True iff the last segment ended in a torn or corrupt frame (the
    /// crash signature); the damaged bytes carry no intact records.
    pub torn_tail: bool,
    /// Byte offset of the end of the last intact frame in the last segment.
    pub last_valid_offset: usize,
    /// Rotation threshold recorded in the segment headers.
    pub segment_bytes: usize,
    /// Format version of the last segment (the one `open_append` continues).
    pub last_segment_version: u32,
    /// Schema table accumulated by the last segment's intact records, in
    /// index order (empty for v1 segments), so `open_append` keeps encoding
    /// against the table the segment's existing records established.
    pub last_segment_dict: Vec<String>,
}

/// Scans the log in `dir`, returning every intact transaction. Damage at
/// the tail of the last segment is tolerated (see [`RecoveredLog`]); damage
/// anywhere else is a [`StoreError::Corrupt`].
pub fn read_log(dir: impl AsRef<Path>) -> Result<RecoveredLog, StoreError> {
    let dir = dir.as_ref();
    let segments = segment_files(dir)?;
    if segments.is_empty() {
        return Err(StoreError::Format(format!(
            "{} contains no log segments",
            dir.display()
        )));
    }
    let mut meta: Option<StreamMeta> = None;
    let mut txns: Vec<Transaction> = Vec::new();
    let mut torn_tail = false;
    let mut last_valid_offset = 0usize;
    let mut segment_bytes = DEFAULT_SEGMENT_BYTES;
    let mut last_segment_version = LOG_VERSION;
    let mut dict: Vec<String> = Vec::new();
    let last_index = segments.len() - 1;
    for (i, (expect_segment, path)) in segments.iter().enumerate() {
        let is_last = i == last_index;
        let bytes = fs::read(path)?;
        let mut pos = 0usize;
        // The schema table never crosses a segment boundary.
        dict.clear();
        // Header frame. A damaged header is only tolerable when the crash
        // happened right after a rotation created the (then-last) segment.
        let header: SegmentHeader = match read_frame(&bytes, &mut pos) {
            Ok(payload) => binval::from_bytes(payload)?,
            Err(e) if is_last && i > 0 => {
                let _ = e;
                torn_tail = true;
                // The previous segment's records stand; this one has none.
                // The torn segment is rewritten whole on open_append.
                last_valid_offset = 0;
                break;
            }
            Err(e) => {
                return Err(StoreError::Corrupt(format!(
                    "{}: {e} in segment header",
                    path.display()
                )))
            }
        };
        if header.magic != LOG_MAGIC {
            return Err(StoreError::Format(format!(
                "{}: not an mtc-store segment",
                path.display()
            )));
        }
        if header.version < MIN_LOG_VERSION || header.version > LOG_VERSION {
            return Err(StoreError::Format(format!(
                "{}: unsupported log version {}",
                path.display(),
                header.version
            )));
        }
        if header.segment != *expect_segment || header.first_txn != txns.len() as u64 {
            return Err(StoreError::Corrupt(format!(
                "{}: segment header out of sequence",
                path.display()
            )));
        }
        segment_bytes = (header.segment_bytes as usize).max(1);
        last_segment_version = header.version;
        if is_last {
            last_valid_offset = pos;
        }
        loop {
            let frame_start = pos;
            let payload = match read_frame(&bytes, &mut pos) {
                Ok(p) => p,
                Err(FrameError::Truncated) if pos == bytes.len() && frame_start == bytes.len() => {
                    break; // clean end of segment
                }
                Err(e) => {
                    if is_last {
                        torn_tail = true;
                        break;
                    }
                    return Err(StoreError::Corrupt(format!(
                        "{}: {e} at offset {frame_start} of a non-final segment",
                        path.display()
                    )));
                }
            };
            let record: LogRecord = match decode_record(payload, header.version, &mut dict) {
                Ok(r) => r,
                Err(e) => {
                    if is_last {
                        // A CRC-valid but undecodable record: treat as torn
                        // tail only at the very end; otherwise corrupt.
                        torn_tail = true;
                        let _ = e;
                        break;
                    }
                    return Err(StoreError::Corrupt(format!(
                        "{}: undecodable record at offset {frame_start}",
                        path.display()
                    )));
                }
            };
            match record {
                LogRecord::Meta(m) => {
                    if meta.is_some() {
                        return Err(StoreError::Corrupt(format!(
                            "{}: duplicate stream metadata",
                            path.display()
                        )));
                    }
                    meta = Some(m);
                }
                LogRecord::Txn(t) => txns.push(t),
            }
            if is_last {
                last_valid_offset = pos;
            }
        }
    }
    let meta = meta.ok_or_else(|| {
        StoreError::Format(format!("{}: log has no stream metadata", dir.display()))
    })?;
    Ok(RecoveredLog {
        meta,
        txns,
        torn_tail,
        last_valid_offset,
        segment_bytes,
        last_segment_version,
        last_segment_dict: dict,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_history::{Op, SessionId, TxnId};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mtc_store_seg_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn meta() -> StreamMeta {
        StreamMeta {
            level: IsolationLevel::Serializability,
            num_keys: 4,
        }
    }

    fn txn(i: u32) -> Transaction {
        Transaction::committed(
            TxnId(0),
            SessionId(i % 3),
            vec![Op::read(0u64, 0u64), Op::write(0u64, 100 + u64::from(i))],
        )
        .with_times(u64::from(i) * 10, u64::from(i) * 10 + 5)
    }

    #[test]
    fn log_round_trips_across_segment_rotation() {
        let dir = tmpdir("rotate");
        let mut w = LogWriter::create_with_segment_bytes(&dir, &meta(), 256).unwrap();
        for i in 0..50 {
            assert_eq!(w.append(&txn(i)).unwrap(), u64::from(i));
        }
        w.sync().unwrap();
        assert!(
            segment_files(&dir).unwrap().len() > 1,
            "small threshold must rotate"
        );
        let log = read_log(&dir).unwrap();
        assert_eq!(log.meta, meta());
        assert_eq!(log.txns.len(), 50);
        assert!(!log.torn_tail);
        assert_eq!(log.txns[7], txn(7));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_in_last_segment_is_tolerated() {
        let dir = tmpdir("torn");
        let mut w = LogWriter::create(&dir, &meta()).unwrap();
        for i in 0..10 {
            w.append(&txn(i)).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        // Simulate a crash mid-write: append half a frame.
        let (_, last) = segment_files(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&last).unwrap();
        let intact = bytes.len();
        bytes.extend_from_slice(&[42, 0, 0, 0, 9, 9]);
        fs::write(&last, &bytes).unwrap();
        let log = read_log(&dir).unwrap();
        assert_eq!(log.txns.len(), 10);
        assert!(log.torn_tail);
        assert_eq!(log.last_valid_offset, intact);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_in_a_non_final_segment_is_an_error() {
        let dir = tmpdir("mid_corrupt");
        let mut w = LogWriter::create_with_segment_bytes(&dir, &meta(), 128).unwrap();
        for i in 0..40 {
            w.append(&txn(i)).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let segments = segment_files(&dir).unwrap();
        assert!(segments.len() >= 3);
        let (_, middle) = &segments[1];
        let mut bytes = fs::read(middle).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0xff;
        fs::write(middle, &bytes).unwrap();
        assert!(matches!(read_log(&dir), Err(StoreError::Corrupt(_))));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_append_truncates_the_torn_tail_and_continues() {
        let dir = tmpdir("append");
        let mut w = LogWriter::create(&dir, &meta()).unwrap();
        for i in 0..5 {
            w.append(&txn(i)).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let (_, last) = segment_files(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&last).unwrap();
        bytes.extend_from_slice(&[7; 11]);
        fs::write(&last, &bytes).unwrap();

        let (mut w, recovered) = LogWriter::open_append(&dir).unwrap();
        assert_eq!(recovered.txns.len(), 5);
        assert!(recovered.torn_tail);
        assert_eq!(w.next_txn_index(), 5);
        w.append(&txn(5)).unwrap();
        w.sync().unwrap();
        drop(w);
        let log = read_log(&dir).unwrap();
        assert_eq!(log.txns.len(), 6);
        assert!(!log.torn_tail, "the torn bytes were truncated away");
        assert_eq!(log.txns[5], txn(5));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_append_keeps_the_created_segment_geometry() {
        let dir = tmpdir("geometry");
        let mut w = LogWriter::create_with_segment_bytes(&dir, &meta(), 256).unwrap();
        for i in 0..10 {
            w.append(&txn(i)).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let before = segment_files(&dir).unwrap().len();
        assert!(before > 1, "256-byte threshold must rotate");
        let (mut w, recovered) = LogWriter::open_append(&dir).unwrap();
        assert_eq!(recovered.segment_bytes, 256);
        for i in 10..20 {
            w.append(&txn(i)).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        assert!(
            segment_files(&dir).unwrap().len() > before,
            "the reopened writer must keep rotating at the created threshold"
        );
        assert_eq!(read_log(&dir).unwrap().txns.len(), 20);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Writes a version-1 log (inline keys in every record) by hand, the
    /// way the v1 writer laid it out: header frame, then plain binval
    /// record frames, rotating at `segment_bytes`.
    fn write_v1_log(dir: &Path, meta: &StreamMeta, txns: u32, segment_bytes: usize) {
        fs::create_dir_all(dir).unwrap();
        let mut records = vec![LogRecord::Meta(meta.clone())];
        records.extend((0..txns).map(|i| LogRecord::Txn(txn(i))));
        let mut segment = 0u64;
        let mut first_txn = 0u64;
        let mut written = usize::MAX; // force the first segment open
        let mut out: Option<fs::File> = None;
        for record in &records {
            if written >= segment_bytes {
                let header = SegmentHeader {
                    magic: LOG_MAGIC.to_string(),
                    version: 1,
                    segment,
                    first_txn,
                    segment_bytes: segment_bytes as u64,
                };
                let mut bytes = Vec::new();
                write_frame(&mut bytes, &binval::to_bytes(&header));
                let mut file = fs::OpenOptions::new()
                    .create_new(true)
                    .append(true)
                    .open(segment_path(dir, segment))
                    .unwrap();
                file.write_all(&bytes).unwrap();
                out = Some(file);
                segment += 1;
                written = 0;
            }
            let mut framed = Vec::new();
            write_frame(&mut framed, &binval::to_bytes(record));
            out.as_mut().unwrap().write_all(&framed).unwrap();
            written += framed.len();
            if matches!(record, LogRecord::Txn(_)) {
                first_txn += 1;
            }
        }
    }

    #[test]
    fn v1_segments_remain_readable() {
        let dir = tmpdir("v1_read");
        write_v1_log(&dir, &meta(), 30, 512);
        assert!(segment_files(&dir).unwrap().len() > 1, "must span segments");
        let log = read_log(&dir).unwrap();
        assert_eq!(log.meta, meta());
        assert_eq!(log.txns.len(), 30);
        assert_eq!(log.txns[13], txn(13));
        assert!(!log.torn_tail);
        assert_eq!(log.last_segment_version, 1);
        assert!(log.last_segment_dict.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_append_continues_a_v1_tail_and_rotates_to_v2() {
        let dir = tmpdir("v1_append");
        write_v1_log(&dir, &meta(), 10, 512);
        let before = segment_files(&dir).unwrap().len();
        let (mut w, recovered) = LogWriter::open_append(&dir).unwrap();
        assert_eq!(recovered.txns.len(), 10);
        assert_eq!(recovered.last_segment_version, 1);
        // Append enough to keep writing into the v1 tail and then rotate.
        for i in 10..40 {
            w.append(&txn(i)).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let segments = segment_files(&dir).unwrap();
        assert!(segments.len() > before, "must have rotated");
        // The tail segment written before rotation stayed v1; rotated
        // segments are v2.
        let header_version = |path: &Path| -> u32 {
            let bytes = fs::read(path).unwrap();
            let mut pos = 0usize;
            let header: SegmentHeader =
                binval::from_bytes(read_frame(&bytes, &mut pos).unwrap()).unwrap();
            header.version
        };
        assert_eq!(header_version(&segments[before - 1].1), 1);
        assert_eq!(header_version(&segments.last().unwrap().1), 2);
        // Everything reads back, across the format switch.
        let log = read_log(&dir).unwrap();
        assert_eq!(log.txns.len(), 40);
        assert_eq!(log.txns[25], txn(25));
        assert_eq!(log.last_segment_version, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn schema_table_segments_shrink_the_log() {
        let dir_v2 = tmpdir("size_v2");
        let dir_v1 = tmpdir("size_v1");
        const TXNS: u32 = 200;
        let mut w = LogWriter::create(&dir_v2, &meta()).unwrap();
        for i in 0..TXNS {
            w.append(&txn(i)).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        write_v1_log(&dir_v1, &meta(), TXNS, DEFAULT_SEGMENT_BYTES);
        let total = |dir: &Path| -> u64 {
            segment_files(dir)
                .unwrap()
                .iter()
                .map(|(_, p)| fs::metadata(p).unwrap().len())
                .sum()
        };
        let (v1, v2) = (total(&dir_v1), total(&dir_v2));
        // Both logs round-trip identically...
        let log = read_log(&dir_v2).unwrap();
        assert_eq!(log.txns, read_log(&dir_v1).unwrap().txns);
        assert_eq!(log.txns.len(), TXNS as usize);
        // ...but the schema-table form nearly halves the bytes: field names
        // are written once per segment instead of once per record. (Tiny
        // two-op transactions shrink ~1.8×; real histories with more ops
        // per record shrink further.)
        assert!(
            v2 * 8 <= v1 * 5,
            "schema-table log must shrink at least 1.6x: v2 {v2} vs v1 {v1}"
        );
        let _ = fs::remove_dir_all(&dir_v1);
        let _ = fs::remove_dir_all(&dir_v2);
    }

    #[test]
    fn fresh_create_refuses_an_existing_log() {
        let dir = tmpdir("exists");
        let _w = LogWriter::create(&dir, &meta()).unwrap();
        assert!(matches!(
            LogWriter::create(&dir, &meta()),
            Err(StoreError::Format(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}
