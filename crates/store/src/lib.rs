//! # mtc-store
//!
//! Durable histories and checkpointed streaming verification for the MTC
//! workspace: an append-only, segmented, CRC-checked binary history log
//! with crash-tolerant tail recovery ([`segment`]), atomic checkpoint files
//! holding [`mtc_core::CheckerSnapshot`]s ([`checkpoint`]), and a facade
//! tying both to the write-ahead recording discipline ([`store`]).
//!
//! The point of this layer: a verification session is no longer a purely
//! in-memory affair. Every recorded transaction hits the log before the
//! checker sees it, snapshots of the checker land next to the log, and any
//! crash — process kill, power loss mid-frame — resumes from the newest
//! intact checkpoint with a verdict bit-identical to the uninterrupted
//! run's. A logged session is also re-checkable offline, against any
//! checker, long after the database under test is gone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binval;
pub mod checkpoint;
pub mod delta;
pub mod frame;
pub mod segment;
pub mod store;

pub use binval::{decode_value, encode_value, from_bytes, to_bytes, DecodeError};
pub use checkpoint::{
    latest_checkpoint, prune_checkpoints, read_checkpoint, write_checkpoint,
    write_checkpoint_delta, CHECKPOINT_VERSION,
};
pub use delta::DeltaOp;
pub use frame::{crc32, read_frame, write_frame, FrameError};
pub use segment::{read_log, LogRecord, LogWriter, RecoveredLog, StreamMeta, LOG_VERSION};
pub use store::{recover, MtcStore, Recovery, CHECKPOINT_REBASE_INTERVAL, DEFAULT_CHECKPOINT_KEEP};

use std::io;

/// Errors produced by the store layer.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// A frame or record failed its integrity check outside the tolerated
    /// torn tail.
    Corrupt(String),
    /// A binary value failed to decode.
    Decode(DecodeError),
    /// A decoded value did not deserialize into the expected type.
    Serde(String),
    /// Structurally invalid content (wrong magic, missing metadata, …).
    Format(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Corrupt(m) => write!(f, "corrupt store: {m}"),
            StoreError::Decode(e) => write!(f, "decode error: {e}"),
            StoreError::Serde(m) => write!(f, "serde error: {m}"),
            StoreError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<DecodeError> for StoreError {
    fn from(e: DecodeError) -> Self {
        StoreError::Decode(e)
    }
}
