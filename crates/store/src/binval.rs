//! Compact binary encoding of the workspace serde value tree.
//!
//! Everything the checkers persist — transactions, stream metadata,
//! checker snapshots — already serializes into [`serde::JsonValue`] through
//! the workspace's offline serde stack. This module gives that tree a
//! *binary* wire form: one tag byte per node, LEB128 varints for lengths
//! and unsigned integers, zig-zag varints for signed ones, and raw IEEE-754
//! bits for floats. Compared to JSON text it is both more compact (framing
//! and numbers shrink; field names remain) and exact — no number formatting
//! round-trip concerns, no escaping.
//!
//! The encoding is self-delimiting: a value knows its own extent, so frames
//! (see [`crate::frame`]) only add integrity, not structure.

use serde::{Deserialize, JsonValue, Serialize};

/// Errors produced while decoding a binary value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended inside a value.
    Truncated,
    /// An unknown tag byte was encountered.
    BadTag(u8),
    /// A varint ran over its maximum width.
    BadVarint,
    /// A string payload was not valid UTF-8.
    BadUtf8,
    /// The value ended before the input did.
    TrailingBytes,
    /// Nesting exceeded [`MAX_DEPTH`] (a crafted or corrupt payload must
    /// not overflow the decoder's stack).
    TooDeep,
    /// An indexed object key referred past the end of the key table.
    BadKeyIndex(u64),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "input ends inside a value"),
            DecodeError::BadTag(t) => write!(f, "unknown value tag {t:#04x}"),
            DecodeError::BadVarint => write!(f, "malformed varint"),
            DecodeError::BadUtf8 => write!(f, "string payload is not UTF-8"),
            DecodeError::TrailingBytes => write!(f, "trailing bytes after the value"),
            DecodeError::TooDeep => write!(f, "value nesting exceeds {MAX_DEPTH} levels"),
            DecodeError::BadKeyIndex(i) => write!(f, "object key index {i} out of range"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Maximum value-tree nesting the decoder accepts. Checker snapshots and
/// transactions nest a handful of levels; the cap only exists so a
/// CRC-valid but hostile payload cannot abort recovery via stack overflow.
pub const MAX_DEPTH: usize = 128;

const TAG_NULL: u8 = 0x00;
const TAG_FALSE: u8 = 0x01;
const TAG_TRUE: u8 = 0x02;
const TAG_U64: u8 = 0x03;
const TAG_I64: u8 = 0x04;
const TAG_F64: u8 = 0x05;
const TAG_STR: u8 = 0x06;
const TAG_ARRAY: u8 = 0x07;
const TAG_OBJECT: u8 = 0x08;
/// An object whose keys are varint indices into an out-of-band key table
/// (the schema-table form used by v2 log segments, see [`crate::segment`]).
const TAG_OBJECT_IDX: u8 = 0x09;

pub(crate) fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

pub(crate) fn get_varint(input: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = input.get(*pos).ok_or(DecodeError::Truncated)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            // The 10th byte holds the single remaining bit 63: any other
            // payload bit (or a continuation bit) would overflow u64.
            return Err(DecodeError::BadVarint);
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            // Canonical-form check: the final byte of a multi-byte varint
            // must contribute bits. [`put_varint`] never emits a trailing
            // zero byte, so accepting one (e.g. `0x80 0x00` for 0) would
            // give a single value multiple wire forms — a gift to anyone
            // trying to smuggle mismatched bytes past a CRC or dedup layer
            // now that this decoder faces the network.
            if byte == 0 && shift != 0 {
                return Err(DecodeError::BadVarint);
            }
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(DecodeError::BadVarint);
        }
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn encode_into(v: &JsonValue, out: &mut Vec<u8>) {
    match v {
        JsonValue::Null => out.push(TAG_NULL),
        JsonValue::Bool(false) => out.push(TAG_FALSE),
        JsonValue::Bool(true) => out.push(TAG_TRUE),
        JsonValue::U64(n) => {
            out.push(TAG_U64);
            put_varint(out, *n);
        }
        JsonValue::I64(n) => {
            out.push(TAG_I64);
            put_varint(out, zigzag(*n));
        }
        JsonValue::F64(x) => {
            out.push(TAG_F64);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        JsonValue::Str(s) => {
            out.push(TAG_STR);
            put_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        JsonValue::Array(items) => {
            out.push(TAG_ARRAY);
            put_varint(out, items.len() as u64);
            for item in items {
                encode_into(item, out);
            }
        }
        JsonValue::Object(entries) => {
            out.push(TAG_OBJECT);
            put_varint(out, entries.len() as u64);
            for (k, val) in entries {
                put_varint(out, k.len() as u64);
                out.extend_from_slice(k.as_bytes());
                encode_into(val, out);
            }
        }
    }
}

/// Key tables an indexed decode resolves [`TAG_OBJECT_IDX`] keys against:
/// the table carried over from earlier records plus the keys the current
/// record introduces (kept separate so a record that fails to decode does
/// not pollute the carried-over table).
#[derive(Clone, Copy)]
struct KeyTables<'a> {
    base: &'a [String],
    pending: &'a [String],
}

impl KeyTables<'_> {
    fn resolve(&self, idx: u64) -> Result<&str, DecodeError> {
        let i = idx as usize;
        self.base
            .get(i)
            .or_else(|| self.pending.get(i.wrapping_sub(self.base.len())))
            .map(String::as_str)
            .ok_or(DecodeError::BadKeyIndex(idx))
    }
}

fn decode_at(
    input: &[u8],
    pos: &mut usize,
    depth: usize,
    keys: Option<KeyTables<'_>>,
) -> Result<JsonValue, DecodeError> {
    if depth > MAX_DEPTH {
        return Err(DecodeError::TooDeep);
    }
    let &tag = input.get(*pos).ok_or(DecodeError::Truncated)?;
    *pos += 1;
    match tag {
        TAG_NULL => Ok(JsonValue::Null),
        TAG_FALSE => Ok(JsonValue::Bool(false)),
        TAG_TRUE => Ok(JsonValue::Bool(true)),
        TAG_U64 => Ok(JsonValue::U64(get_varint(input, pos)?)),
        TAG_I64 => Ok(JsonValue::I64(unzigzag(get_varint(input, pos)?))),
        TAG_F64 => {
            let end = pos.checked_add(8).ok_or(DecodeError::Truncated)?;
            let bytes = input.get(*pos..end).ok_or(DecodeError::Truncated)?;
            *pos = end;
            Ok(JsonValue::F64(f64::from_bits(u64::from_le_bytes(
                bytes.try_into().expect("8-byte slice"),
            ))))
        }
        TAG_STR => {
            let s = decode_str(input, pos)?;
            Ok(JsonValue::Str(s))
        }
        TAG_ARRAY => {
            let len = get_varint(input, pos)? as usize;
            // Cap the pre-allocation: a corrupt length must not OOM.
            let mut items = Vec::with_capacity(len.min(4096));
            for _ in 0..len {
                items.push(decode_at(input, pos, depth + 1, keys)?);
            }
            Ok(JsonValue::Array(items))
        }
        TAG_OBJECT => {
            let len = get_varint(input, pos)? as usize;
            let mut entries = Vec::with_capacity(len.min(4096));
            for _ in 0..len {
                let key = decode_str(input, pos)?;
                let val = decode_at(input, pos, depth + 1, keys)?;
                entries.push((key, val));
            }
            Ok(JsonValue::Object(entries))
        }
        TAG_OBJECT_IDX => {
            // Only valid in indexed payloads: a plain decode has no table.
            let tables = keys.ok_or(DecodeError::BadTag(TAG_OBJECT_IDX))?;
            let len = get_varint(input, pos)? as usize;
            let mut entries = Vec::with_capacity(len.min(4096));
            for _ in 0..len {
                let key = tables.resolve(get_varint(input, pos)?)?.to_string();
                let val = decode_at(input, pos, depth + 1, keys)?;
                entries.push((key, val));
            }
            Ok(JsonValue::Object(entries))
        }
        other => Err(DecodeError::BadTag(other)),
    }
}

pub(crate) fn decode_str(input: &[u8], pos: &mut usize) -> Result<String, DecodeError> {
    let len = get_varint(input, pos)? as usize;
    let end = pos.checked_add(len).ok_or(DecodeError::Truncated)?;
    let bytes = input.get(*pos..end).ok_or(DecodeError::Truncated)?;
    *pos = end;
    String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
}

/// Encodes a value tree into its binary form.
pub fn encode_value(v: &JsonValue) -> Vec<u8> {
    let mut out = Vec::new();
    encode_into(v, &mut out);
    out
}

/// Decodes a binary value, requiring the input to be exactly one value.
pub fn decode_value(input: &[u8]) -> Result<JsonValue, DecodeError> {
    let mut pos = 0usize;
    let v = decode_at(input, &mut pos, 0, None)?;
    if pos != input.len() {
        return Err(DecodeError::TrailingBytes);
    }
    Ok(v)
}

/// Writer-side key interner for schema-table (indexed) payloads: every
/// distinct object key is assigned a dense index in first-seen order.
#[derive(Debug, Default)]
pub struct KeyDict {
    keys: Vec<String>,
    index: std::collections::HashMap<String, u64>,
}

impl KeyDict {
    /// Number of interned keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True iff no key has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The interned keys, in index order.
    pub fn keys(&self) -> &[String] {
        &self.keys
    }

    /// Pre-loads keys recovered from an existing payload stream, in index
    /// order, so appended values keep resolving against the same table.
    pub fn extend_known(&mut self, keys: &[String]) {
        for k in keys {
            self.intern(k);
        }
    }

    fn intern(&mut self, key: &str) -> u64 {
        if let Some(&i) = self.index.get(key) {
            return i;
        }
        let i = self.keys.len() as u64;
        self.keys.push(key.to_string());
        self.index.insert(key.to_string(), i);
        i
    }
}

/// Encodes a value like [`encode_value`], but writes every object in the
/// schema-table form: keys become varint indices into `dict`, and keys not
/// yet interned are appended to it. The caller is responsible for shipping
/// `dict`'s new tail alongside the payload so readers can rebuild the table.
pub fn encode_value_indexed(v: &JsonValue, dict: &mut KeyDict, out: &mut Vec<u8>) {
    match v {
        JsonValue::Array(items) => {
            out.push(TAG_ARRAY);
            put_varint(out, items.len() as u64);
            for item in items {
                encode_value_indexed(item, dict, out);
            }
        }
        JsonValue::Object(entries) => {
            out.push(TAG_OBJECT_IDX);
            put_varint(out, entries.len() as u64);
            for (k, val) in entries {
                put_varint(out, dict.intern(k));
                encode_value_indexed(val, dict, out);
            }
        }
        scalar => encode_into(scalar, out),
    }
}

/// Decodes exactly one value whose indexed object keys resolve against
/// `base` (the table carried over from earlier records) extended by
/// `pending` (the keys the current record introduces).
pub fn decode_value_indexed(
    input: &[u8],
    base: &[String],
    pending: &[String],
) -> Result<JsonValue, DecodeError> {
    let mut pos = 0usize;
    let v = decode_at(input, &mut pos, 0, Some(KeyTables { base, pending }))?;
    if pos != input.len() {
        return Err(DecodeError::TrailingBytes);
    }
    Ok(v)
}

/// Serializes any workspace-serde type into the binary value form.
pub fn to_bytes<T: Serialize>(value: &T) -> Vec<u8> {
    encode_value(&value.to_json_value())
}

/// Deserializes a workspace-serde type from the binary value form.
pub fn from_bytes<T: Deserialize>(input: &[u8]) -> Result<T, crate::StoreError> {
    let v = decode_value(input).map_err(crate::StoreError::Decode)?;
    T::from_json_value(&v).map_err(|e| crate::StoreError::Serde(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(v: JsonValue) {
        let bytes = encode_value(&v);
        assert_eq!(decode_value(&bytes).unwrap(), v, "round trip of {v:?}");
    }

    #[test]
    fn scalars_round_trip() {
        rt(JsonValue::Null);
        rt(JsonValue::Bool(true));
        rt(JsonValue::Bool(false));
        rt(JsonValue::U64(0));
        rt(JsonValue::U64(u64::MAX));
        rt(JsonValue::I64(-1));
        rt(JsonValue::I64(i64::MIN));
        rt(JsonValue::F64(3.5));
        rt(JsonValue::F64(-0.0));
        rt(JsonValue::Str(String::new()));
        rt(JsonValue::Str("héllo\nworld".to_string()));
    }

    #[test]
    fn packed_u64_values_survive_exactly() {
        // Allocator-style packed values use the high bits.
        let packed = (37u64 + 1) << 40 | 123;
        rt(JsonValue::U64(packed));
    }

    #[test]
    fn nested_structures_round_trip() {
        rt(JsonValue::Array(vec![
            JsonValue::U64(1),
            JsonValue::Object(vec![
                ("k".to_string(), JsonValue::Array(vec![])),
                ("v".to_string(), JsonValue::I64(-7)),
            ]),
            JsonValue::Null,
        ]));
    }

    #[test]
    fn truncated_input_is_rejected() {
        let bytes = encode_value(&JsonValue::Str("hello".to_string()));
        for cut in 0..bytes.len() {
            assert!(
                decode_value(&bytes[..cut]).is_err(),
                "prefix of length {cut} must not decode"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_value(&JsonValue::U64(7));
        bytes.push(0);
        assert_eq!(decode_value(&bytes), Err(DecodeError::TrailingBytes));
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert_eq!(decode_value(&[0xff]), Err(DecodeError::BadTag(0xff)));
    }

    #[test]
    fn hostile_nesting_is_rejected_without_overflowing() {
        // ~100k nested singleton arrays: CRC-valid in a frame, must fail
        // with TooDeep instead of blowing the stack during recovery.
        let mut bytes = vec![TAG_ARRAY; 0]; // built below
        for _ in 0..100_000 {
            bytes.push(TAG_ARRAY);
            bytes.push(1);
        }
        bytes.push(TAG_NULL);
        assert_eq!(decode_value(&bytes), Err(DecodeError::TooDeep));
        // Sane nesting below the cap still decodes.
        let mut ok = Vec::new();
        for _ in 0..(MAX_DEPTH - 1) {
            ok.push(TAG_ARRAY);
            ok.push(1);
        }
        ok.push(TAG_NULL);
        assert!(decode_value(&ok).is_ok());
    }

    #[test]
    fn overlong_varint_is_rejected() {
        let bytes = [
            TAG_U64, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f,
        ];
        assert!(decode_value(&bytes).is_err());
    }

    #[test]
    fn overflowing_varints_error_instead_of_wrapping() {
        // 10 continuation bytes followed by anything: more than 64 bits.
        let mut bytes = vec![TAG_U64];
        bytes.extend_from_slice(&[0x80; 10]);
        bytes.push(0x01);
        assert_eq!(decode_value(&bytes), Err(DecodeError::BadVarint));
        // Exactly 10 bytes but the last one carries payload bits above 63.
        let mut bytes = vec![TAG_U64];
        bytes.extend_from_slice(&[0xff; 9]);
        bytes.push(0x02);
        assert_eq!(decode_value(&bytes), Err(DecodeError::BadVarint));
        // u64::MAX itself is the canonical 10-byte edge and must decode.
        let mut pos = 0;
        let max = encode_value(&JsonValue::U64(u64::MAX));
        assert_eq!(get_varint(&max[1..], &mut pos), Ok(u64::MAX));
    }

    #[test]
    fn non_canonical_varints_are_rejected() {
        // Every overlong spelling of small values: trailing zero bytes.
        for overlong in [
            vec![0x80, 0x00],             // 0 in two bytes
            vec![0x81, 0x00],             // 1 in two bytes
            vec![0xff, 0x80, 0x00],       // 127+pad in three bytes
            vec![0x80, 0x80, 0x80, 0x00], // 0 in four bytes
        ] {
            let mut bytes = vec![TAG_U64];
            bytes.extend_from_slice(&overlong);
            assert_eq!(
                decode_value(&bytes),
                Err(DecodeError::BadVarint),
                "overlong {overlong:02x?} must not decode"
            );
        }
        // The canonical spellings of the same values still decode.
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let bytes = encode_value(&JsonValue::U64(v));
            assert_eq!(decode_value(&bytes).unwrap(), JsonValue::U64(v));
        }
    }

    #[test]
    fn every_truncation_offset_of_a_record_corpus_errors_cleanly() {
        use mtc_history::{Op, SessionId, Transaction, TxnId};
        // A corpus of realistic encoded records: transactions of several
        // shapes (the payloads that now cross the network), plus synthetic
        // values stressing every tag. Decoding any strict prefix must fail
        // with a decode error — never panic, never succeed on a prefix.
        let mut corpus: Vec<Vec<u8>> = Vec::new();
        for (id, ops) in [
            (1u32, vec![Op::read(0u64, 0u64)]),
            (
                77,
                vec![
                    Op::read(5u64, 1u64 << 41),
                    Op::write(5u64, (1u64 << 41) + 1),
                ],
            ),
            (
                u32::MAX,
                vec![
                    Op::write(9u64, u64::MAX - 1),
                    Op::read(10u64, 0u64),
                    Op::write(10u64, 3u64),
                ],
            ),
        ] {
            let txn = Transaction::committed(TxnId(id), SessionId(2), ops)
                .with_times(u64::from(id) * 100, u64::from(id) * 100 + 7);
            corpus.push(encode_value(&txn.to_json_value()));
        }
        corpus.push(encode_value(&JsonValue::Array(vec![
            JsonValue::Null,
            JsonValue::Bool(true),
            JsonValue::U64(u64::MAX),
            JsonValue::I64(i64::MIN),
            JsonValue::F64(6.25),
            JsonValue::Str("network-facing".to_string()),
            JsonValue::Object(vec![("k".to_string(), JsonValue::U64(300))]),
        ])));
        // Indexed (schema-table) form of an object record, decoded against
        // its key table: same every-offset guarantee.
        let obj = JsonValue::Object(vec![
            ("session".to_string(), JsonValue::U64(3)),
            ("ops".to_string(), JsonValue::Array(vec![JsonValue::U64(9)])),
        ]);
        let mut dict = KeyDict::default();
        let mut indexed = Vec::new();
        encode_value_indexed(&obj, &mut dict, &mut indexed);
        for cut in 0..indexed.len() {
            assert!(
                decode_value_indexed(&indexed[..cut], dict.keys(), &[]).is_err(),
                "indexed prefix of length {cut} must not decode"
            );
        }
        assert_eq!(
            decode_value_indexed(&indexed, dict.keys(), &[]).unwrap(),
            obj
        );
        for (i, record) in corpus.iter().enumerate() {
            // The whole record decodes…
            assert!(decode_value(record).is_ok(), "corpus record {i}");
            // …and every strict prefix is a clean error.
            for cut in 0..record.len() {
                assert!(
                    decode_value(&record[..cut]).is_err(),
                    "corpus record {i}: prefix of length {cut} must not decode"
                );
            }
        }
    }

    #[test]
    fn indexed_values_round_trip_and_drop_repeated_keys() {
        let obj = JsonValue::Object(vec![
            ("first_field".to_string(), JsonValue::U64(1)),
            (
                "nested".to_string(),
                JsonValue::Array(vec![
                    JsonValue::Object(vec![("first_field".to_string(), JsonValue::U64(2))]),
                    JsonValue::Object(vec![("first_field".to_string(), JsonValue::U64(3))]),
                ]),
            ),
        ]);
        let mut dict = KeyDict::default();
        let mut indexed = Vec::new();
        encode_value_indexed(&obj, &mut dict, &mut indexed);
        assert_eq!(
            dict.keys(),
            ["first_field".to_string(), "nested".to_string()]
        );
        // The three "first_field" occurrences collapse to one dict entry,
        // so the indexed body is smaller than the inline-keyed form.
        assert!(indexed.len() < encode_value(&obj).len() - 2 * "first_field".len());
        let decoded = decode_value_indexed(&indexed, dict.keys(), &[]).unwrap();
        assert_eq!(decoded, obj);
        // Split tables (base + pending) resolve identically.
        let decoded = decode_value_indexed(&indexed, &dict.keys()[..1], &dict.keys()[1..]).unwrap();
        assert_eq!(decoded, obj);
    }

    #[test]
    fn indexed_objects_are_rejected_without_a_key_table() {
        let obj = JsonValue::Object(vec![("k".to_string(), JsonValue::Null)]);
        let mut dict = KeyDict::default();
        let mut indexed = Vec::new();
        encode_value_indexed(&obj, &mut dict, &mut indexed);
        assert_eq!(
            decode_value(&indexed),
            Err(DecodeError::BadTag(TAG_OBJECT_IDX))
        );
        // An index past both tables is a decode error, not a panic.
        assert_eq!(
            decode_value_indexed(&indexed, &[], &[]),
            Err(DecodeError::BadKeyIndex(0))
        );
    }

    #[test]
    fn binary_is_smaller_than_json_for_typical_records() {
        use mtc_history::{Op, SessionId, Transaction, TxnId};
        let txn = Transaction::committed(
            TxnId(12345),
            SessionId(3),
            vec![
                Op::read(17u64, 1u64 << 41),
                Op::write(17u64, (1u64 << 41) + 1),
            ],
        )
        .with_times(1_000_000, 1_000_050);
        let v = txn.to_json_value();
        let bin = encode_value(&v);
        let mut json = String::new();
        v.render(&mut json);
        assert!(
            bin.len() < json.len() * 3 / 4,
            "binary {} vs json {}",
            bin.len(),
            json.len()
        );
    }
}
