//! Checkpoint files: framed, CRC-checked checker snapshots.
//!
//! A checkpoint file holds one [`mtc_core::CheckerSnapshot`] taken after
//! consuming `consumed` recorded transactions:
//!
//! ```text
//! <dir>/checkpoint-000000001234.mtcck
//! ```
//!
//! The file is two frames — a small header binding it to the format, then
//! the binary-encoded snapshot — written to a temporary name and renamed
//! into place, so a crash mid-checkpoint never damages an older checkpoint.
//! [`latest_checkpoint`] walks the files newest-first and returns the first
//! one that validates, so a torn newest checkpoint degrades to the previous
//! one instead of failing recovery.

use crate::binval;
use crate::frame::{read_frame, write_frame};
use crate::StoreError;
use mtc_core::CheckerSnapshot;
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::{Path, PathBuf};

/// Magic tag of checkpoint files.
pub const CHECKPOINT_MAGIC: &str = "mtc-store-checkpoint";
/// Current checkpoint file format version.
pub const CHECKPOINT_VERSION: u32 = 1;

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct CheckpointHeader {
    magic: String,
    version: u32,
    /// Recorded transactions consumed by the snapshotted checker
    /// (excluding `⊥T`): the log index to resume replay from.
    consumed: u64,
}

fn checkpoint_path(dir: &Path, consumed: u64) -> PathBuf {
    dir.join(format!("checkpoint-{consumed:012}.mtcck"))
}

/// Lists checkpoint files in `dir`, oldest first.
fn checkpoint_files(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(consumed) = name
            .strip_prefix("checkpoint-")
            .and_then(|s| s.strip_suffix(".mtcck"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((consumed, entry.path()));
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// Writes a checkpoint for a snapshot that consumed `consumed` recorded
/// transactions, atomically (write-then-rename). Returns the final path.
pub fn write_checkpoint(
    dir: impl AsRef<Path>,
    consumed: u64,
    snapshot: &CheckerSnapshot,
) -> Result<PathBuf, StoreError> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let mut bytes = Vec::new();
    let header = CheckpointHeader {
        magic: CHECKPOINT_MAGIC.to_string(),
        version: CHECKPOINT_VERSION,
        consumed,
    };
    write_frame(&mut bytes, &binval::to_bytes(&header));
    write_frame(&mut bytes, &binval::to_bytes(snapshot));
    let finals = checkpoint_path(dir, consumed);
    let tmp = finals.with_extension("mtcck.tmp");
    fs::write(&tmp, &bytes)?;
    fs::rename(&tmp, &finals)?;
    Ok(finals)
}

/// Reads and validates one checkpoint file.
pub fn read_checkpoint(path: impl AsRef<Path>) -> Result<(u64, CheckerSnapshot), StoreError> {
    let path = path.as_ref();
    let bytes = fs::read(path)?;
    let mut pos = 0usize;
    let header: CheckpointHeader = binval::from_bytes(
        read_frame(&bytes, &mut pos)
            .map_err(|e| StoreError::Corrupt(format!("{}: {e}", path.display())))?,
    )?;
    if header.magic != CHECKPOINT_MAGIC {
        return Err(StoreError::Format(format!(
            "{}: not an mtc-store checkpoint",
            path.display()
        )));
    }
    if header.version != CHECKPOINT_VERSION {
        return Err(StoreError::Format(format!(
            "{}: unsupported checkpoint version {}",
            path.display(),
            header.version
        )));
    }
    let snapshot: CheckerSnapshot = binval::from_bytes(
        read_frame(&bytes, &mut pos)
            .map_err(|e| StoreError::Corrupt(format!("{}: {e}", path.display())))?,
    )?;
    Ok((header.consumed, snapshot))
}

/// The newest checkpoint in `dir` that validates, if any. Damaged newer
/// checkpoints are skipped (a crash mid-`write_checkpoint` leaves only a
/// `.tmp` file, but defense-in-depth costs one CRC pass).
pub fn latest_checkpoint(
    dir: impl AsRef<Path>,
) -> Result<Option<(u64, CheckerSnapshot)>, StoreError> {
    let mut files = checkpoint_files(dir.as_ref())?;
    files.reverse();
    for (_, path) in files {
        if let Ok(loaded) = read_checkpoint(&path) {
            return Ok(Some(loaded));
        }
    }
    Ok(None)
}

/// Deletes all but the newest `keep` checkpoints.
pub fn prune_checkpoints(dir: impl AsRef<Path>, keep: usize) -> Result<usize, StoreError> {
    let files = checkpoint_files(dir.as_ref())?;
    let doomed = files.len().saturating_sub(keep);
    for (_, path) in files.into_iter().take(doomed) {
        fs::remove_file(path)?;
    }
    Ok(doomed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_core::{IncrementalChecker, IsolationLevel};
    use mtc_history::Op;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mtc_store_ck_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_snapshot(n: u64) -> CheckerSnapshot {
        let mut c =
            IncrementalChecker::new(IsolationLevel::Serializability).with_init_keys(0..4u64);
        let mut last = 0u64;
        for i in 0..n {
            c.push_committed(0, vec![Op::read(0u64, last), Op::write(0u64, i + 1)])
                .unwrap();
            last = i + 1;
        }
        c.checkpoint()
    }

    #[test]
    fn checkpoint_round_trips_and_resumes() {
        let dir = tmpdir("rt");
        let snapshot = sample_snapshot(20);
        write_checkpoint(&dir, 20, &snapshot).unwrap();
        let (consumed, loaded) = latest_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(consumed, 20);
        assert_eq!(loaded.txn_count(), snapshot.txn_count());
        let mut resumed = IncrementalChecker::resume(loaded);
        resumed
            .push_committed(0, vec![Op::read(0u64, 20u64), Op::write(0u64, 77u64)])
            .unwrap();
        assert!(resumed.finish().unwrap().is_satisfied());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_newest_checkpoint_falls_back_to_the_previous_one() {
        let dir = tmpdir("fallback");
        write_checkpoint(&dir, 10, &sample_snapshot(10)).unwrap();
        let newest = write_checkpoint(&dir, 20, &sample_snapshot(20)).unwrap();
        let mut bytes = fs::read(&newest).unwrap();
        let at = bytes.len() - 5;
        bytes[at] ^= 0xff;
        fs::write(&newest, &bytes).unwrap();
        let (consumed, _) = latest_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(consumed, 10, "damaged newest must be skipped");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_keeps_the_newest() {
        let dir = tmpdir("prune");
        for consumed in [5u64, 10, 15, 20] {
            write_checkpoint(&dir, consumed, &sample_snapshot(consumed)).unwrap();
        }
        assert_eq!(prune_checkpoints(&dir, 2).unwrap(), 2);
        let files = checkpoint_files(&dir).unwrap();
        assert_eq!(
            files.iter().map(|&(c, _)| c).collect::<Vec<_>>(),
            vec![15, 20]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_dir_has_no_checkpoint() {
        let dir = tmpdir("empty");
        fs::create_dir_all(&dir).unwrap();
        assert!(latest_checkpoint(&dir).unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
