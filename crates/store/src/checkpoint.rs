//! Checkpoint files: framed, CRC-checked checker snapshots, full or delta.
//!
//! A *full* checkpoint holds one binval-encoded [`mtc_core::CheckerSnapshot`]
//! taken after consuming `consumed` recorded transactions; a *delta*
//! checkpoint holds [`crate::delta::DeltaOp`]s against the payload of the
//! previous checkpoint (itself full or delta), plus a CRC of the payload it
//! reconstructs:
//!
//! ```text
//! <dir>/checkpoint-000000001024.mtcck     full snapshot
//! <dir>/checkpoint-000000002048.mtcckd    delta against 1024
//! <dir>/checkpoint-000000003072.mtcckd    delta against 2048
//! ```
//!
//! Each file is two frames — a small header binding it to the format, then
//! the payload — written to a temporary name and renamed into place, so a
//! crash mid-checkpoint never damages an older checkpoint.
//! [`latest_checkpoint`] walks the files newest-first and returns the first
//! one that *fully resolves* (for a delta: every link of its base chain
//! loads and the reconstructed payload matches the recorded CRC), so a torn
//! or orphaned newest checkpoint degrades to an older one instead of
//! failing recovery. [`prune_checkpoints`] is chain-aware: a retained delta
//! pins its bases, however old.

use crate::binval;
use crate::delta;
use crate::frame::{crc32, read_frame, write_frame};
use crate::StoreError;
use mtc_core::CheckerSnapshot;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fs;
use std::path::{Path, PathBuf};

/// Magic tag of full checkpoint files.
pub const CHECKPOINT_MAGIC: &str = "mtc-store-checkpoint";
/// Magic tag of delta checkpoint files.
pub const CHECKPOINT_DELTA_MAGIC: &str = "mtc-store-checkpoint-delta";
/// Current checkpoint file format version.
pub const CHECKPOINT_VERSION: u32 = 1;
/// Longest tolerated base chain under a delta (defense against a buggy or
/// hostile directory; the store's rebase cadence keeps real chains short).
const MAX_CHAIN: usize = 64;

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct CheckpointHeader {
    magic: String,
    version: u32,
    /// Recorded transactions consumed by the snapshotted checker
    /// (excluding `⊥T`): the log index to resume replay from.
    consumed: u64,
}

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct DeltaHeader {
    magic: String,
    version: u32,
    /// Same meaning as [`CheckpointHeader::consumed`].
    consumed: u64,
    /// `consumed` of the checkpoint the ops apply against.
    base_consumed: u64,
    /// CRC-32 of the reconstructed full snapshot payload.
    snapshot_crc: u32,
}

fn checkpoint_path(dir: &Path, consumed: u64) -> PathBuf {
    dir.join(format!("checkpoint-{consumed:012}.mtcck"))
}

fn delta_checkpoint_path(dir: &Path, consumed: u64) -> PathBuf {
    dir.join(format!("checkpoint-{consumed:012}.mtcckd"))
}

/// Which kind of checkpoint a file holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CkKind {
    Full,
    Delta,
}

/// Lists checkpoint files in `dir`, oldest first; a full and a delta at the
/// same `consumed` sort full-first.
fn checkpoint_files(dir: &Path) -> Result<Vec<(u64, CkKind, PathBuf)>, StoreError> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(rest) = name.strip_prefix("checkpoint-") else {
            continue;
        };
        let parsed = rest
            .strip_suffix(".mtcck")
            .map(|s| (s, CkKind::Full))
            .or_else(|| rest.strip_suffix(".mtcckd").map(|s| (s, CkKind::Delta)));
        if let Some((consumed, kind)) = parsed.and_then(|(s, k)| Some((s.parse::<u64>().ok()?, k)))
        {
            out.push((consumed, kind, entry.path()));
        }
    }
    out.sort_unstable_by_key(|&(c, k, _)| (c, k == CkKind::Delta));
    Ok(out)
}

/// Writes a full checkpoint for a snapshot that consumed `consumed`
/// recorded transactions, atomically (write-then-rename). Returns the
/// final path.
pub fn write_checkpoint(
    dir: impl AsRef<Path>,
    consumed: u64,
    snapshot: &CheckerSnapshot,
) -> Result<PathBuf, StoreError> {
    write_checkpoint_bytes(dir, consumed, &binval::to_bytes(snapshot))
}

/// [`write_checkpoint`] over an already-encoded snapshot payload (the store
/// facade encodes once and shares the bytes with the delta writer).
pub fn write_checkpoint_bytes(
    dir: impl AsRef<Path>,
    consumed: u64,
    payload: &[u8],
) -> Result<PathBuf, StoreError> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let mut bytes = Vec::new();
    let header = CheckpointHeader {
        magic: CHECKPOINT_MAGIC.to_string(),
        version: CHECKPOINT_VERSION,
        consumed,
    };
    write_frame(&mut bytes, &binval::to_bytes(&header));
    write_frame(&mut bytes, payload);
    let finals = checkpoint_path(dir, consumed);
    let tmp = finals.with_extension("mtcck.tmp");
    fs::write(&tmp, &bytes)?;
    fs::rename(&tmp, &finals)?;
    Ok(finals)
}

/// Writes a delta checkpoint: `payload` (the binval-encoded snapshot at
/// `consumed`) expressed against `base_payload` (the snapshot payload of
/// the checkpoint at `base_consumed`). Returns `None` — writing nothing —
/// when the delta would not undercut a full checkpoint, so callers fall
/// back to [`write_checkpoint_bytes`]; otherwise the final path.
pub fn write_checkpoint_delta(
    dir: impl AsRef<Path>,
    consumed: u64,
    base_consumed: u64,
    payload: &[u8],
    base_payload: &[u8],
) -> Result<Option<PathBuf>, StoreError> {
    assert!(
        base_consumed < consumed,
        "a delta base must be strictly older than the checkpoint"
    );
    let ops = delta::compute(base_payload, payload);
    let encoded = delta::encode_ops(&ops);
    if encoded.len() >= payload.len() {
        return Ok(None);
    }
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let mut bytes = Vec::new();
    let header = DeltaHeader {
        magic: CHECKPOINT_DELTA_MAGIC.to_string(),
        version: CHECKPOINT_VERSION,
        consumed,
        base_consumed,
        snapshot_crc: crc32(payload),
    };
    write_frame(&mut bytes, &binval::to_bytes(&header));
    write_frame(&mut bytes, &encoded);
    let finals = delta_checkpoint_path(dir, consumed);
    let tmp = finals.with_extension("mtcckd.tmp");
    fs::write(&tmp, &bytes)?;
    fs::rename(&tmp, &finals)?;
    Ok(Some(finals))
}

/// The two validated frames of a checkpoint file: its parsed header (full
/// or delta) and the payload frame.
fn read_frames(path: &Path) -> Result<(CkHeader, Vec<u8>), StoreError> {
    let bytes = fs::read(path)?;
    let mut pos = 0usize;
    let corrupt =
        |e: crate::frame::FrameError| StoreError::Corrupt(format!("{}: {e}", path.display()));
    let header_bytes = read_frame(&bytes, &mut pos).map_err(corrupt)?;
    // The magic discriminates the kinds. Both headers start with the magic
    // string, so a full-header parse that yields the full magic settles it;
    // anything else must decode as a delta header.
    let header = match binval::from_bytes::<CheckpointHeader>(header_bytes) {
        Ok(h) if h.magic == CHECKPOINT_MAGIC => {
            if h.version != CHECKPOINT_VERSION {
                return Err(StoreError::Format(format!(
                    "{}: unsupported checkpoint version {}",
                    path.display(),
                    h.version
                )));
            }
            CkHeader::Full {
                consumed: h.consumed,
            }
        }
        _ => {
            let h: DeltaHeader = binval::from_bytes(header_bytes)?;
            if h.magic != CHECKPOINT_DELTA_MAGIC {
                return Err(StoreError::Format(format!(
                    "{}: not an mtc-store checkpoint",
                    path.display()
                )));
            }
            if h.version != CHECKPOINT_VERSION {
                return Err(StoreError::Format(format!(
                    "{}: unsupported checkpoint version {}",
                    path.display(),
                    h.version
                )));
            }
            CkHeader::Delta {
                consumed: h.consumed,
                base_consumed: h.base_consumed,
                snapshot_crc: h.snapshot_crc,
            }
        }
    };
    let payload = read_frame(&bytes, &mut pos).map_err(corrupt)?.to_vec();
    Ok((header, payload))
}

#[derive(Clone, Debug)]
enum CkHeader {
    Full {
        consumed: u64,
    },
    Delta {
        consumed: u64,
        base_consumed: u64,
        snapshot_crc: u32,
    },
}

/// Resolves the full snapshot payload of the checkpoint at `path`,
/// following the delta chain through `by_consumed` (full files preferred
/// over deltas at the same `consumed`). Errors if any link is missing,
/// damaged, non-terminating or CRC-divergent.
fn resolve_payload(
    path: &Path,
    by_consumed: &HashMap<u64, Vec<PathBuf>>,
) -> Result<(u64, Vec<u8>), StoreError> {
    let mut chain: Vec<(Vec<u8>, u32)> = Vec::new();
    let mut cur = path.to_path_buf();
    let mut top_consumed: Option<u64> = None;
    let mut payload = loop {
        let (header, payload) = read_frames(&cur)?;
        match header {
            CkHeader::Full { consumed } => {
                top_consumed.get_or_insert(consumed);
                break payload;
            }
            CkHeader::Delta {
                consumed,
                base_consumed,
                snapshot_crc,
            } => {
                top_consumed.get_or_insert(consumed);
                if base_consumed >= consumed || chain.len() >= MAX_CHAIN {
                    return Err(StoreError::Corrupt(format!(
                        "{}: non-terminating delta chain",
                        path.display()
                    )));
                }
                chain.push((payload, snapshot_crc));
                cur = by_consumed
                    .get(&base_consumed)
                    .and_then(|paths| paths.first())
                    .ok_or_else(|| {
                        StoreError::Corrupt(format!(
                            "{}: delta base {base_consumed} is missing",
                            cur.display()
                        ))
                    })?
                    .clone();
            }
        }
    };
    // Replay the chain outward: oldest delta applies to the full payload.
    for (ops_bytes, want_crc) in chain.into_iter().rev() {
        let ops = delta::decode_ops(&ops_bytes).map_err(StoreError::Corrupt)?;
        payload = delta::apply(&payload, &ops).map_err(StoreError::Corrupt)?;
        if crc32(&payload) != want_crc {
            return Err(StoreError::Corrupt(format!(
                "{}: delta chain reconstructs a divergent snapshot",
                path.display()
            )));
        }
    }
    Ok((top_consumed.expect("loop sets it on first read"), payload))
}

/// Groups the directory's checkpoint files by `consumed`, full files first
/// within a group (the resolver prefers them as chain bases).
fn files_by_consumed(files: &[(u64, CkKind, PathBuf)]) -> HashMap<u64, Vec<PathBuf>> {
    let mut map: HashMap<u64, Vec<PathBuf>> = HashMap::new();
    for (consumed, _, path) in files {
        // `files` is sorted full-first within a `consumed`.
        map.entry(*consumed).or_default().push(path.clone());
    }
    map
}

/// Reads and validates one checkpoint file; a delta file resolves its base
/// chain through its own directory.
pub fn read_checkpoint(path: impl AsRef<Path>) -> Result<(u64, CheckerSnapshot), StoreError> {
    let path = path.as_ref();
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let by_consumed = files_by_consumed(&checkpoint_files(dir)?);
    let (consumed, payload) = resolve_payload(path, &by_consumed)?;
    Ok((consumed, binval::from_bytes(&payload)?))
}

/// The newest checkpoint in `dir` that fully resolves, if any. Damaged or
/// orphaned newer checkpoints are skipped (a crash mid-write leaves only a
/// `.tmp` file, but defense-in-depth costs one CRC pass).
pub fn latest_checkpoint(
    dir: impl AsRef<Path>,
) -> Result<Option<(u64, CheckerSnapshot)>, StoreError> {
    let mut files = checkpoint_files(dir.as_ref())?;
    let by_consumed = files_by_consumed(&files);
    files.reverse();
    for (_, _, path) in files {
        if let Ok((consumed, payload)) = resolve_payload(&path, &by_consumed) {
            if let Ok(snapshot) = binval::from_bytes(&payload) {
                return Ok(Some((consumed, snapshot)));
            }
        }
    }
    Ok(None)
}

/// Deletes all but the newest `keep` checkpoints — chain-aware: a retained
/// delta also retains every base its chain needs, however old.
pub fn prune_checkpoints(dir: impl AsRef<Path>, keep: usize) -> Result<usize, StoreError> {
    let files = checkpoint_files(dir.as_ref())?;
    // Newest `keep` distinct consumed counts survive directly.
    let mut kept: Vec<u64> = files.iter().map(|&(c, _, _)| c).collect();
    kept.dedup();
    let kept: HashSet<u64> = kept.into_iter().rev().take(keep).collect();
    // Pin the base chains of every retained delta.
    let by_consumed = files_by_consumed(&files);
    let mut pinned: HashSet<u64> = kept.clone();
    for &(consumed, kind, ref path) in &files {
        if kind != CkKind::Delta || !kept.contains(&consumed) {
            continue;
        }
        let mut cur = path.clone();
        for _ in 0..MAX_CHAIN {
            match read_frames(&cur) {
                Ok((CkHeader::Delta { base_consumed, .. }, _)) => {
                    pinned.insert(base_consumed);
                    match by_consumed.get(&base_consumed).and_then(|p| p.first()) {
                        Some(next) => cur = next.clone(),
                        None => break,
                    }
                }
                _ => break,
            }
        }
    }
    let mut doomed = 0usize;
    for (consumed, _, path) in files {
        if !pinned.contains(&consumed) {
            fs::remove_file(path)?;
            doomed += 1;
        }
    }
    Ok(doomed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_core::{IncrementalChecker, IsolationLevel};
    use mtc_history::Op;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mtc_store_ck_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_snapshot(n: u64) -> CheckerSnapshot {
        let mut c =
            IncrementalChecker::new(IsolationLevel::Serializability).with_init_keys(0..4u64);
        let mut last = 0u64;
        for i in 0..n {
            c.push_committed(0, vec![Op::read(0u64, last), Op::write(0u64, i + 1)])
                .unwrap();
            last = i + 1;
        }
        c.checkpoint()
    }

    #[test]
    fn checkpoint_round_trips_and_resumes() {
        let dir = tmpdir("rt");
        let snapshot = sample_snapshot(20);
        write_checkpoint(&dir, 20, &snapshot).unwrap();
        let (consumed, loaded) = latest_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(consumed, 20);
        assert_eq!(loaded.txn_count(), snapshot.txn_count());
        let mut resumed = IncrementalChecker::resume(loaded);
        resumed
            .push_committed(0, vec![Op::read(0u64, 20u64), Op::write(0u64, 77u64)])
            .unwrap();
        assert!(resumed.finish().unwrap().is_satisfied());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_newest_checkpoint_falls_back_to_the_previous_one() {
        let dir = tmpdir("fallback");
        write_checkpoint(&dir, 10, &sample_snapshot(10)).unwrap();
        let newest = write_checkpoint(&dir, 20, &sample_snapshot(20)).unwrap();
        let mut bytes = fs::read(&newest).unwrap();
        let at = bytes.len() - 5;
        bytes[at] ^= 0xff;
        fs::write(&newest, &bytes).unwrap();
        let (consumed, _) = latest_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(consumed, 10, "damaged newest must be skipped");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_keeps_the_newest() {
        let dir = tmpdir("prune");
        for consumed in [5u64, 10, 15, 20] {
            write_checkpoint(&dir, consumed, &sample_snapshot(consumed)).unwrap();
        }
        assert_eq!(prune_checkpoints(&dir, 2).unwrap(), 2);
        let files = checkpoint_files(&dir).unwrap();
        assert_eq!(
            files.iter().map(|&(c, _, _)| c).collect::<Vec<_>>(),
            vec![15, 20]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    /// Writes a full at 10 and deltas at 20 and 30, returning the encoded
    /// payloads by consumed count.
    fn sample_chain(dir: &Path) -> Vec<(u64, Vec<u8>)> {
        let payloads: Vec<(u64, Vec<u8>)> = [10u64, 20, 30]
            .into_iter()
            .map(|n| (n, binval::to_bytes(&sample_snapshot(n))))
            .collect();
        write_checkpoint_bytes(dir, 10, &payloads[0].1).unwrap();
        for w in payloads.windows(2) {
            let (base_consumed, ref base) = w[0];
            let (consumed, ref payload) = w[1];
            write_checkpoint_delta(dir, consumed, base_consumed, payload, base)
                .unwrap()
                .expect("near-identical snapshots must delta below full size");
        }
        payloads
    }

    #[test]
    fn delta_chain_resolves_to_the_newest_snapshot() {
        let dir = tmpdir("chain");
        sample_chain(&dir);
        let (consumed, loaded) = latest_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(consumed, 30);
        assert_eq!(loaded.txn_count(), sample_snapshot(30).txn_count());
        // Resolving a mid-chain delta directly also works.
        let (consumed, _) = read_checkpoint(delta_checkpoint_path(&dir, 20)).unwrap();
        assert_eq!(consumed, 20);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_mid_chain_base_falls_back_to_the_full() {
        let dir = tmpdir("chain_damage");
        sample_chain(&dir);
        // Corrupt the payload of the delta at 20: the delta at 30 can no
        // longer resolve (its chain runs through 20), and 20 itself is
        // damaged, so recovery lands on the full at 10.
        let mid = delta_checkpoint_path(&dir, 20);
        let mut bytes = fs::read(&mid).unwrap();
        let at = bytes.len() - 5;
        bytes[at] ^= 0xff;
        fs::write(&mid, &bytes).unwrap();
        let (consumed, _) = latest_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(consumed, 10);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_delta_base_falls_back_and_crc_guard_catches_divergence() {
        let dir = tmpdir("chain_missing");
        sample_chain(&dir);
        fs::remove_file(delta_checkpoint_path(&dir, 20)).unwrap();
        let (consumed, _) = latest_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(consumed, 10, "orphaned delta at 30 must be skipped");
        // A delta applied against the wrong base trips the snapshot CRC.
        let wrong_base = binval::to_bytes(&sample_snapshot(11));
        write_checkpoint_bytes(&dir, 20, &wrong_base).unwrap();
        let err = read_checkpoint(delta_checkpoint_path(&dir, 30)).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "got {err:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_pins_the_bases_of_retained_deltas() {
        let dir = tmpdir("chain_prune");
        sample_chain(&dir);
        // keep=1 directly retains only consumed=30, but 30 is a delta whose
        // chain needs 20 and 10 — nothing may be deleted.
        assert_eq!(prune_checkpoints(&dir, 1).unwrap(), 0);
        let (consumed, _) = latest_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(consumed, 30);
        // A fresh full at 40 breaks the dependency; keep=1 now deletes the
        // whole older chain.
        write_checkpoint(&dir, 40, &sample_snapshot(40)).unwrap();
        assert_eq!(prune_checkpoints(&dir, 1).unwrap(), 3);
        let files = checkpoint_files(&dir).unwrap();
        assert_eq!(files.iter().map(|&(c, _, _)| c).collect::<Vec<_>>(), [40]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_dir_has_no_checkpoint() {
        let dir = tmpdir("empty");
        fs::create_dir_all(&dir).unwrap();
        assert!(latest_checkpoint(&dir).unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
