//! The store facade: one directory holding a history log and its
//! checkpoints, with a recovery path that stitches them back together.
//!
//! ```text
//! <dir>/segment-00000000.mtclog      append-only history log
//! <dir>/segment-00000001.mtclog
//! <dir>/checkpoint-000000002048.mtcck  checker snapshots
//! ```
//!
//! The write-ahead discipline is: a transaction is appended (and optionally
//! synced) to the log *before* it is fed to the checker, and checkpoints
//! record how many logged transactions the snapshotted checker had
//! consumed. After a crash, [`recover`] loads the newest intact checkpoint
//! and the logged suffix after it; replaying that suffix into the resumed
//! checker reproduces the uninterrupted verdict. With no usable checkpoint
//! the whole log replays from scratch — slower, same answer.

use crate::binval;
use crate::checkpoint::{
    latest_checkpoint, prune_checkpoints, write_checkpoint_bytes, write_checkpoint_delta,
};
use crate::segment::{read_log, LogWriter, StreamMeta};
use crate::StoreError;
use mtc_core::CheckerSnapshot;
use mtc_history::{History, HistoryBuilder, Transaction};
use std::path::{Path, PathBuf};

/// How many checkpoints [`MtcStore::checkpoint`] retains.
pub const DEFAULT_CHECKPOINT_KEEP: usize = 3;

/// Every how many checkpoints the store writes a fresh full snapshot
/// instead of another delta (bounds recovery chain length and keeps pruning
/// effective).
pub const CHECKPOINT_REBASE_INTERVAL: u32 = 4;

/// The previous checkpoint's identity, kept in memory so the next
/// checkpoint can be expressed as a delta against it without re-reading it
/// from disk.
#[derive(Debug)]
struct LastCheckpoint {
    consumed: u64,
    /// The encoded snapshot payload the checkpoint reconstructs.
    bytes: Vec<u8>,
    /// Number of delta links under that checkpoint (0 for a full).
    chain: u32,
}

/// A writable store: history log plus checkpoints in one directory.
#[derive(Debug)]
pub struct MtcStore {
    dir: PathBuf,
    writer: LogWriter,
    checkpoint_keep: usize,
    rebase_interval: u32,
    last_checkpoint: Option<LastCheckpoint>,
}

impl MtcStore {
    /// Creates a fresh store in `dir` (must not already contain a log).
    pub fn create(dir: impl AsRef<Path>, meta: &StreamMeta) -> Result<Self, StoreError> {
        Ok(MtcStore {
            dir: dir.as_ref().to_path_buf(),
            writer: LogWriter::create(&dir, meta)?,
            checkpoint_keep: DEFAULT_CHECKPOINT_KEEP,
            rebase_interval: CHECKPOINT_REBASE_INTERVAL,
            last_checkpoint: None,
        })
    }

    /// Re-opens an existing store for appending, recovering its contents
    /// (torn tail truncated, newest intact checkpoint loaded).
    pub fn open_append(dir: impl AsRef<Path>) -> Result<(Self, Recovery), StoreError> {
        let (writer, log) = LogWriter::open_append(&dir)?;
        let recovery = assemble(dir.as_ref(), log.meta, log.txns, log.torn_tail)?;
        Ok((
            MtcStore {
                dir: dir.as_ref().to_path_buf(),
                writer,
                checkpoint_keep: DEFAULT_CHECKPOINT_KEEP,
                rebase_interval: CHECKPOINT_REBASE_INTERVAL,
                last_checkpoint: None,
            },
            recovery,
        ))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Overrides how many checkpoints are retained.
    pub fn with_checkpoint_keep(mut self, keep: usize) -> Self {
        self.checkpoint_keep = keep.max(1);
        self
    }

    /// Overrides the full-checkpoint rebase cadence. `1` disables delta
    /// checkpoints entirely (every checkpoint is a full snapshot).
    pub fn with_rebase_interval(mut self, interval: u32) -> Self {
        self.rebase_interval = interval.max(1);
        self
    }

    /// Appends one transaction to the log (write-ahead: call this *before*
    /// feeding the transaction to the checker). Returns its stream index.
    pub fn append_txn(&mut self, txn: &Transaction) -> Result<u64, StoreError> {
        let timer = mtc_obs::enabled().then(std::time::Instant::now);
        let idx = self.writer.append(txn)?;
        if let Some(t0) = timer {
            mtc_obs::histogram!("store.wal_append_micros").record(t0.elapsed().as_micros() as u64);
        }
        Ok(idx)
    }

    /// Stream index the next appended transaction will get.
    pub fn next_txn_index(&self) -> u64 {
        self.writer.next_txn_index()
    }

    /// Forces appended records down to the OS.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.writer.sync()
    }

    /// Persists a checker snapshot taken after consuming `consumed` logged
    /// transactions, syncing the log first (a checkpoint must never be
    /// newer than the log it indexes into) and pruning old checkpoints.
    ///
    /// Between full snapshots the store writes *delta* checkpoints against
    /// the previous one — usually a small fraction of the snapshot size —
    /// and rebases to a full snapshot every [`CHECKPOINT_REBASE_INTERVAL`]
    /// checkpoints (or whenever a delta would not actually be smaller).
    pub fn checkpoint(
        &mut self,
        consumed: u64,
        snapshot: &CheckerSnapshot,
    ) -> Result<PathBuf, StoreError> {
        let timer = mtc_obs::enabled().then(std::time::Instant::now);
        self.writer.sync()?;
        let payload = binval::to_bytes(snapshot);
        let delta_base = self
            .last_checkpoint
            .as_ref()
            .filter(|prev| prev.consumed < consumed && prev.chain + 1 < self.rebase_interval);
        let mut written = None;
        let mut chain = 0u32;
        if let Some(prev) = delta_base {
            if let Some(path) =
                write_checkpoint_delta(&self.dir, consumed, prev.consumed, &payload, &prev.bytes)?
            {
                mtc_obs::counter!("store.checkpoint_delta_bytes")
                    .add(std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0));
                chain = prev.chain + 1;
                written = Some(path);
            }
        }
        let path = match written {
            Some(path) => path,
            None => {
                let path = write_checkpoint_bytes(&self.dir, consumed, &payload)?;
                mtc_obs::counter!("store.checkpoint_full_bytes")
                    .add(std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0));
                path
            }
        };
        self.last_checkpoint = Some(LastCheckpoint {
            consumed,
            bytes: payload,
            chain,
        });
        prune_checkpoints(&self.dir, self.checkpoint_keep)?;
        if let Some(t0) = timer {
            mtc_obs::histogram!("store.checkpoint_micros").record(t0.elapsed().as_micros() as u64);
        }
        Ok(path)
    }
}

/// Everything recovered from a store directory.
#[derive(Clone, Debug)]
pub struct Recovery {
    /// The stream metadata.
    pub meta: StreamMeta,
    /// The newest intact checkpoint, if any.
    pub snapshot: Option<CheckerSnapshot>,
    /// Log index replay resumes from (the checkpoint's consumed count, or 0).
    pub resume_from: u64,
    /// Every intact logged transaction, in stream order.
    pub txns: Vec<Transaction>,
    /// True iff the log ended in a torn frame (crash signature).
    pub torn_tail: bool,
}

impl Recovery {
    /// The logged transactions the resumed checker still has to replay.
    pub fn tail(&self) -> &[Transaction] {
        &self.txns[self.resume_from as usize..]
    }

    /// Rebuilds the complete logged history (`⊥T` over the recorded key
    /// range first), for offline re-checking with any batch or streaming
    /// checker.
    pub fn to_history(&self) -> History {
        let mut b = HistoryBuilder::new().with_init(self.meta.num_keys);
        for t in &self.txns {
            b.push_cloned(t.clone());
        }
        b.build()
    }
}

/// Read-only recovery: scans the log and loads the newest intact
/// checkpoint, without opening the store for appending.
pub fn recover(dir: impl AsRef<Path>) -> Result<Recovery, StoreError> {
    let log = read_log(&dir)?;
    assemble(dir.as_ref(), log.meta, log.txns, log.torn_tail)
}

fn assemble(
    dir: &Path,
    meta: StreamMeta,
    txns: Vec<Transaction>,
    torn_tail: bool,
) -> Result<Recovery, StoreError> {
    let mut snapshot = None;
    let mut resume_from = 0u64;
    if let Some((consumed, snap)) = latest_checkpoint(dir)? {
        if consumed <= txns.len() as u64 {
            resume_from = consumed;
            snapshot = Some(snap);
        }
        // A checkpoint ahead of the recovered log (log tail lost, snapshot
        // survived) cannot be replayed into; fall back to scratch replay.
    }
    Ok(Recovery {
        meta,
        snapshot,
        resume_from,
        txns,
        torn_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_core::{check_streaming, IncrementalChecker, IsolationLevel};
    use mtc_history::{Op, SessionId, TxnId};
    use std::fs;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mtc_store_store_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn meta() -> StreamMeta {
        StreamMeta {
            level: IsolationLevel::Serializability,
            num_keys: 2,
        }
    }

    fn txn(i: u64, read: u64, write: u64) -> Transaction {
        Transaction::committed(
            TxnId(0),
            SessionId((i % 2) as u32),
            vec![Op::read(0u64, read), Op::write(0u64, write)],
        )
        .with_times(10 * i + 1, 10 * i + 5)
    }

    #[test]
    fn record_checkpoint_crash_resume_matches_clean_run() {
        let dir = tmpdir("resume");
        let mut store = MtcStore::create(&dir, &meta()).unwrap();
        let mut checker =
            IncrementalChecker::new(IsolationLevel::Serializability).with_init_keys(0..2u64);
        let mut last = 0u64;
        for i in 0..30u64 {
            let t = txn(i, last, i + 1);
            store.append_txn(&t).unwrap();
            let _ = checker.push(t);
            last = i + 1;
            if i == 19 {
                let snap = checker.checkpoint();
                store.checkpoint(20, &snap).unwrap();
            }
        }
        store.sync().unwrap();
        drop(store);
        drop(checker); // "crash": no finish, no final checkpoint

        let recovery = recover(&dir).unwrap();
        assert_eq!(recovery.resume_from, 20);
        assert_eq!(recovery.tail().len(), 10);
        let mut resumed = IncrementalChecker::resume(recovery.snapshot.clone().unwrap());
        for t in recovery.tail() {
            let _ = resumed.push(t.clone());
        }
        let resumed_verdict = resumed.finish().unwrap();
        let clean =
            check_streaming(IsolationLevel::Serializability, &recovery.to_history()).unwrap();
        assert_eq!(resumed_verdict, clean);
        assert!(clean.is_satisfied());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn delta_checkpoint_cadence_resumes_bit_identically() {
        let dir = tmpdir("delta_resume");
        let mut store = MtcStore::create(&dir, &meta()).unwrap();
        let mut checker =
            IncrementalChecker::new(IsolationLevel::Serializability).with_init_keys(0..2u64);
        let mut last = 0u64;
        // Checkpoint every 5 txns: full at 5, deltas at 10/15/20, rebase at
        // 25, delta at 30 — recovery resumes from the delta at 30.
        for i in 0..32u64 {
            let t = txn(i, last, i + 1);
            store.append_txn(&t).unwrap();
            let _ = checker.push(t);
            last = i + 1;
            if (i + 1) % 5 == 0 {
                store.checkpoint(i + 1, &checker.checkpoint()).unwrap();
            }
        }
        let deltas = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".mtcckd"))
            .count();
        assert!(deltas >= 3, "cadence must actually produce deltas");
        store.sync().unwrap();
        drop(store);
        drop(checker); // "crash"

        let recovery = recover(&dir).unwrap();
        assert_eq!(recovery.resume_from, 30);
        let mut resumed = IncrementalChecker::resume(recovery.snapshot.clone().unwrap());
        for t in recovery.tail() {
            let _ = resumed.push(t.clone());
        }
        let clean =
            check_streaming(IsolationLevel::Serializability, &recovery.to_history()).unwrap();
        assert_eq!(resumed.finish().unwrap(), clean);
        assert!(clean.is_satisfied());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rebase_interval_one_disables_deltas() {
        let dir = tmpdir("no_deltas");
        let mut store = MtcStore::create(&dir, &meta())
            .unwrap()
            .with_rebase_interval(1);
        let mut checker =
            IncrementalChecker::new(IsolationLevel::Serializability).with_init_keys(0..2u64);
        let mut last = 0u64;
        for i in 0..10u64 {
            let t = txn(i, last, i + 1);
            store.append_txn(&t).unwrap();
            let _ = checker.push(t);
            last = i + 1;
            if (i + 1) % 5 == 0 {
                let path = store.checkpoint(i + 1, &checker.checkpoint()).unwrap();
                assert_eq!(path.extension().unwrap(), "mtcck");
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_append_continues_the_stream_after_a_torn_tail() {
        let dir = tmpdir("continue");
        let mut store = MtcStore::create(&dir, &meta()).unwrap();
        for i in 0..8u64 {
            store.append_txn(&txn(i, i, i + 1)).unwrap();
        }
        store.sync().unwrap();
        drop(store);
        // Torn tail.
        let seg = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| e.file_name().to_string_lossy().ends_with(".mtclog"))
            .unwrap()
            .path();
        let mut bytes = fs::read(&seg).unwrap();
        bytes.extend_from_slice(&[1, 2, 3]);
        fs::write(&seg, &bytes).unwrap();

        let (mut store, recovery) = MtcStore::open_append(&dir).unwrap();
        assert!(recovery.torn_tail);
        assert_eq!(recovery.txns.len(), 8);
        assert_eq!(store.next_txn_index(), 8);
        store.append_txn(&txn(8, 8, 9)).unwrap();
        store.sync().unwrap();
        drop(store);
        let recovery = recover(&dir).unwrap();
        assert_eq!(recovery.txns.len(), 9);
        assert!(!recovery.torn_tail);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_ahead_of_the_log_is_ignored() {
        // A snapshot claiming more consumed transactions than the log holds
        // (e.g. the log tail was lost but the checkpoint survived) must not
        // be used: replay falls back to scratch.
        let dir = tmpdir("ahead");
        let mut store = MtcStore::create(&dir, &meta()).unwrap();
        let mut checker =
            IncrementalChecker::new(IsolationLevel::Serializability).with_init_keys(0..2u64);
        for i in 0..5u64 {
            let t = txn(i, i, i + 1);
            store.append_txn(&t).unwrap();
            let _ = checker.push(t);
        }
        store.checkpoint(99, &checker.checkpoint()).unwrap();
        drop(store);
        let recovery = recover(&dir).unwrap();
        assert!(recovery.snapshot.is_none());
        assert_eq!(recovery.resume_from, 0);
        assert_eq!(recovery.tail().len(), 5);
        let _ = fs::remove_dir_all(&dir);
    }
}
