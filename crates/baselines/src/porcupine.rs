//! A Porcupine-style linearizability checker.
//!
//! Porcupine implements the Wing–Gong / Lowe linearizability search with
//! P-compositionality: the history is partitioned per object (linearizability
//! is local), and for each object a depth-first search tries to linearize one
//! operation at a time. An operation can be linearized next only if no other
//! pending operation *finished* before it started (it is "minimal" in the
//! real-time order) and its effect is consistent with the current sequential
//! state of the object. Visited `(linearized-set, state)` pairs are memoized.
//!
//! The search is exponential in the worst case — precisely the behaviour
//! Figure 9 of the paper contrasts with the linear-time `VL-LWT` algorithm of
//! `mtc-core`.

use mtc_history::{Key, LwtKind, TimedOp, Value};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Outcome of a Porcupine-style check.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PorcupineOutcome {
    /// True iff the history is linearizable.
    pub linearizable: bool,
    /// True iff the search budget was exhausted before a conclusion (treated
    /// as "not shown linearizable").
    pub timed_out: bool,
    /// Number of search states visited across all objects.
    pub states_visited: usize,
}

/// Maximum number of search states before giving up.
pub const STATE_BUDGET: usize = 20_000_000;

/// The sequential state of a single register object.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum ObjState {
    /// The object has not been inserted yet.
    Unset,
    /// The object currently holds this value.
    Set(Value),
}

/// Checks linearizability of a lightweight-transaction history by
/// per-object Wing–Gong–Lowe search.
pub fn porcupine_check_linearizability(ops: &[TimedOp]) -> PorcupineOutcome {
    let mut per_key: HashMap<Key, Vec<TimedOp>> = HashMap::new();
    for op in ops {
        per_key.entry(op.key).or_default().push(*op);
    }
    let mut keys: Vec<Key> = per_key.keys().copied().collect();
    keys.sort_unstable();

    let mut total_states = 0usize;
    for key in keys {
        let ops = &per_key[&key];
        let (ok, states, timed_out) = check_single_object(ops, STATE_BUDGET - total_states);
        total_states += states;
        if timed_out {
            return PorcupineOutcome {
                linearizable: false,
                timed_out: true,
                states_visited: total_states,
            };
        }
        if !ok {
            return PorcupineOutcome {
                linearizable: false,
                timed_out: false,
                states_visited: total_states,
            };
        }
    }
    PorcupineOutcome {
        linearizable: true,
        timed_out: false,
        states_visited: total_states,
    }
}

/// Applies `op` to `state`, returning the next state if the operation is
/// consistent with the sequential semantics of a CAS register.
fn apply(state: ObjState, op: &TimedOp) -> Option<ObjState> {
    match (state, op.kind) {
        (ObjState::Unset, LwtKind::Insert { value }) => Some(ObjState::Set(value)),
        (ObjState::Set(_), LwtKind::Insert { .. }) => None,
        (ObjState::Set(v), LwtKind::ReadWrite { expected, new }) if v == expected => {
            Some(ObjState::Set(new))
        }
        (ObjState::Set(v), LwtKind::Read { value }) if v == value => Some(ObjState::Set(v)),
        _ => None,
    }
}

/// Wing–Gong–Lowe search over the operations of one object. Returns
/// `(linearizable, states_visited, timed_out)`.
fn check_single_object(ops: &[TimedOp], budget: usize) -> (bool, usize, bool) {
    let n = ops.len();
    if n == 0 {
        return (true, 0, false);
    }
    if n > 128 {
        // The bitset below is capped; histories this large should use VL-LWT.
        // Fall back to a coarse chunked bitset.
        return check_single_object_large(ops, budget);
    }

    // linearized-set represented as a bitmask (n ≤ 128).
    type Mask = u128;
    let full: Mask = if n == 128 { !0 } else { (1u128 << n) - 1 };

    let mut memo: HashSet<(Mask, ObjState)> = HashSet::new();
    let mut states = 0usize;

    // Iterative DFS over (mask, state).
    let mut stack: Vec<(Mask, ObjState)> = vec![(0, ObjState::Unset)];
    while let Some((mask, state)) = stack.pop() {
        if mask == full {
            return (true, states, false);
        }
        if !memo.insert((mask, state)) {
            continue;
        }
        states += 1;
        if states > budget {
            return (false, states, true);
        }
        // The minimal-finish among pending operations: a pending op may be
        // linearized next only if its start does not exceed this value
        // (otherwise some pending op finished before it started and must be
        // linearized first).
        let mut min_finish = u64::MAX;
        for (i, op) in ops.iter().enumerate() {
            if mask & (1 << i) == 0 {
                min_finish = min_finish.min(op.finish);
            }
        }
        for (i, op) in ops.iter().enumerate() {
            if mask & (1 << i) != 0 {
                continue;
            }
            if op.start > min_finish {
                continue;
            }
            if let Some(next_state) = apply(state, op) {
                stack.push((mask | (1 << i), next_state));
            }
        }
    }
    (false, states, false)
}

/// Variant for objects with more than 128 operations: the linearized set is a
/// boxed bitset. Slower, but only needed for stress benchmarks.
fn check_single_object_large(ops: &[TimedOp], budget: usize) -> (bool, usize, bool) {
    let n = ops.len();
    let words = n.div_ceil(64);
    type State = (Vec<u64>, ObjState);
    let full = {
        let mut v = vec![!0u64; words];
        let rem = n % 64;
        if rem != 0 {
            v[words - 1] = (1u64 << rem) - 1;
        }
        v
    };
    let mut memo: HashSet<State> = HashSet::new();
    let mut states = 0usize;
    let mut stack: Vec<State> = vec![(vec![0u64; words], ObjState::Unset)];
    while let Some((mask, state)) = stack.pop() {
        if mask == full {
            return (true, states, false);
        }
        if !memo.insert((mask.clone(), state)) {
            continue;
        }
        states += 1;
        if states > budget {
            return (false, states, true);
        }
        let is_set = |m: &[u64], i: usize| m[i / 64] & (1 << (i % 64)) != 0;
        let mut min_finish = u64::MAX;
        for (i, op) in ops.iter().enumerate() {
            if !is_set(&mask, i) {
                min_finish = min_finish.min(op.finish);
            }
        }
        for (i, op) in ops.iter().enumerate() {
            if is_set(&mask, i) || op.start > min_finish {
                continue;
            }
            if let Some(next_state) = apply(state, op) {
                let mut next_mask = mask.clone();
                next_mask[i / 64] |= 1 << (i % 64);
                stack.push((next_mask, next_state));
            }
        }
    }
    (false, states, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_core::check_linearizability;

    fn figure_4a() -> Vec<TimedOp> {
        vec![
            TimedOp::insert(0, 0, 0u64, 0u64),
            TimedOp::read_write(3, 6, 0u64, 0u64, 1u64),
            TimedOp::read_write(1, 4, 0u64, 1u64, 2u64),
            TimedOp::read_write(5, 8, 0u64, 2u64, 3u64),
        ]
    }

    fn figure_4b() -> Vec<TimedOp> {
        vec![
            TimedOp::insert(0, 0, 0u64, 0u64),
            TimedOp::read_write(6, 9, 0u64, 0u64, 1u64),
            TimedOp::read_write(1, 4, 0u64, 1u64, 2u64),
            TimedOp::read_write(5, 8, 0u64, 2u64, 3u64),
        ]
    }

    #[test]
    fn figure_4_histories() {
        assert!(porcupine_check_linearizability(&figure_4a()).linearizable);
        assert!(!porcupine_check_linearizability(&figure_4b()).linearizable);
    }

    #[test]
    fn plain_reads_are_supported() {
        let ops = vec![
            TimedOp::insert(0, 1, 0u64, 0u64),
            TimedOp::read_write(2, 3, 0u64, 0u64, 5u64),
            TimedOp::read(4, 6, 0u64, 5u64),
        ];
        assert!(porcupine_check_linearizability(&ops).linearizable);
        // Reading a value that was already overwritten after the overwriter
        // finished is not linearizable.
        let ops = vec![
            TimedOp::insert(0, 1, 0u64, 0u64),
            TimedOp::read_write(2, 3, 0u64, 0u64, 5u64),
            TimedOp::read(4, 6, 0u64, 0u64),
        ];
        assert!(!porcupine_check_linearizability(&ops).linearizable);
    }

    #[test]
    fn agrees_with_vl_lwt_on_generated_histories() {
        use mtc_workload::{generate_lwt_history, LwtHistorySpec};
        for seed in 0..5u64 {
            for inject in [false, true] {
                let spec = LwtHistorySpec {
                    sessions: 4,
                    txns_per_session: 15,
                    num_keys: 3,
                    concurrent_fraction: 0.5,
                    inject_violation: inject,
                    seed,
                };
                let ops = generate_lwt_history(&spec);
                let porcupine = porcupine_check_linearizability(&ops);
                let vl = check_linearizability(&ops).unwrap();
                assert!(!porcupine.timed_out);
                assert_eq!(
                    porcupine.linearizable,
                    vl.is_satisfied(),
                    "disagreement at seed {seed}, inject {inject}"
                );
            }
        }
    }

    #[test]
    fn empty_history_is_linearizable() {
        assert!(porcupine_check_linearizability(&[]).linearizable);
    }

    #[test]
    fn double_insert_is_rejected() {
        let ops = vec![
            TimedOp::insert(0, 1, 0u64, 0u64),
            TimedOp::insert(2, 3, 0u64, 7u64),
        ];
        assert!(!porcupine_check_linearizability(&ops).linearizable);
    }

    #[test]
    fn large_object_falls_back_to_wide_bitset() {
        // 150 sequential CAS operations on one key: exercises the >128 path.
        let mut ops = vec![TimedOp::insert(0, 1, 0u64, 0u64)];
        for i in 0..150u64 {
            ops.push(TimedOp::read_write(2 + 2 * i, 3 + 2 * i, 0u64, i, i + 1));
        }
        let out = porcupine_check_linearizability(&ops);
        assert!(out.linearizable);
        assert!(!out.timed_out);
    }
}
