//! # mtc-baselines
//!
//! Reimplementations of the state-of-the-art black-box isolation checkers the
//! paper compares MTC against (Section V-B):
//!
//! * [`cobra`] — a Cobra-style serializability checker: it encodes the
//!   history as a *polygraph* (known dependency edges plus write-write
//!   ordering constraints), prunes constraints with Cobra's domain-specific
//!   rules, and resolves the rest with a SAT-modulo-acyclicity style
//!   backtracking search;
//! * [`polysi`] — a PolySI-style snapshot-isolation checker over the same
//!   generalized polygraph, deciding acyclicity of the
//!   `(SO ∪ WR ∪ WW) ; RW?` composition for some orientation of the
//!   constraints;
//! * [`porcupine`] — a Porcupine-style linearizability checker
//!   (Wing–Gong/Lowe search with P-compositionality, i.e. per-object
//!   partitioning and memoization);
//! * [`elle`] — an Elle-style checker: version-order inference from
//!   list-append reads, plus the read-write-register mode that falls back to
//!   constraint solving;
//! * [`brute`] — an exponential, definition-level reference checker used as
//!   ground truth in differential and property-based tests.
//!
//! These baselines are *not* line-by-line ports of the original tools; they
//! reproduce the algorithmic shape (and therefore the asymptotic behaviour)
//! that the paper's experiments compare against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brute;
pub mod cobra;
pub mod elle;
pub mod polygraph;
pub mod polysi;
pub mod porcupine;

pub use brute::{brute_check_ser, brute_check_si, brute_check_sser};
pub use cobra::cobra_check_ser;
pub use elle::{elle_check_list_append, elle_check_rw_register, ListHistory, ListOp, ListTxn};
pub use polygraph::Polygraph;
pub use polysi::polysi_check_si;
pub use porcupine::porcupine_check_linearizability;
