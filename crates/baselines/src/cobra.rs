//! A Cobra-style serializability checker.
//!
//! Cobra encodes the history as a polygraph, prunes constraints with
//! domain-specific rules, and hands the residual problem to a
//! SAT-modulo-acyclicity solver (MonoSAT). This module reproduces that
//! pipeline with an in-tree backtracking search: constraints are assigned one
//! orientation at a time, an assignment is rejected as soon as it closes a
//! cycle, and the search backtracks. The history is serializable iff some
//! complete assignment keeps the graph acyclic.
//!
//! The solver is exponential in the number of *unresolved* constraints, which
//! is exactly the behaviour the paper's Figures 7 and 10 compare MTC against:
//! on mini-transaction histories the RMW inference resolves almost
//! everything, whereas on skewed or write-heavy general workloads the search
//! and the polygraph construction dominate.

use crate::polygraph::Polygraph;
use mtc_history::{find_intra_anomalies, History};
use serde::{Deserialize, Serialize};

/// Outcome of a baseline check.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaselineOutcome {
    /// True iff the history satisfies the isolation level.
    pub satisfied: bool,
    /// True iff the solver gave up before reaching a conclusion (budget
    /// exhausted). When set, `satisfied` is the best-effort answer `false`.
    pub timed_out: bool,
    /// Solver statistics.
    pub stats: SolverStats,
}

/// Statistics of one solver run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolverStats {
    /// Transactions in the history.
    pub txns: usize,
    /// Known edges after construction and pruning.
    pub known_edges: usize,
    /// Constraints before pruning.
    pub constraints_before_pruning: usize,
    /// Constraints handed to the search.
    pub constraints: usize,
    /// Constraints resolved by pruning.
    pub pruned: usize,
    /// Search tree nodes visited.
    pub decisions: usize,
}

/// Maximum number of search-tree nodes before the solver gives up.
pub const DECISION_BUDGET: usize = 200_000;

/// Checks serializability of a (general or mini-transaction) history the way
/// Cobra does: polygraph + pruning + acyclicity-aware constraint search.
pub fn cobra_check_ser(history: &History) -> BaselineOutcome {
    cobra_check_ser_with(history, true)
}

/// Like [`cobra_check_ser`] but with pruning optionally disabled (used by the
/// ablation benchmark).
pub fn cobra_check_ser_with(history: &History, prune: bool) -> BaselineOutcome {
    // Intra-transactional anomalies refute serializability outright.
    if !find_intra_anomalies(history).is_empty() {
        return BaselineOutcome {
            satisfied: false,
            timed_out: false,
            stats: SolverStats {
                txns: history.len(),
                ..SolverStats::default()
            },
        };
    }

    let pg = Polygraph::from_history(history, prune);
    let mut stats = SolverStats {
        txns: history.len(),
        known_edges: pg.known.len() + pg.known_rw.len(),
        constraints_before_pruning: pg.constraints.len() + pg.pruned,
        constraints: pg.constraints.len(),
        pruned: pg.pruned,
        decisions: 0,
    };

    // The known edges must already be acyclic.
    if !pg.known_graph().is_acyclic() {
        return BaselineOutcome {
            satisfied: false,
            timed_out: false,
            stats,
        };
    }
    if pg.constraints.is_empty() {
        return BaselineOutcome {
            satisfied: true,
            timed_out: false,
            stats,
        };
    }

    let mut adj = vec![Vec::new(); pg.node_count];
    for &(a, b) in pg.known.iter().chain(pg.known_rw.iter()) {
        adj[a].push(b);
    }
    let mut solver = Search {
        pg: &pg,
        adj,
        decisions: 0,
        budget: DECISION_BUDGET,
    };
    let result = solver.solve(0);
    stats.decisions = solver.decisions;
    BaselineOutcome {
        satisfied: matches!(result, SearchResult::Satisfiable),
        timed_out: matches!(result, SearchResult::BudgetExhausted),
        stats,
    }
}

enum SearchResult {
    Satisfiable,
    Unsatisfiable,
    BudgetExhausted,
}

struct Search<'a> {
    pg: &'a Polygraph,
    /// Adjacency of known edges plus the orientations chosen so far. Edges
    /// of an orientation are appended on entry to a branch and popped on
    /// backtracking (LIFO discipline keeps per-source vectors consistent).
    adj: Vec<Vec<usize>>,
    decisions: usize,
    budget: usize,
}

impl Search<'_> {
    /// True iff adding the orientation's edges keeps the graph acyclic.
    ///
    /// Every edge of an orientation points *into* the later writer `b`
    /// (the WW edge `a → b` and the RW edges `r → b`), so a new cycle must
    /// leave `b` through existing edges and come back through one of the new
    /// sources: one DFS from `b` suffices.
    fn orientation_admissible(&self, alt: &crate::polygraph::Alternative) -> bool {
        let target_sources: Vec<usize> = std::iter::once(alt.ww.0)
            .chain(alt.rw.iter().map(|&(r, _)| r))
            .collect();
        let b = alt.ww.1;
        // DFS from b over the current adjacency.
        let mut seen = vec![false; self.adj.len()];
        let mut stack = vec![b];
        seen[b] = true;
        while let Some(u) = stack.pop() {
            if target_sources.contains(&u) {
                return false;
            }
            for &v in &self.adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        true
    }

    fn push_orientation(&mut self, alt: &crate::polygraph::Alternative) {
        for (from, to) in alt.edges() {
            self.adj[from].push(to);
        }
    }

    fn pop_orientation(&mut self, alt: &crate::polygraph::Alternative) {
        for (from, _) in alt.edges() {
            self.adj[from].pop();
        }
    }

    fn solve(&mut self, index: usize) -> SearchResult {
        self.decisions += 1;
        if self.decisions > self.budget {
            return SearchResult::BudgetExhausted;
        }
        if index == self.pg.constraints.len() {
            return SearchResult::Satisfiable;
        }
        let c = &self.pg.constraints[index];
        for alt in [&c.first, &c.second] {
            if self.orientation_admissible(alt) {
                self.push_orientation(alt);
                match self.solve(index + 1) {
                    SearchResult::Satisfiable => return SearchResult::Satisfiable,
                    SearchResult::BudgetExhausted => return SearchResult::BudgetExhausted,
                    SearchResult::Unsatisfiable => {
                        self.pop_orientation(alt);
                    }
                }
            }
        }
        SearchResult::Unsatisfiable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_core::check_ser;
    use mtc_history::anomalies::{self, AnomalyKind};
    use mtc_history::{HistoryBuilder, Op};

    #[test]
    fn serial_history_is_serializable() {
        let mut b = HistoryBuilder::new().with_init(2);
        b.committed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)]);
        b.committed(1, vec![Op::read(0u64, 1u64), Op::write(0u64, 2u64)]);
        b.committed(0, vec![Op::read(1u64, 0u64), Op::write(1u64, 3u64)]);
        let h = b.build();
        let out = cobra_check_ser(&h);
        assert!(out.satisfied);
        assert!(!out.timed_out);
    }

    #[test]
    fn agrees_with_mtc_on_the_anomaly_catalogue() {
        for (kind, h) in anomalies::catalogue() {
            let cobra = cobra_check_ser(&h);
            let mtc = check_ser(&h).unwrap();
            assert!(!cobra.timed_out, "{kind} timed out");
            assert_eq!(
                cobra.satisfied,
                mtc.is_satisfied(),
                "Cobra and MTC disagree on {kind}"
            );
        }
    }

    #[test]
    fn write_skew_is_rejected() {
        let out = cobra_check_ser(&anomalies::write_skew());
        assert!(!out.satisfied);
    }

    #[test]
    fn blind_write_histories_are_handled() {
        // Two blind writers and a reader that pins their order.
        let mut b = HistoryBuilder::new().with_init(1);
        b.committed(0, vec![Op::write(0u64, 1u64)]);
        b.committed(1, vec![Op::write(0u64, 2u64)]);
        b.committed(2, vec![Op::read(0u64, 1u64)]);
        let h = b.build();
        let out = cobra_check_ser(&h);
        // Serializable: order T2(writes 2) < T1(writes 1) < reader, or the
        // reader executes between T1 and T2.
        assert!(out.satisfied, "{out:?}");
        assert!(out.stats.constraints_before_pruning >= out.stats.constraints);
    }

    #[test]
    fn unserializable_blind_write_history_is_rejected() {
        // Reader A sees x=1 then y=0; reader B sees y=2 then x=0, where x=1
        // and y=2 are blind writes of the same transaction. Classic long fork
        // with blind writes.
        let mut b = HistoryBuilder::new().with_init(2);
        b.committed(0, vec![Op::write(0u64, 1u64)]);
        b.committed(1, vec![Op::write(1u64, 2u64)]);
        b.committed(2, vec![Op::read(0u64, 1u64), Op::read(1u64, 0u64)]);
        b.committed(3, vec![Op::read(0u64, 0u64), Op::read(1u64, 2u64)]);
        let h = b.build();
        let out = cobra_check_ser(&h);
        assert!(!out.satisfied);
    }

    #[test]
    fn intra_anomalies_short_circuit() {
        let out = cobra_check_ser(&anomalies::thin_air_read());
        assert!(!out.satisfied);
        assert_eq!(out.stats.known_edges, 0);
    }

    #[test]
    fn decision_counter_is_populated_when_searching() {
        let kind_long_fork = AnomalyKind::LongFork.history();
        let out = cobra_check_ser(&kind_long_fork);
        assert!(!out.satisfied);
        // Statistics are self-consistent.
        assert!(out.stats.txns >= 5);
    }
}
