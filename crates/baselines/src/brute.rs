//! A definition-level, exponential reference checker.
//!
//! The verdicts of `mtc-core` rely on the RMW pattern making the dependency
//! graph unique. This module ignores that insight entirely and instead
//! enumerates *every* possible write-write (version) order per object,
//! builds the corresponding dependency graph, and applies Definitions 4–6 of
//! the paper literally. It is exponential in the number of writers per key
//! and therefore usable only on tiny histories — which is exactly its job: it
//! serves as ground truth in differential and property-based tests.

use mtc_history::{find_intra_anomalies, DiGraph, History, Key, TxnId, INIT_VALUE};
use std::collections::HashMap;

/// Upper bound on the number of WW-order combinations explored.
pub const COMBINATION_BUDGET: usize = 2_000_000;

/// Which definition to apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Level {
    Sser,
    Ser,
    Si,
}

/// Ground-truth strict serializability (Definition 4).
pub fn brute_check_sser(history: &History) -> bool {
    brute_check(history, Level::Sser)
}

/// Ground-truth serializability (Definition 5).
pub fn brute_check_ser(history: &History) -> bool {
    brute_check(history, Level::Ser)
}

/// Ground-truth snapshot isolation (Definition 6).
pub fn brute_check_si(history: &History) -> bool {
    brute_check(history, Level::Si)
}

fn brute_check(history: &History, level: Level) -> bool {
    if !find_intra_anomalies(history).is_empty() {
        return false;
    }

    let committed: Vec<TxnId> = history.committed_ids().collect();
    let n = history.len();
    let write_index = history.write_index();

    // Fixed edges: SO (and RT for SSER), WR.
    let mut base: Vec<(usize, usize)> = Vec::new();
    for (a, b) in history.session_order_edges() {
        if history.txn(a).is_committed() && history.txn(b).is_committed() {
            base.push((a.index(), b.index()));
        }
    }
    if level == Level::Sser {
        for &a in &committed {
            for &b in &committed {
                if a != b && history.txn(a).precedes_in_real_time(history.txn(b)) {
                    base.push((a.index(), b.index()));
                }
            }
        }
    }

    // WR edges and per-key readers of each version.
    let mut wr: Vec<(usize, usize)> = Vec::new();
    let mut readers_of: HashMap<(Key, TxnId), Vec<TxnId>> = HashMap::new();
    for &tid in &committed {
        let txn = history.txn(tid);
        if Some(tid) == history.init_txn() {
            continue;
        }
        for key in txn.key_set() {
            let Some(value) = txn.external_read(key) else {
                continue;
            };
            let writer = match write_index.get(&(key, value)) {
                Some(ws) => ws[0],
                None if value == INIT_VALUE && !history.has_init() => continue,
                None => return false, // unreadable value
            };
            if writer == tid {
                continue;
            }
            wr.push((writer.index(), tid.index()));
            readers_of.entry((key, writer)).or_default().push(tid);
        }
    }

    // Writers per key.
    let keys = history.keys();
    let writer_sets: Vec<(Key, Vec<TxnId>)> =
        keys.iter().map(|&k| (k, history.writers_of(k))).collect();

    // Enumerate the cartesian product of per-key writer permutations.
    let mut budget = COMBINATION_BUDGET;
    enumerate(
        &writer_sets,
        0,
        &mut Vec::new(),
        &mut budget,
        &mut |orders| {
            // Build WW and RW edges for this combination.
            let mut ww: Vec<(usize, usize)> = Vec::new();
            let mut rw: Vec<(usize, usize)> = Vec::new();
            for (key, order) in orders {
                for i in 0..order.len() {
                    for j in i + 1..order.len() {
                        let (a, b) = (order[i], order[j]);
                        ww.push((a.index(), b.index()));
                        // RW: readers of a's version anti-depend on b.
                        if let Some(readers) = readers_of.get(&(*key, a)) {
                            for &r in readers {
                                if r != b {
                                    rw.push((r.index(), b.index()));
                                }
                            }
                        }
                    }
                }
            }
            match level {
                Level::Ser | Level::Sser => {
                    let mut g = DiGraph::new(n);
                    for &(a, b) in base
                        .iter()
                        .chain(wr.iter())
                        .chain(ww.iter())
                        .chain(rw.iter())
                    {
                        g.add_edge(a, b);
                    }
                    g.is_acyclic()
                }
                Level::Si => {
                    let mut rw_out: Vec<Vec<usize>> = vec![Vec::new(); n];
                    for &(a, b) in &rw {
                        rw_out[a].push(b);
                    }
                    let mut g = DiGraph::new(n);
                    let mut self_loop = false;
                    for &(a, b) in base.iter().chain(wr.iter()).chain(ww.iter()) {
                        g.add_edge(a, b);
                        for &c in &rw_out[b] {
                            if a == c {
                                self_loop = true;
                            } else {
                                g.add_edge(a, c);
                            }
                        }
                    }
                    !self_loop && g.is_acyclic()
                }
            }
        },
    )
}

/// Recursively enumerates one permutation per key and calls `check` on each
/// complete combination; returns true as soon as `check` succeeds.
fn enumerate(
    writer_sets: &[(Key, Vec<TxnId>)],
    index: usize,
    chosen: &mut Vec<(Key, Vec<TxnId>)>,
    budget: &mut usize,
    check: &mut impl FnMut(&[(Key, Vec<TxnId>)]) -> bool,
) -> bool {
    if *budget == 0 {
        return false;
    }
    if index == writer_sets.len() {
        *budget -= 1;
        return check(chosen);
    }
    let (key, writers) = &writer_sets[index];
    let mut perm = writers.clone();
    permute(&mut perm, 0, &mut |p| {
        chosen.push((*key, p.to_vec()));
        let ok = enumerate(writer_sets, index + 1, chosen, budget, check);
        chosen.pop();
        ok
    })
}

/// Heap-style permutation enumeration with early exit.
fn permute(items: &mut [TxnId], k: usize, f: &mut impl FnMut(&[TxnId]) -> bool) -> bool {
    if k == items.len() {
        return f(items);
    }
    for i in k..items.len() {
        items.swap(k, i);
        if permute(items, k + 1, f) {
            items.swap(k, i);
            return true;
        }
        items.swap(k, i);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_core::{check_ser, check_si, check_sser};
    use mtc_history::anomalies;
    use mtc_history::{HistoryBuilder, Op};

    #[test]
    fn serial_history_satisfies_everything() {
        let mut b = HistoryBuilder::new().with_init(2);
        b.committed_timed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)], 1, 2);
        b.committed_timed(1, vec![Op::read(0u64, 1u64), Op::write(1u64, 2u64)], 3, 4);
        let h = b.build();
        assert!(brute_check_ser(&h));
        assert!(brute_check_si(&h));
        assert!(brute_check_sser(&h));
    }

    #[test]
    fn agrees_with_mtc_on_the_anomaly_catalogue() {
        for (kind, h) in anomalies::catalogue() {
            assert_eq!(
                brute_check_ser(&h),
                check_ser(&h).unwrap().is_satisfied(),
                "SER disagreement on {kind}"
            );
            assert_eq!(
                brute_check_si(&h),
                check_si(&h).unwrap().is_satisfied(),
                "SI disagreement on {kind}"
            );
            assert_eq!(
                brute_check_sser(&h),
                check_sser(&h).unwrap().is_satisfied(),
                "SSER disagreement on {kind}"
            );
        }
    }

    #[test]
    fn real_time_inversion_fails_only_sser() {
        let mut b = HistoryBuilder::new().with_init(1);
        b.committed_timed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)], 1, 2);
        b.committed_timed(1, vec![Op::read(0u64, 0u64)], 5, 6);
        let h = b.build();
        assert!(brute_check_ser(&h));
        assert!(brute_check_si(&h));
        assert!(!brute_check_sser(&h));
    }

    #[test]
    fn blind_writes_are_supported() {
        let mut b = HistoryBuilder::new().with_init(1);
        b.committed(0, vec![Op::write(0u64, 1u64)]);
        b.committed(1, vec![Op::write(0u64, 2u64)]);
        b.committed(2, vec![Op::read(0u64, 1u64)]);
        let h = b.build();
        assert!(brute_check_ser(&h));
    }
}
