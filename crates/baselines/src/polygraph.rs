//! Generalized polygraphs (Papadimitriou 1979; Cobra/PolySI encoding).
//!
//! For a *general* history the write-read relation is fixed by the unique
//! values, but the write-write (version) order of each object is not. A
//! polygraph captures this: a set of **known** edges plus, for every
//! still-unordered pair of writers of the same object, a **constraint** with
//! two alternatives (one per direction), each alternative carrying the
//! induced write-write and read-write edges. A history is serializable iff
//! some choice of one alternative per constraint yields an acyclic graph.
//!
//! [`Polygraph::from_history`] also applies the two pruning rules Cobra and
//! PolySI rely on:
//!
//! 1. **read-modify-write inference** — if `S` reads `x` from `T` and also
//!    writes `x`, then `T` must precede `S` in the version order of `x`;
//! 2. **reachability pruning** — if committing one alternative of a
//!    constraint would immediately close a cycle with the known edges, the
//!    other alternative is forced; this is iterated to a fixpoint.

use mtc_history::{DiGraph, History, Key, INIT_VALUE};
use std::collections::HashMap;

/// One orientation of a write-write constraint: the edges (as `(from, to)`
/// node indices) implied by choosing that orientation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Alternative {
    /// The write-write edge of this orientation.
    pub ww: (usize, usize),
    /// The read-write (anti-dependency) edges induced by this orientation:
    /// one per reader of the earlier writer's version.
    pub rw: Vec<(usize, usize)>,
}

impl Alternative {
    /// All edges of the orientation, write-write first.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        std::iter::once(self.ww).chain(self.rw.iter().copied())
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        1 + self.rw.len()
    }

    /// Never true: an orientation always carries its WW edge.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// An unresolved write-write ordering constraint between two transactions
/// writing the same object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Constraint {
    /// The object concerned.
    pub key: Key,
    /// The two writers.
    pub writers: (usize, usize),
    /// Edges if `writers.0` precedes `writers.1`.
    pub first: Alternative,
    /// Edges if `writers.1` precedes `writers.0`.
    pub second: Alternative,
}

/// A generalized polygraph.
#[derive(Clone, Debug, Default)]
pub struct Polygraph {
    /// Number of nodes (all transactions of the history; aborted ones are
    /// simply isolated).
    pub node_count: usize,
    /// Known edges: session order, write-read, and everything inferred or
    /// forced by pruning. Deduplicated.
    pub known: Vec<(usize, usize)>,
    /// Known read-write (anti-dependency) edges, kept separately because the
    /// SI condition treats them specially.
    pub known_rw: Vec<(usize, usize)>,
    /// Remaining constraints.
    pub constraints: Vec<Constraint>,
    /// Statistics: constraints resolved by pruning.
    pub pruned: usize,
}

/// Per-key bookkeeping used while building the polygraph.
struct KeyInfo {
    /// Committed writers of the key.
    writers: Vec<usize>,
    /// For each writer, the transactions that read *that writer's* version.
    readers_of: HashMap<usize, Vec<usize>>,
}

impl Polygraph {
    /// Builds the polygraph of a history, applying RMW inference. Reachability
    /// pruning is applied iff `prune` is true (Cobra/PolySI always prune; the
    /// ablation benchmark turns it off).
    pub fn from_history(history: &History, prune: bool) -> Self {
        let n = history.len();
        let write_index = history.write_index();
        let mut known: Vec<(usize, usize)> = Vec::new();
        let mut known_rw: Vec<(usize, usize)> = Vec::new();

        // Session order.
        for (a, b) in history.session_order_edges() {
            if history.txn(a).is_committed() && history.txn(b).is_committed() {
                known.push((a.index(), b.index()));
            }
        }

        // Write-read edges and per-key reader maps.
        let mut per_key: HashMap<Key, KeyInfo> = HashMap::new();
        for key in history.keys() {
            let writers: Vec<usize> = history.writers_of(key).iter().map(|t| t.index()).collect();
            per_key.insert(
                key,
                KeyInfo {
                    writers,
                    readers_of: HashMap::new(),
                },
            );
        }

        // Forced WW edges from the RMW inference (writer of read version →
        // reader that also writes), plus WR edges.
        let mut forced_ww: HashMap<Key, Vec<(usize, usize)>> = HashMap::new();
        for txn in history.committed() {
            if Some(txn.id) == history.init_txn() {
                continue;
            }
            for key in txn.key_set() {
                let Some(value) = txn.external_read(key) else {
                    continue;
                };
                let writer = match write_index.get(&(key, value)) {
                    Some(ws) => ws[0],
                    None => {
                        if value == INIT_VALUE && !history.has_init() {
                            continue;
                        }
                        // Unreadable value: treat as no edge; the prescan of
                        // the calling checker reports the anomaly.
                        continue;
                    }
                };
                if writer == txn.id {
                    continue;
                }
                known.push((writer.index(), txn.id.index()));
                if let Some(info) = per_key.get_mut(&key) {
                    info.readers_of
                        .entry(writer.index())
                        .or_default()
                        .push(txn.id.index());
                }
                if txn.writes(key) {
                    forced_ww
                        .entry(key)
                        .or_default()
                        .push((writer.index(), txn.id.index()));
                }
            }
        }

        // Materialize forced WW edges (and their induced RW edges) as known.
        for (key, pairs) in &forced_ww {
            let info = &per_key[key];
            for &(a, b) in pairs {
                known.push((a, b));
                for &r in info.readers_of.get(&a).map(Vec::as_slice).unwrap_or(&[]) {
                    if r != b {
                        known_rw.push((r, b));
                    }
                }
            }
        }

        // Constraints for writer pairs not already ordered.
        let mut ordered: HashMap<Key, Vec<(usize, usize)>> = forced_ww;
        let mut constraints = Vec::new();
        for (key, info) in &per_key {
            let forced = ordered.remove(key).unwrap_or_default();
            let is_forced =
                |a: usize, b: usize| forced.contains(&(a, b)) || forced.contains(&(b, a));
            for i in 0..info.writers.len() {
                for j in i + 1..info.writers.len() {
                    let (a, b) = (info.writers[i], info.writers[j]);
                    if is_forced(a, b) {
                        continue;
                    }
                    constraints.push(Constraint {
                        key: *key,
                        writers: (a, b),
                        first: orientation(a, b, info),
                        second: orientation(b, a, info),
                    });
                }
            }
        }

        let mut pg = Polygraph {
            node_count: n,
            known,
            known_rw,
            constraints,
            pruned: 0,
        };
        pg.dedup();
        if prune {
            pg.prune_by_reachability();
        }
        pg
    }

    fn dedup(&mut self) {
        self.known.sort_unstable();
        self.known.dedup();
        self.known_rw.sort_unstable();
        self.known_rw.dedup();
    }

    /// The known-edge graph (dependencies and anti-dependencies together).
    pub fn known_graph(&self) -> DiGraph {
        let mut g = DiGraph::new(self.node_count);
        for &(a, b) in self.known.iter().chain(self.known_rw.iter()) {
            g.add_edge(a, b);
        }
        g
    }

    /// Cobra-style pruning: if one orientation of a constraint is
    /// contradicted by the known edges (its reverse is already reachable),
    /// force the other orientation. Iterates to a fixpoint.
    ///
    /// Reachability is computed once per source node per iteration and
    /// cached, so each iteration costs `O(#writers · (V + E))` rather than
    /// `O(#constraints · (V + E))`.
    pub fn prune_by_reachability(&mut self) {
        use std::collections::HashMap as Cache;
        loop {
            let graph = self.known_graph();
            let mut reach_cache: Cache<usize, Vec<bool>> = Cache::new();
            let mut reaches = |from: usize, to: usize, graph: &DiGraph| -> bool {
                reach_cache
                    .entry(from)
                    .or_insert_with(|| graph.reachable_from(from))[to]
            };
            let mut forced_edges: Vec<(usize, usize)> = Vec::new();
            let mut remaining = Vec::with_capacity(self.constraints.len());
            let mut changed = false;

            let mut forced_rw: Vec<(usize, usize)> = Vec::new();
            for c in self.constraints.drain(..) {
                let (a, b) = c.writers;
                // If b already reaches a, then a→b would close a cycle: force second.
                let b_reaches_a = reaches(b, a, &graph);
                let a_reaches_b = reaches(a, b, &graph);
                match (a_reaches_b, b_reaches_a) {
                    (true, false) => {
                        forced_edges.push(c.first.ww);
                        forced_rw.extend_from_slice(&c.first.rw);
                        changed = true;
                        self.pruned += 1;
                    }
                    (false, true) => {
                        forced_edges.push(c.second.ww);
                        forced_rw.extend_from_slice(&c.second.rw);
                        changed = true;
                        self.pruned += 1;
                    }
                    _ => remaining.push(c),
                }
            }
            self.constraints = remaining;
            self.known.extend(forced_edges);
            self.known_rw.extend(forced_rw);
            self.dedup();
            if !changed {
                break;
            }
        }
    }

    /// Total number of candidate edges across unresolved constraints.
    pub fn constraint_edge_count(&self) -> usize {
        self.constraints
            .iter()
            .map(|c| c.first.len() + c.second.len())
            .sum()
    }
}

/// The edges implied by "`a` precedes `b` in the version order of the key":
/// the WW edge `a → b` plus an RW edge `r → b` for every reader `r` of `a`'s
/// version.
fn orientation(a: usize, b: usize, info: &KeyInfo) -> Alternative {
    let mut rw = Vec::new();
    for &r in info.readers_of.get(&a).map(Vec::as_slice).unwrap_or(&[]) {
        if r != b {
            rw.push((r, b));
        }
    }
    Alternative { ww: (a, b), rw }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_history::anomalies;
    use mtc_history::{HistoryBuilder, Op};

    #[test]
    fn mt_histories_have_no_unresolved_constraints() {
        // Serial RMW chain: every writer pair is ordered by RMW inference +
        // reachability pruning.
        let mut b = HistoryBuilder::new().with_init(1);
        b.committed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)]);
        b.committed(1, vec![Op::read(0u64, 1u64), Op::write(0u64, 2u64)]);
        b.committed(0, vec![Op::read(0u64, 2u64), Op::write(0u64, 3u64)]);
        let h = b.build();
        let pg = Polygraph::from_history(&h, true);
        assert!(pg.constraints.is_empty(), "{:?}", pg.constraints);
        assert!(pg.pruned > 0 || pg.constraints.is_empty());
        assert!(pg.known_graph().is_acyclic());
    }

    #[test]
    fn blind_writes_generate_constraints() {
        // Two blind writers of the same key with no reads: their order is
        // genuinely unknown.
        let mut b = HistoryBuilder::new().with_init(1);
        b.committed(0, vec![Op::write(0u64, 1u64)]);
        b.committed(1, vec![Op::write(0u64, 2u64)]);
        let h = b.build();
        let pg = Polygraph::from_history(&h, true);
        // ⊥T vs each writer and the two writers against each other: at least
        // the writer-writer pair must remain (neither direction is forced).
        assert!(
            pg.constraints
                .iter()
                .any(|c| c.writers == (1, 2) || c.writers == (2, 1)),
            "expected an unresolved writer pair, got {:?}",
            pg.constraints
        );
    }

    #[test]
    fn divergence_gives_symmetric_constraint() {
        let h = anomalies::divergence();
        let pg = Polygraph::from_history(&h, true);
        // T2 and T3 both read from T1 and overwrite: the constraint between
        // them remains, and each orientation carries an RW edge.
        let c = pg
            .constraints
            .iter()
            .find(|c| {
                let (a, b) = c.writers;
                (a, b) == (2, 3) || (a, b) == (3, 2)
            })
            .expect("diverging writer pair must be constrained");
        assert!(!c.first.is_empty());
        assert!(!c.second.is_empty());
        // The divergence itself already shows up as two crossing
        // anti-dependencies among the known edges, so the known graph alone
        // is cyclic (this is what makes the history non-serializable no
        // matter how the constraint is resolved).
        assert!(!pg.known_graph().is_acyclic());
    }

    #[test]
    #[allow(clippy::explicit_counter_loop)] // `v` is state, not a counter
    fn pruning_reduces_constraints() {
        let mut b = HistoryBuilder::new().with_init(2);
        let mut last = [0u64, 0u64];
        let mut v = 1u64;
        for i in 0..40u64 {
            let k = i % 2;
            b.committed(
                (i % 4) as u32,
                vec![Op::read(k, last[k as usize]), Op::write(k, v)],
            );
            last[k as usize] = v;
            v += 1;
        }
        let h = b.build();
        let unpruned = Polygraph::from_history(&h, false);
        let pruned = Polygraph::from_history(&h, true);
        assert!(pruned.constraints.len() <= unpruned.constraints.len());
        assert!(pruned.constraint_edge_count() <= unpruned.constraint_edge_count());
    }

    #[test]
    fn known_edges_are_deduplicated() {
        let h = anomalies::lost_update();
        let pg = Polygraph::from_history(&h, true);
        let mut sorted = pg.known.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), pg.known.len());
    }
}
