//! A PolySI-style snapshot-isolation checker.
//!
//! PolySI extends Cobra's polygraph encoding to snapshot isolation: a history
//! satisfies SI iff there is an orientation of the write-write constraints
//! such that the *composed* graph `(SO ∪ WR ∪ WW) ; RW?` is acyclic
//! (Definition 6 of the paper). The search below mirrors
//! [`crate::cobra`]: constraints are oriented one by one, and a partial
//! orientation is abandoned as soon as its composed graph already contains a
//! cycle (adding edges can only add cycles, so the pruning is sound).

use crate::cobra::{BaselineOutcome, SolverStats, DECISION_BUDGET};
use crate::polygraph::Polygraph;
use mtc_history::{find_intra_anomalies, DiGraph, History};

/// Checks snapshot isolation of a history the way PolySI does.
pub fn polysi_check_si(history: &History) -> BaselineOutcome {
    polysi_check_si_with(history, true)
}

/// Like [`polysi_check_si`] but with pruning optionally disabled.
pub fn polysi_check_si_with(history: &History, prune: bool) -> BaselineOutcome {
    if !find_intra_anomalies(history).is_empty() {
        return BaselineOutcome {
            satisfied: false,
            timed_out: false,
            stats: SolverStats {
                txns: history.len(),
                ..SolverStats::default()
            },
        };
    }

    let pg = Polygraph::from_history(history, prune);
    let mut stats = SolverStats {
        txns: history.len(),
        known_edges: pg.known.len() + pg.known_rw.len(),
        constraints_before_pruning: pg.constraints.len() + pg.pruned,
        constraints: pg.constraints.len(),
        pruned: pg.pruned,
        decisions: 0,
    };

    let mut search = SiSearch {
        pg: &pg,
        chosen_ww: Vec::new(),
        chosen_rw: Vec::new(),
        decisions: 0,
        budget: DECISION_BUDGET,
    };
    if !search.composed_acyclic() {
        return BaselineOutcome {
            satisfied: false,
            timed_out: false,
            stats,
        };
    }
    let result = search.solve(0);
    stats.decisions = search.decisions;
    BaselineOutcome {
        satisfied: matches!(result, SiResult::Satisfiable),
        timed_out: matches!(result, SiResult::BudgetExhausted),
        stats,
    }
}

enum SiResult {
    Satisfiable,
    Unsatisfiable,
    BudgetExhausted,
}

struct SiSearch<'a> {
    pg: &'a Polygraph,
    chosen_ww: Vec<(usize, usize)>,
    chosen_rw: Vec<(usize, usize)>,
    decisions: usize,
    budget: usize,
}

impl SiSearch<'_> {
    /// Builds `(SO ∪ WR ∪ WW) ; RW?` for the current partial orientation and
    /// checks its acyclicity.
    fn composed_acyclic(&self) -> bool {
        let n = self.pg.node_count;
        // Per-node RW successors.
        let mut rw_out: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in self.pg.known_rw.iter().chain(self.chosen_rw.iter()) {
            rw_out[a].push(b);
        }
        let mut composed = DiGraph::new(n);
        for &(a, b) in self.pg.known.iter().chain(self.chosen_ww.iter()) {
            composed.add_edge(a, b);
            for &c in &rw_out[b] {
                if a != c {
                    composed.add_edge(a, c);
                } else {
                    // base ; rw closes a two-edge loop: immediately cyclic.
                    return false;
                }
            }
        }
        composed.is_acyclic()
    }

    fn solve(&mut self, index: usize) -> SiResult {
        self.decisions += 1;
        if self.decisions > self.budget {
            return SiResult::BudgetExhausted;
        }
        if index == self.pg.constraints.len() {
            return SiResult::Satisfiable;
        }
        let c = &self.pg.constraints[index];
        for alt in [&c.first, &c.second] {
            let ww_mark = self.chosen_ww.len();
            let rw_mark = self.chosen_rw.len();
            self.chosen_ww.push(alt.ww);
            self.chosen_rw.extend_from_slice(&alt.rw);
            if self.composed_acyclic() {
                match self.solve(index + 1) {
                    SiResult::Satisfiable => return SiResult::Satisfiable,
                    SiResult::BudgetExhausted => return SiResult::BudgetExhausted,
                    SiResult::Unsatisfiable => {}
                }
            }
            self.chosen_ww.truncate(ww_mark);
            self.chosen_rw.truncate(rw_mark);
        }
        SiResult::Unsatisfiable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_core::check_si;
    use mtc_history::anomalies;
    use mtc_history::{HistoryBuilder, Op};

    #[test]
    fn serial_history_satisfies_si() {
        let mut b = HistoryBuilder::new().with_init(2);
        b.committed(0, vec![Op::read(0u64, 0u64), Op::write(0u64, 1u64)]);
        b.committed(1, vec![Op::read(0u64, 1u64), Op::write(0u64, 2u64)]);
        let h = b.build();
        assert!(polysi_check_si(&h).satisfied);
    }

    #[test]
    fn agrees_with_mtc_on_the_anomaly_catalogue() {
        for (kind, h) in anomalies::catalogue() {
            let polysi = polysi_check_si(&h);
            let mtc = check_si(&h).unwrap();
            assert!(!polysi.timed_out, "{kind} timed out");
            assert_eq!(
                polysi.satisfied,
                mtc.is_satisfied(),
                "PolySI and MTC disagree on {kind}"
            );
        }
    }

    #[test]
    fn write_skew_satisfies_si_but_lost_update_does_not() {
        assert!(polysi_check_si(&anomalies::write_skew()).satisfied);
        assert!(!polysi_check_si(&anomalies::lost_update()).satisfied);
        assert!(!polysi_check_si(&anomalies::long_fork()).satisfied);
    }

    #[test]
    fn divergence_is_rejected_regardless_of_orientation() {
        assert!(!polysi_check_si(&anomalies::divergence()).satisfied);
    }

    #[test]
    fn blind_write_histories_are_handled() {
        let mut b = HistoryBuilder::new().with_init(1);
        b.committed(0, vec![Op::write(0u64, 1u64)]);
        b.committed(1, vec![Op::write(0u64, 2u64)]);
        b.committed(2, vec![Op::read(0u64, 2u64)]);
        let h = b.build();
        assert!(polysi_check_si(&h).satisfied);
    }
}
