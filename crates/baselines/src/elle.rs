//! An Elle-style checker (list-append and read-write-register workloads).
//!
//! Elle's key idea is to choose workloads whose reads *reveal* the version
//! order. In the **list-append** workload every object is a list and every
//! write appends a unique element; reading a list of `n` elements therefore
//! exposes the relative order of the `n` appends, from which write-write,
//! write-read and read-write dependencies are recovered directly and cycles
//! indicate isolation violations. The **read-write-register** workload has no
//! such structure, so dependency inference degenerates to the generalized
//! polygraph search also used by Cobra/PolySI.

use crate::cobra::BaselineOutcome;
use crate::{cobra, polysi};
use mtc_history::{DiGraph, History, Key, SessionId, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One operation of a list-append transaction.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ListOp {
    /// Append `element` to the list at `key`.
    Append {
        /// Target list.
        key: Key,
        /// The (globally unique) element appended.
        element: Value,
    },
    /// Read the whole list at `key`, observing `elements`.
    Read {
        /// Target list.
        key: Key,
        /// The elements observed, in list order.
        elements: Vec<Value>,
    },
}

impl ListOp {
    /// The key touched.
    pub fn key(&self) -> Key {
        match self {
            ListOp::Append { key, .. } | ListOp::Read { key, .. } => *key,
        }
    }
}

/// A committed list-append transaction.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ListTxn {
    /// Issuing session.
    pub session: SessionId,
    /// Operations in program order.
    pub ops: Vec<ListOp>,
}

/// A history of committed list-append transactions.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ListHistory {
    /// Committed transactions, in collection order.
    pub txns: Vec<ListTxn>,
}

impl ListHistory {
    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// True iff there are no transactions.
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }
}

/// The anomalies the list-append checker can report.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ElleAnomaly {
    /// Two reads observed incompatible list prefixes (neither is a prefix of
    /// the other) — the version order is forked.
    IncompatibleOrder {
        /// Key concerned.
        key: Key,
    },
    /// An element was observed that no transaction appended.
    PhantomElement {
        /// Key concerned.
        key: Key,
        /// The unknown element.
        element: Value,
    },
    /// The dependency graph derived from the reads contains a cycle
    /// forbidden by the target isolation level.
    Cycle {
        /// The transactions (indices into the history) on the cycle.
        txns: Vec<usize>,
    },
}

/// Result of an Elle-style list-append check.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ElleOutcome {
    /// True iff no anomaly was found.
    pub satisfied: bool,
    /// The anomalies found (empty iff `satisfied`).
    pub anomalies: Vec<ElleAnomaly>,
}

/// Which level the list-append checker enforces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ElleLevel {
    /// Serializability: any dependency cycle is a violation.
    Serializability,
    /// Snapshot isolation: only cycles in `(SO ∪ WR ∪ WW) ; RW?` count.
    SnapshotIsolation,
}

/// Checks a list-append history against the given isolation level.
pub fn elle_check_list_append(history: &ListHistory, level: ElleLevel) -> ElleOutcome {
    let n = history.txns.len();
    let mut anomalies = Vec::new();

    // ── Infer the per-key version order from the longest observed read and
    //    from the appends themselves. ─────────────────────────────────────────
    // For each key: order of elements = the longest read list (all other reads
    // must be prefixes of it), extended by appends not yet observed.
    let mut appender: HashMap<(Key, Value), usize> = HashMap::new();
    for (i, t) in history.txns.iter().enumerate() {
        for op in &t.ops {
            if let ListOp::Append { key, element } = op {
                appender.insert((*key, *element), i);
            }
        }
    }

    let mut longest_read: HashMap<Key, Vec<Value>> = HashMap::new();
    for t in &history.txns {
        for op in &t.ops {
            if let ListOp::Read { key, elements } = op {
                let entry = longest_read.entry(*key).or_default();
                if elements.len() > entry.len() {
                    // The previous longest must be a prefix of the new one.
                    if !is_prefix(entry, elements) {
                        anomalies.push(ElleAnomaly::IncompatibleOrder { key: *key });
                    }
                    *entry = elements.clone();
                } else if !is_prefix(elements, entry) {
                    anomalies.push(ElleAnomaly::IncompatibleOrder { key: *key });
                }
            }
        }
    }

    for (key, elements) in &longest_read {
        for e in elements {
            if !appender.contains_key(&(*key, *e)) {
                anomalies.push(ElleAnomaly::PhantomElement {
                    key: *key,
                    element: *e,
                });
            }
        }
    }
    if !anomalies.is_empty() {
        return ElleOutcome {
            satisfied: false,
            anomalies,
        };
    }

    // ── Build dependency edges. ──────────────────────────────────────────────
    // Version order per key: the longest read, then any unobserved appends in
    // transaction order (their relative order is unknown but irrelevant for
    // the reads, which never saw them).
    let mut so_wr_ww: Vec<(usize, usize)> = Vec::new();
    let mut rw: Vec<(usize, usize)> = Vec::new();

    // Session order.
    let mut last_of_session: HashMap<SessionId, usize> = HashMap::new();
    for (i, t) in history.txns.iter().enumerate() {
        if let Some(&prev) = last_of_session.get(&t.session) {
            so_wr_ww.push((prev, i));
        }
        last_of_session.insert(t.session, i);
    }

    let mut keys: Vec<Key> = longest_read.keys().copied().collect();
    for k in appender.keys().map(|(k, _)| *k) {
        if !keys.contains(&k) {
            keys.push(k);
        }
    }

    for key in keys {
        let order: Vec<Value> = longest_read.get(&key).cloned().unwrap_or_default();
        let order_writers: Vec<usize> = order
            .iter()
            .filter_map(|e| appender.get(&(key, *e)).copied())
            .collect();
        // WW edges along the observed order (collapsing consecutive appends
        // by the same transaction).
        for w in order_writers.windows(2) {
            if w[0] != w[1] {
                so_wr_ww.push((w[0], w[1]));
            }
        }
        // WR and RW edges from every read of this key.
        for (i, t) in history.txns.iter().enumerate() {
            for op in &t.ops {
                let ListOp::Read { key: k, elements } = op else {
                    continue;
                };
                if *k != key {
                    continue;
                }
                match elements.last() {
                    Some(last) => {
                        let writer = appender[&(key, *last)];
                        if writer != i {
                            so_wr_ww.push((writer, i));
                        }
                        // Anti-dependency: the reader precedes the appender of
                        // the *next* element in the version order.
                        if let Some(pos) = order.iter().position(|e| e == last) {
                            if let Some(next) = order.get(pos + 1) {
                                let overwriter = appender[&(key, *next)];
                                if overwriter != i {
                                    rw.push((i, overwriter));
                                }
                            }
                        }
                    }
                    None => {
                        // Read of the empty list: anti-depends on the first
                        // appender in the version order.
                        if let Some(first) = order.first() {
                            let overwriter = appender[&(key, *first)];
                            if overwriter != i {
                                rw.push((i, overwriter));
                            }
                        }
                    }
                }
            }
        }
    }

    // ── Cycle detection. ─────────────────────────────────────────────────────
    let cyclic = match level {
        ElleLevel::Serializability => {
            let mut g = DiGraph::new(n);
            for &(a, b) in so_wr_ww.iter().chain(rw.iter()) {
                g.add_edge(a, b);
            }
            g.find_cycle()
        }
        ElleLevel::SnapshotIsolation => {
            let mut rw_out: Vec<Vec<usize>> = vec![Vec::new(); n];
            for &(a, b) in &rw {
                rw_out[a].push(b);
            }
            let mut g = DiGraph::new(n);
            for &(a, b) in &so_wr_ww {
                g.add_edge(a, b);
                for &c in &rw_out[b] {
                    g.add_edge(a, c);
                }
            }
            g.find_cycle()
        }
    };
    if let Some(cycle) = cyclic {
        anomalies.push(ElleAnomaly::Cycle { txns: cycle });
    }
    ElleOutcome {
        satisfied: anomalies.is_empty(),
        anomalies,
    }
}

fn is_prefix(prefix: &[Value], list: &[Value]) -> bool {
    prefix.len() <= list.len() && prefix.iter().zip(list.iter()).all(|(a, b)| a == b)
}

/// Checks a read-write-register history (blind writes allowed) against
/// serializability, Elle-style: dependency inference is weak, so the check
/// falls back to the generalized polygraph search.
pub fn elle_check_rw_register(history: &History, level: ElleLevel) -> BaselineOutcome {
    match level {
        ElleLevel::Serializability => cobra::cobra_check_ser(history),
        ElleLevel::SnapshotIsolation => polysi::polysi_check_si(history),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(session: u32, ops: Vec<ListOp>) -> ListTxn {
        ListTxn {
            session: SessionId(session),
            ops,
        }
    }

    fn append(key: u64, element: u64) -> ListOp {
        ListOp::Append {
            key: Key(key),
            element: Value(element),
        }
    }

    fn read(key: u64, elements: &[u64]) -> ListOp {
        ListOp::Read {
            key: Key(key),
            elements: elements.iter().map(|&e| Value(e)).collect(),
        }
    }

    #[test]
    fn serial_appends_are_accepted() {
        let h = ListHistory {
            txns: vec![
                txn(0, vec![append(0, 1)]),
                txn(1, vec![append(0, 2), read(0, &[1, 2])]),
                txn(0, vec![read(0, &[1, 2])]),
            ],
        };
        assert!(elle_check_list_append(&h, ElleLevel::Serializability).satisfied);
        assert!(elle_check_list_append(&h, ElleLevel::SnapshotIsolation).satisfied);
    }

    #[test]
    fn incompatible_orders_are_detected() {
        let h = ListHistory {
            txns: vec![
                txn(0, vec![append(0, 1)]),
                txn(1, vec![append(0, 2)]),
                txn(2, vec![read(0, &[1, 2])]),
                txn(3, vec![read(0, &[2, 1])]),
            ],
        };
        let out = elle_check_list_append(&h, ElleLevel::Serializability);
        assert!(!out.satisfied);
        assert!(out
            .anomalies
            .iter()
            .any(|a| matches!(a, ElleAnomaly::IncompatibleOrder { .. })));
    }

    #[test]
    fn phantom_elements_are_detected() {
        let h = ListHistory {
            txns: vec![txn(0, vec![read(0, &[99])])],
        };
        let out = elle_check_list_append(&h, ElleLevel::Serializability);
        assert!(!out.satisfied);
        assert!(out
            .anomalies
            .iter()
            .any(|a| matches!(a, ElleAnomaly::PhantomElement { .. })));
    }

    #[test]
    fn lost_update_style_fork_is_a_cycle() {
        // T1 and T2 both read the empty list and append; a later read sees
        // both elements. The two appends anti-depend on each other through
        // the empty reads → G1c-style cycle under SER.
        let h = ListHistory {
            txns: vec![
                txn(0, vec![read(0, &[]), append(0, 1)]),
                txn(1, vec![read(0, &[]), append(0, 2)]),
                txn(2, vec![read(0, &[1, 2])]),
            ],
        };
        let out = elle_check_list_append(&h, ElleLevel::Serializability);
        assert!(!out.satisfied);
        assert!(out
            .anomalies
            .iter()
            .any(|a| matches!(a, ElleAnomaly::Cycle { .. })));
    }

    #[test]
    fn write_skew_on_lists_passes_si_but_fails_ser() {
        // T1 reads list y (empty) and appends to x; T2 reads list x (empty)
        // and appends to y.
        let h = ListHistory {
            txns: vec![
                txn(0, vec![read(1, &[]), append(0, 1)]),
                txn(1, vec![read(0, &[]), append(1, 2)]),
                txn(2, vec![read(0, &[1]), read(1, &[2])]),
            ],
        };
        assert!(!elle_check_list_append(&h, ElleLevel::Serializability).satisfied);
        assert!(elle_check_list_append(&h, ElleLevel::SnapshotIsolation).satisfied);
    }

    #[test]
    fn empty_history_is_fine() {
        let h = ListHistory::default();
        assert!(h.is_empty());
        assert!(elle_check_list_append(&h, ElleLevel::Serializability).satisfied);
    }

    #[test]
    fn rw_register_mode_delegates_to_the_polygraph_checkers() {
        use mtc_history::anomalies;
        let h = anomalies::write_skew();
        assert!(!elle_check_rw_register(&h, ElleLevel::Serializability).satisfied);
        assert!(elle_check_rw_register(&h, ElleLevel::SnapshotIsolation).satisfied);
    }
}
