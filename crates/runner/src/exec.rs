//! Executing workloads and verifying the collected histories.
//!
//! This module glues the pipeline together: `mtc-workload` templates are
//! executed against an `mtc-dbsim` instance, the resulting history is checked
//! by MTC or by one of the baselines, and both stages are timed. Memory is
//! reported as a structural estimate (bytes of history + bytes of the
//! checker's graph/constraint encoding), which is the quantity the paper's
//! memory plots track qualitatively.

use mtc_baselines::cobra::{cobra_check_ser, BaselineOutcome};
use mtc_baselines::elle::{ListHistory, ListOp, ListTxn};
use mtc_baselines::polysi::polysi_check_si;
use mtc_core::{
    build_dependency, check_ser, check_si, check_sser, check_sser_naive, tune, IncrementalChecker,
    IsolationLevel, ShardedIncrementalChecker,
};
use mtc_dbsim::{ClientOptions, DbBackend, ExecutionOptions, ExecutionReport, LiveVerifier};
use mtc_history::{History, HistoryBuilder, Op, SessionId, TxnStatus, ValueAllocator};
use mtc_workload::{ElleOpTemplate, ElleWorkload, Workload};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// The checkers the harness can run on a register history.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Checker {
    /// MTC's linear-time serializability verifier.
    MtcSer,
    /// MTC's linear-time snapshot-isolation verifier.
    MtcSi,
    /// MTC's strict-serializability verifier (time-chain encoding).
    MtcSser,
    /// MTC's strict-serializability verifier with materialized RT edges.
    MtcSserNaive,
    /// Streaming serializability verifier (incremental topological order,
    /// transaction-by-transaction).
    MtcSerIncremental,
    /// Streaming snapshot-isolation verifier.
    MtcSiIncremental,
    /// Streaming strict-serializability verifier (online time-chain,
    /// transaction-by-transaction).
    MtcSserIncremental,
    /// Streaming serializability verifier with key-sharded parallel edge
    /// derivation; shard count and batch size come from the autotuner
    /// (`mtc_core::tune`), so the geometry matches the machine running it.
    MtcSerSharded,
    /// Streaming snapshot-isolation verifier, key-sharded (autotuned).
    MtcSiSharded,
    /// Streaming strict-serializability verifier, key-sharded and autotuned
    /// (the time-chain stays on the merge thread).
    MtcSserSharded,
    /// Cobra-style serializability baseline (polygraph + constraint search).
    CobraSer,
    /// PolySI-style snapshot-isolation baseline.
    PolySiSi,
    /// Elle-style read-write-register serializability check.
    ElleRwSer,
    /// Elle-style read-write-register snapshot-isolation check.
    ElleRwSi,
}

impl Checker {
    /// Short label used in report tables.
    pub fn label(self) -> &'static str {
        match self {
            Checker::MtcSer => "MTC-SER",
            Checker::MtcSi => "MTC-SI",
            Checker::MtcSser => "MTC-SSER",
            Checker::MtcSserNaive => "MTC-SSER-naive",
            Checker::MtcSerIncremental => "MTC-SER-inc",
            Checker::MtcSiIncremental => "MTC-SI-inc",
            Checker::MtcSserIncremental => "MTC-SSER-inc",
            Checker::MtcSerSharded => "MTC-SER-shard",
            Checker::MtcSiSharded => "MTC-SI-shard",
            Checker::MtcSserSharded => "MTC-SSER-shard",
            Checker::CobraSer => "Cobra",
            Checker::PolySiSi => "PolySI",
            Checker::ElleRwSer => "Elle-wr(SER)",
            Checker::ElleRwSi => "Elle-wr(SI)",
        }
    }
}

/// Result of running one checker on one history.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VerifyOutcome {
    /// Which checker ran.
    pub checker: Checker,
    /// True iff a violation of the target isolation level was reported.
    pub violated: bool,
    /// Verification wall-clock time.
    pub duration: Duration,
    /// Structural memory estimate of the checker's working set, in bytes.
    pub memory_bytes: usize,
    /// Free-form detail (counterexample summary or solver statistics).
    pub detail: String,
}

/// Approximate number of bytes needed to hold a history in memory.
pub fn history_memory_bytes(history: &History) -> usize {
    // Transaction header + per-operation payload; matches the in-memory
    // layout closely enough for trend comparisons.
    history.len() * 96 + history.op_count() * 24
}

fn baseline_memory(stats: &mtc_baselines::cobra::SolverStats) -> usize {
    stats.txns * 96 + stats.known_edges * 24 + stats.constraints * 96
}

/// Runs `checker` on `history`, timing it.
pub fn verify(checker: Checker, history: &History) -> VerifyOutcome {
    // Resolve the autotuned geometry before starting the clock: the first
    // tune() call in a process runs a calibration burst, which must not
    // pollute the first sharded measurement.
    let tuning = match checker {
        Checker::MtcSerSharded | Checker::MtcSiSharded | Checker::MtcSserSharded => Some(tune()),
        _ => None,
    };
    let start = Instant::now();
    let (violated, memory, detail) = match checker {
        Checker::MtcSerIncremental | Checker::MtcSiIncremental | Checker::MtcSserIncremental => {
            let level = match checker {
                Checker::MtcSerIncremental => IsolationLevel::Serializability,
                Checker::MtcSiIncremental => IsolationLevel::SnapshotIsolation,
                _ => IsolationLevel::StrictSerializability,
            };
            verify_streaming(level, history)
        }
        Checker::MtcSerSharded | Checker::MtcSiSharded | Checker::MtcSserSharded => {
            let level = match checker {
                Checker::MtcSerSharded => IsolationLevel::Serializability,
                Checker::MtcSiSharded => IsolationLevel::SnapshotIsolation,
                _ => IsolationLevel::StrictSerializability,
            };
            let tuning = tuning.expect("geometry resolved before the timer");
            let mut c = ShardedIncrementalChecker::new(level, tuning.shards);
            let _ = c.push_history(history, tuning.batch);
            let edges = c.edge_count();
            let mem = history_memory_bytes(history) + edges * 24;
            match c.finish() {
                Ok(verdict) => {
                    let detail = match verdict.violation() {
                        Some(v) => format!("{v}"),
                        None => "ok".to_string(),
                    };
                    (verdict.is_violated(), mem, detail)
                }
                Err(e) => (false, mem, format!("checker not applicable: {e}")),
            }
        }
        Checker::MtcSer | Checker::MtcSi | Checker::MtcSser | Checker::MtcSserNaive => {
            let verdict = match checker {
                Checker::MtcSer => check_ser(history),
                Checker::MtcSi => check_si(history),
                Checker::MtcSser => check_sser(history),
                Checker::MtcSserNaive => check_sser_naive(history),
                _ => unreachable!(),
            };
            match verdict {
                Ok(verdict) => {
                    let edges = build_dependency(history, false)
                        .map(|g| g.edge_count())
                        .unwrap_or(0);
                    let mem = history_memory_bytes(history) + edges * 24;
                    let detail = match verdict.violation() {
                        Some(v) => format!("{v}"),
                        None => "ok".to_string(),
                    };
                    (verdict.is_violated(), mem, detail)
                }
                Err(e) => (
                    false,
                    history_memory_bytes(history),
                    format!("checker not applicable: {e}"),
                ),
            }
        }
        Checker::CobraSer | Checker::ElleRwSer => {
            let out: BaselineOutcome = cobra_check_ser(history);
            summarize_baseline(history, &out)
        }
        Checker::PolySiSi | Checker::ElleRwSi => {
            let out: BaselineOutcome = polysi_check_si(history);
            summarize_baseline(history, &out)
        }
    };
    VerifyOutcome {
        checker,
        violated,
        duration: start.elapsed(),
        memory_bytes: memory,
        detail,
    }
}

/// Feeds `history` transaction-by-transaction into an [`IncrementalChecker`]
/// and summarizes the outcome, including how early the violation latched.
fn verify_streaming(level: IsolationLevel, history: &History) -> (bool, usize, String) {
    let mut checker = IncrementalChecker::new(level);
    let _ = checker.push_history(history);
    let first = checker.first_violation_at();
    let edges = checker.edge_count();
    let total = checker.txn_count();
    let mem = history_memory_bytes(history) + edges * 24;
    match checker.finish() {
        Ok(verdict) => {
            let detail = match (verdict.violation(), first) {
                (Some(v), Some(at)) => {
                    format!("first violation at txn {}/{}: {v}", at.index(), total)
                }
                (Some(v), None) => format!("settled at finish: {v}"),
                (None, _) => "ok".to_string(),
            };
            (verdict.is_violated(), mem, detail)
        }
        Err(e) => (false, mem, format!("checker not applicable: {e}")),
    }
}

fn summarize_baseline(history: &History, out: &BaselineOutcome) -> (bool, usize, String) {
    let mem = history_memory_bytes(history) + baseline_memory(&out.stats);
    let detail = format!(
        "constraints={} pruned={} decisions={}{}",
        out.stats.constraints,
        out.stats.pruned,
        out.stats.decisions,
        if out.timed_out { " TIMEOUT" } else { "" }
    );
    (!out.satisfied, mem, detail)
}

/// Executes a register workload against `db` — any [`DbBackend`]. The
/// backend should be freshly built for the run: histories assume the `⊥T`
/// initial state and unique written values, which a reused instance would
/// not provide.
pub fn run_register_workload(
    db: &dyn DbBackend,
    workload: &Workload,
    opts: &ClientOptions,
) -> (History, ExecutionReport) {
    ExecutionOptions::threaded().client(*opts).run(db, workload)
}

/// A complete end-to-end measurement: generation plus verification.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EndToEnd {
    /// History-generation wall-clock time.
    pub generation: Duration,
    /// Verification wall-clock time.
    pub verification: Duration,
    /// Committed transactions in the history (excluding `⊥T`).
    pub committed: usize,
    /// Abort rate observed during generation.
    pub abort_rate: f64,
    /// Whether the checker reported a violation.
    pub violated: bool,
    /// Structural memory estimate of the verification stage.
    pub memory_bytes: usize,
}

impl EndToEnd {
    /// Total end-to-end time.
    pub fn total(&self) -> Duration {
        self.generation + self.verification
    }
}

/// Runs the full pipeline: execute `workload` on `db` (a fresh backend),
/// then verify the collected history with `checker`.
pub fn end_to_end(
    db: &dyn DbBackend,
    workload: &Workload,
    opts: &ClientOptions,
    checker: Checker,
) -> EndToEnd {
    let (history, report) = run_register_workload(db, workload, opts);
    let outcome = verify(checker, &history);
    EndToEnd {
        generation: report.wall_time,
        verification: outcome.duration,
        committed: report.committed,
        abort_rate: report.abort_rate(),
        violated: outcome.violated,
        memory_bytes: outcome.memory_bytes,
    }
}

/// Result of a streaming (live-verified) end-to-end run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StreamingEndToEnd {
    /// Wall-clock duration of the (possibly truncated) run.
    pub wall_time: Duration,
    /// Committed transactions executed before the run ended.
    pub committed: usize,
    /// Abort rate observed during the run.
    pub abort_rate: f64,
    /// Whether a violation was latched (live or at settlement).
    pub violated: bool,
    /// Transactions the verifier consumed when the violation latched, if it
    /// latched mid-run.
    pub first_violation_txn: Option<usize>,
    /// Wall-clock time from workload start to the first latched violation —
    /// the headline "time-to-first-violation" metric.
    pub time_to_first_violation: Option<Duration>,
    /// Counterexample / settlement detail.
    pub detail: String,
}

/// Runs a register workload with *live* verification: the streaming checker
/// consumes transactions as they commit, concurrently with execution. With
/// `stop_on_violation`, sessions cease issuing transactions once a violation
/// is latched, so the run's cost is proportional to the time-to-first-
/// violation rather than to the workload size. The verifier backend is
/// picked by the autotuner: sequential on a single core, key-sharded with
/// a bounded hand-off buffer when spare cores exist (verdicts identical
/// either way).
pub fn end_to_end_streaming(
    db: &dyn DbBackend,
    workload: &Workload,
    opts: &ClientOptions,
    level: IsolationLevel,
    stop_on_violation: bool,
) -> StreamingEndToEnd {
    let verifier = LiveVerifier::builder(level, workload.num_keys)
        .stop_on_violation(stop_on_violation)
        .autotuned()
        .build();
    let (_history, report) = ExecutionOptions::threaded()
        .client(*opts)
        .verifier(&verifier)
        .run(db, workload);
    let outcome = verifier.finish();
    let (violated, detail) = match &outcome.verdict {
        Ok(verdict) => (
            verdict.is_violated(),
            verdict
                .violation()
                .map(|v| v.to_string())
                .unwrap_or_else(|| "ok".to_string()),
        ),
        Err(e) => (false, format!("checker not applicable: {e}")),
    };
    StreamingEndToEnd {
        wall_time: report.wall_time,
        committed: report.committed,
        abort_rate: report.abort_rate(),
        violated,
        first_violation_txn: outcome.first_violation.as_ref().map(|f| f.at_txn),
        time_to_first_violation: outcome.first_violation.as_ref().map(|f| f.elapsed),
        detail,
    }
}

/// Executes an Elle list-append workload against `db` (a fresh backend),
/// returning the committed list history and the execution report.
pub fn run_elle_append_workload(
    db: &dyn DbBackend,
    workload: &ElleWorkload,
    opts: &ClientOptions,
) -> (ListHistory, ExecutionReport) {
    let start = Instant::now();
    let mut per_session: Vec<(u32, Vec<ListTxn>, usize, usize)> = Vec::new();

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (sid, templates) in workload.sessions.iter().enumerate() {
            handles.push(scope.spawn(move || {
                let mut allocator = ValueAllocator::new(sid as u32);
                let mut txns = Vec::new();
                let mut attempts = 0usize;
                let mut aborted = 0usize;
                for template in templates {
                    for _attempt in 0..=opts.max_retries {
                        attempts += 1;
                        let mut handle = db.begin();
                        let mut ops = Vec::with_capacity(template.ops.len());
                        let mut failed = false;
                        for op in &template.ops {
                            match op {
                                ElleOpTemplate::Append(key) => {
                                    let element = allocator.next();
                                    if handle.append(*key, element).is_err() {
                                        failed = true;
                                        break;
                                    }
                                    ops.push(ListOp::Append { key: *key, element });
                                }
                                ElleOpTemplate::ReadList(key) => {
                                    let Ok(elements) = handle.read_list(*key) else {
                                        failed = true;
                                        break;
                                    };
                                    ops.push(ListOp::Read {
                                        key: *key,
                                        elements,
                                    });
                                }
                                ElleOpTemplate::WriteRegister(_)
                                | ElleOpTemplate::ReadRegister(_) => {
                                    // Register templates do not belong in an
                                    // append execution; skip them.
                                }
                            }
                        }
                        let committed = if failed {
                            let _ = handle.abort();
                            false
                        } else {
                            handle.commit().is_ok()
                        };
                        if committed {
                            txns.push(ListTxn {
                                session: SessionId(sid as u32),
                                ops,
                            });
                            break;
                        }
                        aborted += 1;
                    }
                }
                (sid as u32, txns, attempts, aborted)
            }));
        }
        for h in handles {
            per_session.push(h.join().expect("elle client thread panicked"));
        }
    });

    per_session.sort_by_key(|(s, ..)| *s);
    let mut history = ListHistory::default();
    let mut report = ExecutionReport {
        wall_time: start.elapsed(),
        ..ExecutionReport::default()
    };
    for (_, txns, attempts, aborted) in per_session {
        report.committed += txns.len();
        report.attempts += attempts;
        report.aborted_attempts += aborted;
        history.txns.extend(txns);
    }
    (history, report)
}

/// Executes an Elle read-write-register workload (blind writes permitted)
/// against `db` (a fresh backend), returning the collected register history.
pub fn run_elle_register_workload(
    db: &dyn DbBackend,
    workload: &ElleWorkload,
    opts: &ClientOptions,
) -> (History, ExecutionReport) {
    let start = Instant::now();
    type SessionRecords = Vec<(Vec<Op>, TxnStatus, u64, u64)>;
    let mut per_session: Vec<(u32, SessionRecords, usize, usize)> = Vec::new();

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (sid, templates) in workload.sessions.iter().enumerate() {
            handles.push(scope.spawn(move || {
                let mut allocator = ValueAllocator::new(sid as u32);
                let mut records = Vec::new();
                let mut attempts = 0usize;
                let mut aborted = 0usize;
                for template in templates {
                    for _attempt in 0..=opts.max_retries {
                        attempts += 1;
                        let mut handle = db.begin();
                        let begin = handle.begin_ts();
                        let mut ops = Vec::with_capacity(template.ops.len());
                        let mut failed = None;
                        for op in &template.ops {
                            match op {
                                ElleOpTemplate::WriteRegister(key) => {
                                    let v = allocator.next();
                                    match handle.write_register(*key, v) {
                                        Ok(()) => ops.push(Op::Write {
                                            key: *key,
                                            value: v,
                                        }),
                                        Err(r) => {
                                            failed = Some(r);
                                            break;
                                        }
                                    }
                                }
                                ElleOpTemplate::ReadRegister(key) => {
                                    match handle.read_register(*key) {
                                        Ok(v) => ops.push(Op::Read {
                                            key: *key,
                                            value: v,
                                        }),
                                        Err(r) => {
                                            failed = Some(r);
                                            break;
                                        }
                                    }
                                }
                                ElleOpTemplate::Append(_) | ElleOpTemplate::ReadList(_) => {}
                            }
                        }
                        let result = match failed {
                            Some(reason) => {
                                let _ = handle.abort();
                                Err(reason)
                            }
                            None => handle.commit(),
                        };
                        match result {
                            Ok(info) => {
                                records.push((ops, TxnStatus::Committed, begin, info.commit_ts));
                                break;
                            }
                            Err(_) => {
                                aborted += 1;
                                if opts.record_aborted && !ops.is_empty() {
                                    records.push((ops, TxnStatus::Aborted, begin, db.now()));
                                }
                            }
                        }
                    }
                }
                (sid as u32, records, attempts, aborted)
            }));
        }
        for h in handles {
            per_session.push(h.join().expect("elle client thread panicked"));
        }
    });

    per_session.sort_by_key(|(s, ..)| *s);
    let mut builder = HistoryBuilder::new().with_init(workload.num_keys);
    let mut report = ExecutionReport {
        wall_time: start.elapsed(),
        ..ExecutionReport::default()
    };
    for (sid, records, attempts, aborted) in per_session {
        report.attempts += attempts;
        report.aborted_attempts += aborted;
        for (ops, status, begin, end) in records {
            if status == TxnStatus::Committed {
                report.committed += 1;
            }
            builder.push_timed(sid, ops, status, begin, end);
        }
    }
    (builder.build(), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_dbsim::{Database, DbConfig, IsolationMode};
    use mtc_workload::{
        generate_elle_workload, generate_mt_workload, Distribution, ElleWorkloadKind,
        ElleWorkloadSpec, MtWorkloadSpec,
    };

    fn small_mt_spec() -> MtWorkloadSpec {
        MtWorkloadSpec {
            sessions: 3,
            txns_per_session: 40,
            num_keys: 12,
            distribution: Distribution::Uniform,
            read_only_fraction: 0.2,
            two_key_fraction: 0.5,
            seed: 17,
        }
    }

    #[test]
    fn correct_serializable_database_passes_all_checkers() {
        let workload = generate_mt_workload(&small_mt_spec());
        let db = Database::new(DbConfig::correct(IsolationMode::Serializable, 12));
        let (history, report) = run_register_workload(&db, &workload, &ClientOptions::default());
        assert!(report.committed > 0);
        for checker in [
            Checker::MtcSer,
            Checker::MtcSi,
            Checker::MtcSser,
            Checker::CobraSer,
            Checker::PolySiSi,
        ] {
            let out = verify(checker, &history);
            assert!(
                !out.violated,
                "{} reported a spurious violation: {}",
                checker.label(),
                out.detail
            );
            assert!(out.memory_bytes > 0);
        }
    }

    #[test]
    fn snapshot_database_passes_si_and_may_fail_ser() {
        let workload = generate_mt_workload(&MtWorkloadSpec {
            num_keys: 4,
            txns_per_session: 60,
            ..small_mt_spec()
        });
        let db = Database::new(DbConfig::correct(IsolationMode::Snapshot, 4));
        let (history, _) = run_register_workload(&db, &workload, &ClientOptions::default());
        let si = verify(Checker::MtcSi, &history);
        assert!(
            !si.violated,
            "SI store must produce SI histories: {}",
            si.detail
        );
    }

    #[test]
    fn end_to_end_produces_consistent_totals() {
        let workload = generate_mt_workload(&small_mt_spec());
        let db = Database::new(DbConfig::correct(IsolationMode::Serializable, 12));
        let e2e = end_to_end(&db, &workload, &ClientOptions::default(), Checker::MtcSer);
        assert!(!e2e.violated);
        assert!(e2e.total() >= e2e.generation);
        assert!(e2e.committed > 0);
        assert!(e2e.abort_rate >= 0.0 && e2e.abort_rate <= 1.0);
    }

    #[test]
    fn elle_append_workload_executes_and_checks_clean() {
        use mtc_baselines::elle::{elle_check_list_append, ElleLevel};
        let spec = ElleWorkloadSpec {
            sessions: 3,
            txns_per_session: 30,
            max_txn_len: 4,
            num_keys: 5,
            ..ElleWorkloadSpec::default()
        };
        let workload = generate_elle_workload(&spec);
        let db = Database::new(DbConfig::correct(IsolationMode::Serializable, 0));
        let (history, report) = run_elle_append_workload(&db, &workload, &ClientOptions::default());
        assert!(report.committed > 0);
        assert!(!history.is_empty());
        let out = elle_check_list_append(&history, ElleLevel::Serializability);
        assert!(out.satisfied, "unexpected anomalies: {:?}", out.anomalies);
    }

    #[test]
    fn elle_register_workload_executes_and_checks_clean() {
        let spec = ElleWorkloadSpec {
            kind: ElleWorkloadKind::ReadWriteRegister,
            sessions: 3,
            txns_per_session: 25,
            max_txn_len: 4,
            num_keys: 6,
            ..ElleWorkloadSpec::default()
        };
        let workload = generate_elle_workload(&spec);
        let db = Database::new(DbConfig::correct(IsolationMode::Serializable, 6));
        let (history, report) =
            run_elle_register_workload(&db, &workload, &ClientOptions::default());
        assert!(report.committed > 0);
        let out = verify(Checker::ElleRwSer, &history);
        assert!(!out.violated, "{}", out.detail);
    }

    #[test]
    fn checker_labels_are_distinct() {
        use std::collections::HashSet;
        let labels: HashSet<&str> = [
            Checker::MtcSer,
            Checker::MtcSi,
            Checker::MtcSser,
            Checker::MtcSserNaive,
            Checker::MtcSerIncremental,
            Checker::MtcSiIncremental,
            Checker::MtcSserIncremental,
            Checker::MtcSerSharded,
            Checker::MtcSiSharded,
            Checker::MtcSserSharded,
            Checker::CobraSer,
            Checker::PolySiSi,
            Checker::ElleRwSer,
            Checker::ElleRwSi,
        ]
        .iter()
        .map(|c| c.label())
        .collect();
        assert_eq!(labels.len(), 14);
    }

    #[test]
    fn incremental_checkers_agree_with_batch_on_collected_histories() {
        let workload = generate_mt_workload(&small_mt_spec());
        let db = Database::new(DbConfig::correct(IsolationMode::Serializable, 12));
        let (history, _) = run_register_workload(&db, &workload, &ClientOptions::default());
        for (batch, streaming) in [
            (Checker::MtcSer, Checker::MtcSerIncremental),
            (Checker::MtcSi, Checker::MtcSiIncremental),
            (Checker::MtcSser, Checker::MtcSserIncremental),
            (Checker::MtcSer, Checker::MtcSerSharded),
            (Checker::MtcSi, Checker::MtcSiSharded),
            (Checker::MtcSser, Checker::MtcSserSharded),
        ] {
            let a = verify(batch, &history);
            let b = verify(streaming, &history);
            assert_eq!(
                a.violated,
                b.violated,
                "{} and {} disagree: {} vs {}",
                batch.label(),
                streaming.label(),
                a.detail,
                b.detail
            );
        }
    }

    #[test]
    fn streaming_end_to_end_reports_time_to_first_violation() {
        use mtc_dbsim::{FaultKind, FaultSpec};
        let workload = generate_mt_workload(&MtWorkloadSpec {
            num_keys: 4,
            txns_per_session: 120,
            ..small_mt_spec()
        });
        let config = DbConfig::correct(IsolationMode::Snapshot, 4)
            .with_latency(
                std::time::Duration::from_micros(200),
                std::time::Duration::from_micros(100),
            )
            .with_faults(
                vec![FaultSpec::new(FaultKind::SkipWriteValidation, 0.6)],
                11,
            );
        let out = end_to_end_streaming(
            &Database::new(config),
            &workload,
            &ClientOptions::default(),
            IsolationLevel::SnapshotIsolation,
            true,
        );
        assert!(
            out.violated,
            "fault injection must be caught: {}",
            out.detail
        );
        let first = out.first_violation_txn.expect("latched mid-run");
        assert!(first <= out.committed + workload.txn_count());
        assert!(out.time_to_first_violation.unwrap() <= out.wall_time);
    }

    #[test]
    fn streaming_end_to_end_sser_catches_commit_timestamp_skew() {
        use mtc_dbsim::{FaultKind, FaultSpec};
        let workload = generate_mt_workload(&MtWorkloadSpec {
            num_keys: 4,
            txns_per_session: 150,
            ..small_mt_spec()
        });
        let config = DbConfig::correct(IsolationMode::Serializable, 4)
            .with_latency(
                std::time::Duration::from_micros(200),
                std::time::Duration::from_micros(100),
            )
            .with_faults(
                vec![FaultSpec::new(FaultKind::CommitTimestampSkew, 0.4)],
                13,
            );
        let out = end_to_end_streaming(
            &Database::new(config),
            &workload,
            &ClientOptions::default(),
            IsolationLevel::StrictSerializability,
            true,
        );
        assert!(
            out.violated,
            "skewed commits must violate SSER: {}",
            out.detail
        );
        let ttfv = out.time_to_first_violation.expect("latched mid-run");
        assert!(ttfv <= out.wall_time);
    }

    #[test]
    fn streaming_end_to_end_clean_run_is_satisfied() {
        let workload = generate_mt_workload(&small_mt_spec());
        let db = Database::new(DbConfig::correct(IsolationMode::Serializable, 12));
        let out = end_to_end_streaming(
            &db,
            &workload,
            &ClientOptions::default(),
            IsolationLevel::Serializability,
            true,
        );
        assert!(!out.violated, "{}", out.detail);
        assert!(out.first_violation_txn.is_none());
        assert!(out.committed > 0);
    }
}
