//! # mtc-runner
//!
//! The end-to-end checking harness: generate a workload, execute it against
//! the simulated database (`mtc-dbsim`), collect the unified history, verify
//! it with MTC or one of the baseline checkers, and record wall-clock time,
//! memory estimates and abort rates.
//!
//! The [`experiments`] module contains one parameterized sweep per table and
//! figure of the paper's evaluation; the binaries in `mtc-bench` are thin
//! wrappers that run those sweeps at full scale and print the resulting
//! series.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod durable;
pub mod exec;
pub mod experiments;
pub mod report;

pub use durable::{
    record_streaming, replay_verify, resume_verification, RecordOptions, RecordOutcome,
    ResumeOutcome,
};
pub use exec::{
    end_to_end, end_to_end_streaming, run_elle_append_workload, run_elle_register_workload,
    run_register_workload, verify, Checker, EndToEnd, StreamingEndToEnd, VerifyOutcome,
};
pub use report::Table;
