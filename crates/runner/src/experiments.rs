//! One parameterized sweep per table and figure of the paper's evaluation.
//!
//! Every function returns [`Table`]s whose columns mirror the axes of the
//! corresponding plot, so the binaries in `mtc-bench` only have to print or
//! persist them. Each sweep takes a size parameter struct with two
//! constructors: `quick()` (seconds — used by the test suite and CI) and
//! `paper()` (the scale of the original evaluation, within what the
//! simulator and baselines can handle on a laptop).
//!
//! | Function | Paper artefact |
//! |---|---|
//! | [`table1_anomalies`] | Table I / Figure 5 |
//! | [`fig7_ser_verification`] | Figure 7 (a–d) |
//! | [`fig8_si_verification`] | Figure 8 (a–d) |
//! | [`fig9_sser_verification`] | Figure 9 (a–b) |
//! | [`fig10_end_to_end_ser`] | Figure 10 (a–f) |
//! | [`fig11_abort_rates`] | Figure 11 (a–b) |
//! | [`table2_bug_rediscovery`] | Table II / Figures 12 & 18 |
//! | [`fig13_effectiveness`] | Figure 13 (a–b) |
//! | [`fig14_elle_end_to_end`] | Figure 14 (a–b) |
//! | [`fig17_end_to_end_si`] | Figure 17 (a–f, Appendix D) |

use crate::exec::{
    end_to_end, run_elle_append_workload, run_elle_register_workload, run_register_workload,
    verify, Checker,
};
use crate::report::{mib, secs, Table};
use mtc_baselines::elle::{elle_check_list_append, ElleLevel};
use mtc_baselines::porcupine::porcupine_check_linearizability;
use mtc_core::{check_linearizability, check_si, check_sser, IsolationLevel};
use mtc_dbsim::{
    BackendSpec, ClientOptions, Database, DbBackend, DbConfig, FaultKind, FaultSpec, IsolationMode,
};
use mtc_history::anomalies::AnomalyKind;
use mtc_workload::{
    generate_elle_workload, generate_gt_workload, generate_lwt_history, generate_mt_workload,
    Distribution, ElleWorkloadKind, ElleWorkloadSpec, GtWorkloadSpec, LwtHistorySpec,
    MtWorkloadSpec,
};
use std::time::Instant;

// ───────────────────────────── Table I ──────────────────────────────────────

/// Table I: every catalogue anomaly, which checker rejects it, and whether
/// the observed verdicts match the expected matrix.
pub fn table1_anomalies() -> Table {
    let mut table = Table::new(
        "table1_anomalies",
        &[
            "anomaly",
            "intra",
            "violates_sser",
            "violates_ser",
            "violates_si",
            "matches_expected",
        ],
    );
    for kind in AnomalyKind::ALL {
        let h = kind.history();
        let sser = check_sser(&h).unwrap().is_violated();
        let ser = mtc_core::check_ser(&h).unwrap().is_violated();
        let si = check_si(&h).unwrap().is_violated();
        let expected = kind.expected();
        let matches = sser == expected.violates_sser
            && ser == expected.violates_ser
            && si == expected.violates_si;
        table.push_row(vec![
            kind.to_string(),
            kind.is_intra().to_string(),
            sser.to_string(),
            ser.to_string(),
            si.to_string(),
            matches.to_string(),
        ]);
    }
    table
}

// ───────────────────────────── Figure 7 / 8 ─────────────────────────────────

/// Size parameters for the verification-only comparisons (Figures 7 and 8).
#[derive(Clone, Copy, Debug)]
pub struct VerificationSweep {
    /// Base number of sessions.
    pub sessions: u32,
    /// Base number of transactions per session.
    pub txns_per_session: u32,
    /// Base number of objects.
    pub num_keys: u64,
    /// Values of the #objects sweep.
    pub object_points: &'static [u64],
    /// Values of the #sessions sweep.
    pub session_points: &'static [u32],
    /// Values of the total-#txns sweep.
    pub txn_points: &'static [u32],
}

impl VerificationSweep {
    /// A sub-second configuration for tests.
    pub fn quick() -> Self {
        VerificationSweep {
            sessions: 4,
            txns_per_session: 50,
            num_keys: 20,
            object_points: &[5, 20, 100],
            session_points: &[2, 4, 8],
            txn_points: &[50, 100, 200],
        }
    }

    /// The scale used for the shipped figures.
    pub fn paper() -> Self {
        VerificationSweep {
            sessions: 10,
            txns_per_session: 100,
            num_keys: 1000,
            object_points: &[100, 1000, 10_000, 100_000],
            session_points: &[5, 10, 20],
            txn_points: &[100, 500, 1000, 2000],
        }
    }
}

fn generate_valid_history(spec: &MtWorkloadSpec, isolation: IsolationMode) -> mtc_history::History {
    let workload = generate_mt_workload(spec);
    let db = Database::new(DbConfig::correct(isolation, spec.num_keys));
    let (history, _) = run_register_workload(&db, &workload, &ClientOptions::default());
    history
}

fn verification_sweep(
    sweep: &VerificationSweep,
    isolation: IsolationMode,
    mtc: Checker,
    baseline: Checker,
    prefix: &str,
) -> Vec<Table> {
    let base_spec = MtWorkloadSpec {
        sessions: sweep.sessions,
        txns_per_session: sweep.txns_per_session,
        num_keys: sweep.num_keys,
        distribution: Distribution::Uniform,
        read_only_fraction: 0.2,
        two_key_fraction: 0.5,
        seed: 0xF16,
    };
    let mtc_label = format!("{}_time_s", mtc.label());
    let base_label = format!("{}_time_s", baseline.label());

    // (a) object-access distribution.
    let mut by_dist = Table::new(
        format!("{prefix}a_by_distribution"),
        &["distribution", &mtc_label, &base_label],
    );
    for dist in Distribution::paper_set() {
        let spec = MtWorkloadSpec {
            distribution: dist,
            ..base_spec
        };
        let history = generate_valid_history(&spec, isolation);
        let m = verify(mtc, &history);
        let b = verify(baseline, &history);
        by_dist.push_row(vec![
            dist.label().to_string(),
            secs(m.duration),
            secs(b.duration),
        ]);
    }

    // (b) number of objects.
    let mut by_objects = Table::new(
        format!("{prefix}b_by_objects"),
        &["objects", &mtc_label, &base_label],
    );
    for &objects in sweep.object_points {
        let spec = MtWorkloadSpec {
            num_keys: objects,
            ..base_spec
        };
        let history = generate_valid_history(&spec, isolation);
        let m = verify(mtc, &history);
        let b = verify(baseline, &history);
        by_objects.push_row(vec![
            objects.to_string(),
            secs(m.duration),
            secs(b.duration),
        ]);
    }

    // (c) number of sessions.
    let mut by_sessions = Table::new(
        format!("{prefix}c_by_sessions"),
        &["sessions", &mtc_label, &base_label],
    );
    for &sessions in sweep.session_points {
        let spec = MtWorkloadSpec {
            sessions,
            ..base_spec
        };
        let history = generate_valid_history(&spec, isolation);
        let m = verify(mtc, &history);
        let b = verify(baseline, &history);
        by_sessions.push_row(vec![
            sessions.to_string(),
            secs(m.duration),
            secs(b.duration),
        ]);
    }

    // (d) number of transactions.
    let mut by_txns = Table::new(
        format!("{prefix}d_by_txns"),
        &["txns", &mtc_label, &base_label],
    );
    for &txns in sweep.txn_points {
        let spec = MtWorkloadSpec {
            txns_per_session: txns / base_spec.sessions.max(1),
            ..base_spec
        };
        let history = generate_valid_history(&spec, isolation);
        let m = verify(mtc, &history);
        let b = verify(baseline, &history);
        by_txns.push_row(vec![txns.to_string(), secs(m.duration), secs(b.duration)]);
    }

    vec![by_dist, by_objects, by_sessions, by_txns]
}

/// Figure 7: SER verification time, MTC-SER vs Cobra, across distribution,
/// #objects, #sessions and #txns.
pub fn fig7_ser_verification(sweep: &VerificationSweep) -> Vec<Table> {
    verification_sweep(
        sweep,
        IsolationMode::Serializable,
        Checker::MtcSer,
        Checker::CobraSer,
        "fig7",
    )
}

/// Figure 8: SI verification time, MTC-SI vs PolySI, across the same sweeps.
pub fn fig8_si_verification(sweep: &VerificationSweep) -> Vec<Table> {
    verification_sweep(
        sweep,
        IsolationMode::Snapshot,
        Checker::MtcSi,
        Checker::PolySiSi,
        "fig8",
    )
}

// ───────────────────────────── Figure 9 ─────────────────────────────────────

/// Size parameters for the SSER/LIN comparison.
#[derive(Clone, Copy, Debug)]
pub struct SserSweep {
    /// Number of sessions.
    pub sessions: u32,
    /// Base transactions per session.
    pub txns_per_session: u32,
    /// Values of the concurrent-sessions sweep (fractions).
    pub concurrency_points: &'static [f64],
    /// Values of the #txns/session sweep.
    pub txn_points: &'static [u32],
}

impl SserSweep {
    /// Sub-second configuration.
    pub fn quick() -> Self {
        SserSweep {
            sessions: 6,
            txns_per_session: 10,
            concurrency_points: &[0.0, 0.5, 1.0],
            txn_points: &[5, 10],
        }
    }

    /// Figure-scale configuration.
    pub fn paper() -> Self {
        SserSweep {
            sessions: 16,
            txns_per_session: 12,
            concurrency_points: &[0.25, 0.5, 0.75, 1.0],
            txn_points: &[5, 8, 10, 12],
        }
    }
}

/// Figure 9: SSER verification on synthetic lightweight-transaction
/// histories, MTC-SSER (`VL-LWT`) vs Porcupine.
pub fn fig9_sser_verification(sweep: &SserSweep) -> Vec<Table> {
    let mut by_concurrency = Table::new(
        "fig9a_by_concurrent_sessions",
        &["concurrent_fraction", "MTC-SSER_time_s", "Porcupine_time_s"],
    );
    for &fraction in sweep.concurrency_points {
        let spec = LwtHistorySpec {
            sessions: sweep.sessions,
            txns_per_session: sweep.txns_per_session,
            num_keys: 1,
            concurrent_fraction: fraction,
            inject_violation: false,
            seed: 0xF19,
        };
        let ops = generate_lwt_history(&spec);
        let start = Instant::now();
        let vl = check_linearizability(&ops).unwrap();
        let vl_time = start.elapsed();
        let start = Instant::now();
        let porc = porcupine_check_linearizability(&ops);
        let porc_time = start.elapsed();
        assert_eq!(vl.is_satisfied(), porc.linearizable || porc.timed_out);
        by_concurrency.push_row(vec![
            format!("{fraction:.2}"),
            secs(vl_time),
            secs(porc_time),
        ]);
    }

    let mut by_txns = Table::new(
        "fig9b_by_txns_per_session",
        &["txns_per_session", "MTC-SSER_time_s", "Porcupine_time_s"],
    );
    for &txns in sweep.txn_points {
        let spec = LwtHistorySpec {
            sessions: sweep.sessions,
            txns_per_session: txns,
            num_keys: 1,
            concurrent_fraction: 1.0,
            inject_violation: false,
            seed: 0xF19,
        };
        let ops = generate_lwt_history(&spec);
        let start = Instant::now();
        let _ = check_linearizability(&ops).unwrap();
        let vl_time = start.elapsed();
        let start = Instant::now();
        let _ = porcupine_check_linearizability(&ops);
        let porc_time = start.elapsed();
        by_txns.push_row(vec![txns.to_string(), secs(vl_time), secs(porc_time)]);
    }
    vec![by_concurrency, by_txns]
}

// ───────────────────────────── Figures 10 / 17 ──────────────────────────────

/// Size parameters for the end-to-end comparisons.
#[derive(Clone, Copy, Debug)]
pub struct EndToEndSweep {
    /// Sessions used throughout.
    pub sessions: u32,
    /// Values of the total-#txns sweep.
    pub txn_points: &'static [u32],
    /// Values of the #ops/txn sweep (GT side; MT side is fixed at ≤ 4).
    pub ops_per_txn_points: &'static [u32],
    /// Values of the #objects sweep.
    pub object_points: &'static [u64],
    /// Baseline #txns, #ops/txn and #objects when not being swept.
    pub base_txns: u32,
    /// Baseline operations per transaction for the GT workload.
    pub base_ops_per_txn: u32,
    /// Baseline number of objects.
    pub base_objects: u64,
}

impl EndToEndSweep {
    /// Sub-second configuration.
    pub fn quick() -> Self {
        EndToEndSweep {
            sessions: 4,
            txn_points: &[40, 80],
            ops_per_txn_points: &[4, 8],
            object_points: &[10, 50],
            base_txns: 60,
            base_ops_per_txn: 8,
            base_objects: 20,
        }
    }

    /// Figure-scale configuration.
    pub fn paper() -> Self {
        EndToEndSweep {
            sessions: 10,
            txn_points: &[100, 500, 1000, 2000, 3000],
            ops_per_txn_points: &[4, 12, 16, 20, 24],
            object_points: &[100, 200, 500, 1000, 5000],
            base_txns: 1000,
            base_ops_per_txn: 16,
            base_objects: 500,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn end_to_end_sweep(
    sweep: &EndToEndSweep,
    isolation: IsolationMode,
    mtc_checker: Checker,
    baseline_checker: Checker,
    prefix: &str,
) -> Vec<Table> {
    let columns = [
        "x",
        "MTC_gen_s",
        "MTC_verify_s",
        "MTC_mem_MiB",
        "baseline_gen_s",
        "baseline_verify_s",
        "baseline_mem_MiB",
    ];
    let run_point = |txns: u32, ops_per_txn: u32, objects: u64| {
        let mt_spec = MtWorkloadSpec {
            sessions: sweep.sessions,
            txns_per_session: (txns / sweep.sessions).max(1),
            num_keys: objects,
            distribution: Distribution::Uniform,
            read_only_fraction: 0.2,
            two_key_fraction: 0.5,
            seed: 0xE2E,
        };
        let gt_spec = GtWorkloadSpec {
            sessions: sweep.sessions,
            txns_per_session: (txns / sweep.sessions).max(1),
            ops_per_txn,
            num_keys: objects,
            distribution: Distribution::Uniform,
            read_only_fraction: 0.2,
            write_only_fraction: 0.4,
            seed: 0xE2E,
        };
        let config = DbConfig::correct(isolation, objects);
        let mt = end_to_end(
            &Database::new(config.clone()),
            &generate_mt_workload(&mt_spec),
            &ClientOptions::default(),
            mtc_checker,
        );
        let gt = end_to_end(
            &Database::new(config),
            &generate_gt_workload(&gt_spec),
            &ClientOptions::default(),
            baseline_checker,
        );
        (mt, gt)
    };
    let row = |x: String, mt: &crate::exec::EndToEnd, gt: &crate::exec::EndToEnd| {
        vec![
            x,
            secs(mt.generation),
            secs(mt.verification),
            mib(mt.memory_bytes),
            secs(gt.generation),
            secs(gt.verification),
            mib(gt.memory_bytes),
        ]
    };

    let mut by_txns = Table::new(format!("{prefix}_by_txns"), &columns);
    for &txns in sweep.txn_points {
        let (mt, gt) = run_point(txns, sweep.base_ops_per_txn, sweep.base_objects);
        by_txns.push_row(row(txns.to_string(), &mt, &gt));
    }
    let mut by_ops = Table::new(format!("{prefix}_by_ops_per_txn"), &columns);
    for &ops in sweep.ops_per_txn_points {
        let (mt, gt) = run_point(sweep.base_txns, ops, sweep.base_objects);
        by_ops.push_row(row(ops.to_string(), &mt, &gt));
    }
    let mut by_objects = Table::new(format!("{prefix}_by_objects"), &columns);
    for &objects in sweep.object_points {
        let (mt, gt) = run_point(sweep.base_txns, sweep.base_ops_per_txn, objects);
        by_objects.push_row(row(objects.to_string(), &mt, &gt));
    }
    vec![by_txns, by_ops, by_objects]
}

/// Figure 10: end-to-end SER checking (time and memory), MTC with MT
/// workloads vs Cobra with GT workloads.
pub fn fig10_end_to_end_ser(sweep: &EndToEndSweep) -> Vec<Table> {
    end_to_end_sweep(
        sweep,
        IsolationMode::Serializable,
        Checker::MtcSer,
        Checker::CobraSer,
        "fig10",
    )
}

/// Figure 17 (Appendix D): end-to-end SI checking, MTC vs PolySI.
pub fn fig17_end_to_end_si(sweep: &EndToEndSweep) -> Vec<Table> {
    end_to_end_sweep(
        sweep,
        IsolationMode::Snapshot,
        Checker::MtcSi,
        Checker::PolySiSi,
        "fig17",
    )
}

// ───────────────────────────── Figure 11 ────────────────────────────────────

/// Size parameters for the abort-rate comparison.
#[derive(Clone, Copy, Debug)]
pub struct AbortRateSweep {
    /// Values of the #sessions sweep.
    pub session_points: &'static [u32],
    /// Values of the skewness sweep (#txns / #objects).
    pub skew_points: &'static [u32],
    /// Transactions per session.
    pub txns_per_session: u32,
    /// Operations per GT transaction (the paper uses 20).
    pub gt_ops_per_txn: u32,
    /// Objects used in the #sessions sweep.
    pub num_keys: u64,
}

impl AbortRateSweep {
    /// Sub-second configuration.
    pub fn quick() -> Self {
        AbortRateSweep {
            session_points: &[2, 4],
            skew_points: &[2, 10],
            txns_per_session: 30,
            gt_ops_per_txn: 8,
            num_keys: 40,
        }
    }

    /// Figure-scale configuration.
    pub fn paper() -> Self {
        AbortRateSweep {
            session_points: &[5, 10, 15, 20],
            skew_points: &[1, 5, 10, 20],
            txns_per_session: 100,
            gt_ops_per_txn: 20,
            num_keys: 200,
        }
    }
}

/// Figure 11: abort rates of GT vs MT workloads under SER and SI, as
/// concurrency (#sessions) and skewness (#txns/#objects) grow.
pub fn fig11_abort_rates(sweep: &AbortRateSweep) -> Vec<Table> {
    let run = |isolation: IsolationMode, sessions: u32, num_keys: u64, gt: bool| -> f64 {
        let config = DbConfig::correct(isolation, num_keys);
        let opts = ClientOptions {
            max_retries: 0,
            record_aborted: true,
        };
        let report = if gt {
            let spec = GtWorkloadSpec {
                sessions,
                txns_per_session: sweep.txns_per_session,
                ops_per_txn: sweep.gt_ops_per_txn,
                num_keys,
                distribution: Distribution::Uniform,
                read_only_fraction: 0.2,
                write_only_fraction: 0.4,
                seed: 0xF11,
            };
            run_register_workload(&Database::new(config), &generate_gt_workload(&spec), &opts).1
        } else {
            let spec = MtWorkloadSpec {
                sessions,
                txns_per_session: sweep.txns_per_session,
                num_keys,
                distribution: Distribution::Uniform,
                read_only_fraction: 0.2,
                two_key_fraction: 0.5,
                seed: 0xF11,
            };
            run_register_workload(&Database::new(config), &generate_mt_workload(&spec), &opts).1
        };
        report.abort_rate()
    };

    let mut by_sessions = Table::new(
        "fig11a_abort_rate_by_sessions",
        &["sessions", "GT-SER", "GT-SI", "MT-SER", "MT-SI"],
    );
    for &sessions in sweep.session_points {
        by_sessions.push_row(vec![
            sessions.to_string(),
            format!(
                "{:.3}",
                run(IsolationMode::Serializable, sessions, sweep.num_keys, true)
            ),
            format!(
                "{:.3}",
                run(IsolationMode::Snapshot, sessions, sweep.num_keys, true)
            ),
            format!(
                "{:.3}",
                run(IsolationMode::Serializable, sessions, sweep.num_keys, false)
            ),
            format!(
                "{:.3}",
                run(IsolationMode::Snapshot, sessions, sweep.num_keys, false)
            ),
        ]);
    }

    let mut by_skew = Table::new(
        "fig11b_abort_rate_by_skewness",
        &["txns_per_object", "GT-SER", "GT-SI", "MT-SER", "MT-SI"],
    );
    let sessions = *sweep.session_points.last().unwrap_or(&4);
    for &skew in sweep.skew_points {
        // skewness = #txns / #objects, so #objects = #txns / skew.
        let total_txns = (sessions * sweep.txns_per_session) as u64;
        let num_keys = (total_txns / skew as u64).max(1);
        by_skew.push_row(vec![
            skew.to_string(),
            format!(
                "{:.3}",
                run(IsolationMode::Serializable, sessions, num_keys, true)
            ),
            format!(
                "{:.3}",
                run(IsolationMode::Snapshot, sessions, num_keys, true)
            ),
            format!(
                "{:.3}",
                run(IsolationMode::Serializable, sessions, num_keys, false)
            ),
            format!(
                "{:.3}",
                run(IsolationMode::Snapshot, sessions, num_keys, false)
            ),
        ]);
    }
    vec![by_sessions, by_skew]
}

// ───────────────────────────── Backend matrix ───────────────────────────────

/// Size parameters for the cross-backend matrix.
#[derive(Clone, Copy, Debug)]
pub struct BackendSweep {
    /// Sessions issuing transactions.
    pub sessions: u32,
    /// Transactions per session.
    pub txns_per_session: u32,
    /// Number of objects (small, so anomalies of the weak engines have a
    /// chance to materialize organically).
    pub num_keys: u64,
}

impl BackendSweep {
    /// Sub-second configuration.
    pub fn quick() -> Self {
        BackendSweep {
            sessions: 4,
            txns_per_session: 50,
            num_keys: 8,
        }
    }

    /// Figure-scale configuration.
    pub fn paper() -> Self {
        BackendSweep {
            sessions: 8,
            txns_per_session: 400,
            num_keys: 16,
        }
    }
}

/// The backend dimension of the experiment matrix: run the same MT workload
/// against every in-tree backend ([`BackendSpec::fleet`]) — the OCC
/// simulator at three modes, the strict-2PL engine and both weak MVCC
/// levels, all **without any fault injection** — and report, per backend,
/// what it promises, what each checker decided, and whether the streaming
/// verdicts agree with the batch ones.
///
/// Backends that promise a level must never be flagged at it; the weak
/// engines promise nothing, so any flag against them is an *organic*
/// anomaly produced by their concurrency control.
pub fn backend_matrix(sweep: &BackendSweep) -> Table {
    let mut table = Table::new(
        "backend_matrix",
        &[
            "backend",
            "promises",
            "committed",
            "abort_rate",
            "SI",
            "SER",
            "SSER",
            "stream_agrees",
            "gen_s",
            "verify_s",
        ],
    );
    let spec = MtWorkloadSpec {
        sessions: sweep.sessions,
        txns_per_session: sweep.txns_per_session,
        num_keys: sweep.num_keys,
        distribution: Distribution::Uniform,
        read_only_fraction: 0.2,
        two_key_fraction: 0.5,
        seed: 0xBACD,
    };
    let workload = generate_mt_workload(&spec);
    let levels = [
        (IsolationLevel::SnapshotIsolation, Checker::MtcSi),
        (IsolationLevel::Serializability, Checker::MtcSer),
        (IsolationLevel::StrictSerializability, Checker::MtcSser),
    ];
    for backend_spec in BackendSpec::fleet(sweep.num_keys) {
        let db = backend_spec.build();
        // Zero-latency engines barely overlap under free-running threads, so
        // non-blocking backends run under the deterministic op-by-op
        // interleaved driver — real concurrency on a reproducible schedule,
        // which is what lets the weak engines' organic anomalies show up in
        // the matrix. Blocking (locking) engines keep one thread per
        // session.
        let (history, report) = if backend_spec.blocking() {
            run_register_workload(db.as_ref(), &workload, &ClientOptions::default())
        } else {
            mtc_dbsim::ExecutionOptions::interleaved(0xBACD).run(db.as_ref(), &workload)
        };
        let mut verdicts = Vec::new();
        let mut promises = Vec::new();
        let mut stream_agrees = true;
        let mut verify_s = 0.0f64;
        for (level, checker) in levels {
            let batch = verify(checker, &history);
            let streaming = mtc_core::check_streaming(level, &history)
                .expect("collected histories are inside the checkers' domain");
            stream_agrees &= batch.violated == streaming.is_violated();
            verify_s += batch.duration.as_secs_f64();
            if db.promises(level) {
                promises.push(level.to_string());
                assert!(
                    !batch.violated,
                    "{} violated its promised level {level}: {}",
                    backend_spec.label(),
                    batch.detail
                );
            }
            verdicts.push(if batch.violated { "violated" } else { "ok" });
        }
        table.push_row(vec![
            backend_spec.label().to_string(),
            if promises.is_empty() {
                "-".to_string()
            } else {
                promises.join("+")
            },
            report.committed.to_string(),
            format!("{:.3}", report.abort_rate()),
            verdicts[0].to_string(),
            verdicts[1].to_string(),
            verdicts[2].to_string(),
            stream_agrees.to_string(),
            secs(report.wall_time),
            format!("{verify_s:.4}"),
        ]);
    }

    // Remote rows: representative engines behind the loopback TCP server,
    // driven by the async ingest driver so many sessions multiplex over a
    // small worker pool. A promising engine must keep its promises *through
    // the wire*, and a weak engine's organic anomalies must survive the
    // round trip.
    for engine in ["sim-ser", "weak-rc"] {
        let spec = mtc_net::spec_for_label(engine, sweep.num_keys).expect("fleet label resolves");
        let server = mtc_net::NetServer::spawn(spec).expect("loopback server spawns");
        let db = mtc_net::NetBackend::connect(server.addr()).expect("loopback connect");
        let (history, report) = mtc_dbsim::ExecutionOptions::async_workers(2).run(&db, &workload);
        let mut verdicts = Vec::new();
        let mut promises = Vec::new();
        let mut stream_agrees = true;
        let mut verify_s = 0.0f64;
        for (level, checker) in levels {
            let batch = verify(checker, &history);
            let streaming = mtc_core::check_streaming(level, &history)
                .expect("collected histories are inside the checkers' domain");
            stream_agrees &= batch.violated == streaming.is_violated();
            verify_s += batch.duration.as_secs_f64();
            if db.promises(level) {
                promises.push(level.to_string());
                assert!(
                    !batch.violated,
                    "{} violated its promised level {level}: {}",
                    db.label(),
                    batch.detail
                );
            }
            verdicts.push(if batch.violated { "violated" } else { "ok" });
        }
        table.push_row(vec![
            db.label().to_string(),
            if promises.is_empty() {
                "-".to_string()
            } else {
                promises.join("+")
            },
            report.committed.to_string(),
            format!("{:.3}", report.abort_rate()),
            verdicts[0].to_string(),
            verdicts[1].to_string(),
            verdicts[2].to_string(),
            stream_agrees.to_string(),
            secs(report.wall_time),
            format!("{verify_s:.4}"),
        ]);
        drop(db);
        let _ = server.shutdown();
    }
    table
}

// ───────────────────────────── Table II ─────────────────────────────────────

/// One rediscovered-bug scenario of Table II.
#[derive(Clone, Copy, Debug)]
pub struct BugScenario {
    /// Human-readable database the scenario stands in for.
    pub database: &'static str,
    /// Claimed isolation level (what we check against).
    pub level: IsolationLevel,
    /// The anomaly the injected fault produces.
    pub anomaly: &'static str,
    /// The injected fault.
    pub fault: FaultKind,
    /// The isolation mode the faulty engine otherwise runs at.
    pub engine: IsolationMode,
    /// Per-transaction fault probability.
    pub probability: f64,
    /// Key-space override. The SER-level scenarios need write-skew-shaped
    /// interleavings, which require two concurrent transactions to pick the
    /// same pair of objects — a very small key space makes the rediscovery
    /// reliable within a short history (the paper's runs are 30 minutes
    /// long; ours are a few hundred transactions).
    pub keys: Option<u64>,
}

/// The six Table II scenarios mapped onto simulator faults.
pub fn table2_scenarios() -> Vec<BugScenario> {
    vec![
        BugScenario {
            database: "MariaDB-Galera-10.7.3 (sim)",
            level: IsolationLevel::SnapshotIsolation,
            anomaly: "LostUpdate",
            fault: FaultKind::SkipWriteValidation,
            engine: IsolationMode::Snapshot,
            probability: 0.05,
            keys: None,
        },
        BugScenario {
            database: "MongoDB-4.2.6 (sim)",
            level: IsolationLevel::SnapshotIsolation,
            anomaly: "AbortedRead",
            fault: FaultKind::DirtyRelease,
            engine: IsolationMode::Snapshot,
            probability: 0.02,
            keys: None,
        },
        BugScenario {
            database: "Dgraph-1.1.1 (sim)",
            level: IsolationLevel::SnapshotIsolation,
            anomaly: "CausalityViolation",
            fault: FaultKind::StaleSnapshot,
            engine: IsolationMode::Snapshot,
            probability: 0.05,
            keys: None,
        },
        BugScenario {
            database: "PostgreSQL-12.3 (sim)",
            level: IsolationLevel::Serializability,
            anomaly: "WriteSkew",
            fault: FaultKind::SkipReadValidation,
            engine: IsolationMode::Serializable,
            probability: 0.1,
            keys: Some(2),
        },
        BugScenario {
            database: "PostgreSQL-11.8 (sim)",
            level: IsolationLevel::Serializability,
            anomaly: "LongFork",
            fault: FaultKind::SkipReadValidation,
            engine: IsolationMode::Serializable,
            probability: 0.05,
            keys: Some(3),
        },
        BugScenario {
            database: "Cassandra-2.0.1 (sim)",
            level: IsolationLevel::StrictSerializability,
            anomaly: "AbortedRead",
            fault: FaultKind::DirtyRelease,
            engine: IsolationMode::StrictSerializable,
            probability: 0.02,
            keys: None,
        },
    ]
}

/// Size parameters for the bug-rediscovery experiment.
#[derive(Clone, Copy, Debug)]
pub struct BugSweep {
    /// Sessions issuing transactions.
    pub sessions: u32,
    /// Transactions per session.
    pub txns_per_session: u32,
    /// Objects (small, to force contention — the paper uses 10).
    pub num_keys: u64,
    /// Multiplier applied to each scenario's fault probability (quick runs
    /// use a higher density so the bug appears in a much shorter history).
    pub fault_boost: f64,
    /// Per-operation latency of the simulated database, in microseconds
    /// (non-zero so that transactions genuinely overlap).
    pub op_latency_us: u64,
}

impl BugSweep {
    /// Sub-second configuration.
    pub fn quick() -> Self {
        BugSweep {
            sessions: 4,
            txns_per_session: 150,
            num_keys: 8,
            fault_boost: 10.0,
            op_latency_us: 150,
        }
    }

    /// Figure-scale configuration.
    pub fn paper() -> Self {
        BugSweep {
            sessions: 10,
            txns_per_session: 300,
            num_keys: 10,
            fault_boost: 1.0,
            op_latency_us: 200,
        }
    }
}

/// Table II: run every bug scenario against the fault-injected simulator and
/// report whether MTC detects a violation, where the counterexample sits in
/// the history, and how long generation and verification took.
pub fn table2_bug_rediscovery(sweep: &BugSweep) -> Table {
    let mut table = Table::new(
        "table2_bug_rediscovery",
        &[
            "database",
            "level",
            "anomaly",
            "detected",
            "ce_position",
            "hist_gen_s",
            "hist_verify_s",
        ],
    );
    for scenario in table2_scenarios() {
        let num_keys = scenario.keys.unwrap_or(sweep.num_keys);
        let spec = MtWorkloadSpec {
            sessions: sweep.sessions,
            txns_per_session: sweep.txns_per_session,
            num_keys,
            distribution: Distribution::Zipf { theta: 1.0 },
            read_only_fraction: 0.2,
            two_key_fraction: 0.8,
            seed: 0x7AB2,
        };
        let config = DbConfig::correct(scenario.engine, num_keys)
            .with_latency(
                std::time::Duration::from_micros(sweep.op_latency_us),
                std::time::Duration::from_micros(sweep.op_latency_us / 2),
            )
            .with_faults(
                vec![FaultSpec::new(
                    scenario.fault,
                    (scenario.probability * sweep.fault_boost).min(1.0),
                )],
                0x7AB2,
            );
        let workload = generate_mt_workload(&spec);
        let (history, report) =
            run_register_workload(&Database::new(config), &workload, &ClientOptions::default());
        let checker = match scenario.level {
            IsolationLevel::Serializability => Checker::MtcSer,
            IsolationLevel::SnapshotIsolation => Checker::MtcSi,
            IsolationLevel::StrictSerializability => Checker::MtcSser,
        };
        let outcome = verify(checker, &history);
        let ce_position = counterexample_position(&outcome.detail);
        table.push_row(vec![
            scenario.database.to_string(),
            scenario.level.to_string(),
            scenario.anomaly.to_string(),
            outcome.violated.to_string(),
            ce_position
                .map(|p| p.to_string())
                .unwrap_or_else(|| "-".to_string()),
            secs(report.wall_time),
            secs(outcome.duration),
        ]);
    }
    table
}

/// Extracts the smallest transaction id mentioned in a counterexample string
/// (`"T<number>"`), which mirrors the "CE position" column of Table II.
fn counterexample_position(detail: &str) -> Option<u32> {
    let mut best: Option<u32> = None;
    let bytes = detail.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'T' {
            let mut j = i + 1;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                j += 1;
            }
            if j > i + 1 {
                if let Ok(v) = detail[i + 1..j].parse::<u32>() {
                    best = Some(best.map_or(v, |b: u32| b.min(v)));
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
    best
}

// ───────────────────────────── Figures 13 / 14 ──────────────────────────────

/// Size parameters for the effectiveness comparison against Elle.
#[derive(Clone, Copy, Debug)]
pub struct EffectivenessSweep {
    /// Trials per configuration (the paper runs repeated 30-minute sessions;
    /// we count bug-detecting trials out of `trials`).
    pub trials: u32,
    /// Sessions per trial.
    pub sessions: u32,
    /// Transactions per session per trial.
    pub txns_per_session: u32,
    /// Number of objects (the paper uses 10).
    pub num_keys: u64,
    /// The max-transaction-length points (x-axis of Figure 13).
    pub txn_len_points: &'static [u32],
    /// Per-transaction fault probability of the buggy engines.
    pub fault_probability: f64,
}

impl EffectivenessSweep {
    /// Sub-second configuration.
    pub fn quick() -> Self {
        EffectivenessSweep {
            trials: 2,
            sessions: 3,
            txns_per_session: 40,
            num_keys: 6,
            txn_len_points: &[2, 4],
            fault_probability: 0.2,
        }
    }

    /// Figure-scale configuration.
    pub fn paper() -> Self {
        EffectivenessSweep {
            trials: 10,
            sessions: 10,
            txns_per_session: 300,
            num_keys: 10,
            txn_len_points: &[2, 4, 6, 8, 10, 12],
            fault_probability: 0.02,
        }
    }
}

/// The simulated buggy databases of the effectiveness experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuggyTarget {
    /// "PostgreSQL-like": claims SER, occasionally skips read validation.
    PostgresSer,
    /// "MongoDB-like": claims SI, occasionally releases dirty writes.
    MongoSi,
}

impl BuggyTarget {
    fn config(self, num_keys: u64, probability: f64, seed: u64) -> DbConfig {
        let latency = std::time::Duration::from_micros(100);
        match self {
            BuggyTarget::PostgresSer => DbConfig::correct(IsolationMode::Serializable, num_keys)
                .with_latency(latency, latency / 2)
                .with_faults(
                    vec![FaultSpec::new(FaultKind::SkipReadValidation, probability)],
                    seed,
                ),
            BuggyTarget::MongoSi => DbConfig::correct(IsolationMode::Snapshot, num_keys)
                .with_latency(latency, latency / 2)
                .with_faults(
                    vec![FaultSpec::new(FaultKind::DirtyRelease, probability)],
                    seed,
                ),
        }
    }

    fn level(self) -> ElleLevel {
        match self {
            BuggyTarget::PostgresSer => ElleLevel::Serializability,
            BuggyTarget::MongoSi => ElleLevel::SnapshotIsolation,
        }
    }

    fn label(self) -> &'static str {
        match self {
            BuggyTarget::PostgresSer => "pg",
            BuggyTarget::MongoSi => "mongo",
        }
    }
}

struct EffectivenessPoint {
    bugs_mini: u32,
    bugs_append: u32,
    bugs_wr: u32,
    gen_mini: f64,
    gen_append: f64,
    gen_wr: f64,
    verify_mini: f64,
    verify_append: f64,
    verify_wr: f64,
}

fn effectiveness_point(
    target: BuggyTarget,
    sweep: &EffectivenessSweep,
    max_txn_len: u32,
) -> EffectivenessPoint {
    let mut point = EffectivenessPoint {
        bugs_mini: 0,
        bugs_append: 0,
        bugs_wr: 0,
        gen_mini: 0.0,
        gen_append: 0.0,
        gen_wr: 0.0,
        verify_mini: 0.0,
        verify_append: 0.0,
        verify_wr: 0.0,
    };
    let opts = ClientOptions::default();
    for trial in 0..sweep.trials {
        let seed = 0xEFFu64 + trial as u64;
        let config = target.config(sweep.num_keys, sweep.fault_probability, seed);

        // MTC with MT workloads (transaction length ≤ 4 regardless of x).
        let mt_spec = MtWorkloadSpec {
            sessions: sweep.sessions,
            txns_per_session: sweep.txns_per_session,
            num_keys: sweep.num_keys,
            distribution: Distribution::Exponential { lambda: 10.0 },
            read_only_fraction: 0.2,
            two_key_fraction: 0.5,
            seed,
        };
        let (history, report) = run_register_workload(
            &Database::new(config.clone()),
            &generate_mt_workload(&mt_spec),
            &opts,
        );
        let checker = match target {
            BuggyTarget::PostgresSer => Checker::MtcSer,
            BuggyTarget::MongoSi => Checker::MtcSi,
        };
        let outcome = verify(checker, &history);
        point.gen_mini += report.wall_time.as_secs_f64();
        point.verify_mini += outcome.duration.as_secs_f64();
        point.bugs_mini += u32::from(outcome.violated);

        // Elle with list-append workloads of the given max length.
        let append_spec = ElleWorkloadSpec {
            kind: ElleWorkloadKind::ListAppend,
            sessions: sweep.sessions,
            txns_per_session: sweep.txns_per_session,
            max_txn_len,
            num_keys: sweep.num_keys,
            distribution: Distribution::Exponential { lambda: 10.0 },
            seed,
        };
        let (list_history, report) = run_elle_append_workload(
            &Database::new(config.clone()),
            &generate_elle_workload(&append_spec),
            &opts,
        );
        let start = Instant::now();
        let out = elle_check_list_append(&list_history, target.level());
        point.gen_append += report.wall_time.as_secs_f64();
        point.verify_append += start.elapsed().as_secs_f64();
        point.bugs_append += u32::from(!out.satisfied);

        // Elle with read-write-register workloads of the given max length.
        let wr_spec = ElleWorkloadSpec {
            kind: ElleWorkloadKind::ReadWriteRegister,
            ..append_spec
        };
        let (wr_history, report) = run_elle_register_workload(
            &Database::new(config),
            &generate_elle_workload(&wr_spec),
            &opts,
        );
        let wr_checker = match target {
            BuggyTarget::PostgresSer => Checker::ElleRwSer,
            BuggyTarget::MongoSi => Checker::ElleRwSi,
        };
        let outcome = verify(wr_checker, &wr_history);
        point.gen_wr += report.wall_time.as_secs_f64();
        point.verify_wr += outcome.duration.as_secs_f64();
        point.bugs_wr += u32::from(outcome.violated);
    }
    point
}

/// Figure 13: number of bug-detecting trials, MTC vs Elle (list-append and
/// rw-register) as the maximum transaction length varies, on the simulated
/// buggy PostgreSQL (SER) and MongoDB (SI).
pub fn fig13_effectiveness(sweep: &EffectivenessSweep) -> Vec<Table> {
    effectiveness_tables(sweep, false)
}

/// Figure 14: average end-to-end time (generation and verification) for the
/// same configurations as Figure 13.
pub fn fig14_elle_end_to_end(sweep: &EffectivenessSweep) -> Vec<Table> {
    effectiveness_tables(sweep, true)
}

fn effectiveness_tables(sweep: &EffectivenessSweep, timing: bool) -> Vec<Table> {
    let mut tables = Vec::new();
    for target in [BuggyTarget::PostgresSer, BuggyTarget::MongoSi] {
        let mut table = if timing {
            Table::new(
                format!("fig14_{}_end_to_end_time", target.label()),
                &[
                    "max_txn_len",
                    "mini_gen_s",
                    "mini_verify_s",
                    "append_gen_s",
                    "append_verify_s",
                    "wr_gen_s",
                    "wr_verify_s",
                ],
            )
        } else {
            Table::new(
                format!("fig13_{}_bugs_detected", target.label()),
                &[
                    "max_txn_len",
                    "mini_bugs",
                    "append_bugs",
                    "wr_bugs",
                    "trials",
                ],
            )
        };
        for &len in sweep.txn_len_points {
            let p = effectiveness_point(target, sweep, len);
            if timing {
                let avg = |total: f64| format!("{:.4}", total / sweep.trials as f64);
                table.push_row(vec![
                    len.to_string(),
                    avg(p.gen_mini),
                    avg(p.verify_mini),
                    avg(p.gen_append),
                    avg(p.verify_append),
                    avg(p.gen_wr),
                    avg(p.verify_wr),
                ]);
            } else {
                table.push_row(vec![
                    len.to_string(),
                    p.bugs_mini.to_string(),
                    p.bugs_append.to_string(),
                    p.bugs_wr.to_string(),
                    sweep.trials.to_string(),
                ]);
            }
        }
        tables.push(table);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_expected_matrix() {
        let t = table1_anomalies();
        assert_eq!(t.len(), 14);
        for row in &t.rows {
            assert_eq!(row[5], "true", "mismatch for anomaly {}", row[0]);
        }
    }

    #[test]
    fn fig7_quick_runs_and_has_expected_shape() {
        let tables = fig7_ser_verification(&VerificationSweep::quick());
        assert_eq!(tables.len(), 4);
        assert_eq!(tables[0].len(), 4); // four distributions
        assert_eq!(
            tables[1].len(),
            VerificationSweep::quick().object_points.len()
        );
    }

    #[test]
    fn fig8_quick_runs() {
        let tables = fig8_si_verification(&VerificationSweep::quick());
        assert_eq!(tables.len(), 4);
        for t in &tables {
            assert!(!t.is_empty());
        }
    }

    #[test]
    fn fig9_quick_runs() {
        let tables = fig9_sser_verification(&SserSweep::quick());
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 3);
    }

    #[test]
    fn fig10_and_fig17_quick_run() {
        let tables = fig10_end_to_end_ser(&EndToEndSweep::quick());
        assert_eq!(tables.len(), 3);
        let tables = fig17_end_to_end_si(&EndToEndSweep::quick());
        assert_eq!(tables.len(), 3);
    }

    #[test]
    fn fig11_quick_reports_rates_between_zero_and_one() {
        let tables = fig11_abort_rates(&AbortRateSweep::quick());
        for t in &tables {
            for row in &t.rows {
                for cell in &row[1..] {
                    let v: f64 = cell.parse().unwrap();
                    assert!((0.0..=1.0).contains(&v), "abort rate {v} out of range");
                }
            }
        }
    }

    #[test]
    fn backend_matrix_quick_holds_promises_and_streaming_agreement() {
        let t = backend_matrix(&BackendSweep::quick());
        assert_eq!(
            t.len(),
            8,
            "one row per fleet backend plus the two remote rows"
        );
        assert!(
            t.rows.iter().any(|r| r[0] == "net/sim-ser"),
            "remote promising engine row missing"
        );
        assert!(
            t.rows.iter().any(|r| r[0] == "net/weak-rc"),
            "remote weak engine row missing"
        );
        for row in &t.rows {
            assert_eq!(
                row[7], "true",
                "{}: streaming verdicts disagreed with batch",
                row[0]
            );
            if row[0] == "2pl" {
                // The pessimistic engine must be organically clean at every
                // level without a single fault injected.
                assert_eq!(row[4], "ok", "2pl SI");
                assert_eq!(row[5], "ok", "2pl SER");
                assert_eq!(row[6], "ok", "2pl SSER");
            }
        }
    }

    #[test]
    fn table2_quick_detects_every_injected_bug() {
        let t = table2_bug_rediscovery(&BugSweep::quick());
        assert_eq!(t.len(), 6);
        for row in &t.rows {
            assert_eq!(
                row[3], "true",
                "bug not detected for {} ({})",
                row[0], row[2]
            );
        }
    }

    #[test]
    fn fig13_quick_mtc_detects_bugs() {
        let sweep = EffectivenessSweep::quick();
        let tables = fig13_effectiveness(&sweep);
        assert_eq!(tables.len(), 2);
        for t in &tables {
            assert_eq!(t.len(), sweep.txn_len_points.len());
        }
        // The dirty-release fault of the MongoDB-like target is detected
        // deterministically (the published-then-aborted value is read by a
        // later transaction almost surely at this contention level).
        let mongo = &tables[1];
        let total: u32 = mongo
            .rows
            .iter()
            .map(|r| r[1].parse::<u32>().unwrap())
            .sum();
        assert!(total > 0, "MTC detected no bugs in {}", mongo.title);
    }

    #[test]
    fn counterexample_position_parses_the_smallest_txn_id() {
        assert_eq!(counterexample_position("T42 -WR(1)-> T7"), Some(7));
        assert_eq!(counterexample_position("no ids here"), None);
    }
}
