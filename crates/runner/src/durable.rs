//! Durable execution modes: record a live-verified run into an
//! [`mtc_store::MtcStore`], resume verification after a crash, and re-check
//! any logged session offline.
//!
//! Three modes compose into the crash-recovery workflow:
//!
//! * [`record_streaming`] — run a workload with live verification, with
//!   every recorded transaction written ahead to the store and the checker
//!   checkpointed periodically. A crash at any point (the CI smoke test
//!   SIGKILLs the recorder mid-stream) leaves a recoverable directory.
//! * [`resume_verification`] — pick the newest intact checkpoint, replay
//!   the logged tail into the resumed checker, and finish: the verdict
//!   (payload and all) is the one the uninterrupted run would have
//!   produced over the logged prefix.
//! * [`replay_verify`] — ignore checkpoints, rebuild the complete logged
//!   history and hand it to *any* [`Checker`] (batch, streaming, sharded or
//!   a baseline): logged sessions stay re-checkable offline, long after
//!   the database under test is gone.

use crate::exec::{verify, Checker, VerifyOutcome};
use mtc_core::{CheckError, GcPolicy, IncrementalChecker, IsolationLevel, Verdict};
use mtc_dbsim::{ClientOptions, DbBackend, ExecutionOptions, LiveVerifier};
use mtc_store::{recover, MtcStore, StoreError, StreamMeta};
use mtc_workload::Workload;
use std::path::Path;

/// Knobs of a recorded run.
#[derive(Clone, Copy, Debug)]
pub struct RecordOptions {
    /// Checkpoint the checker every this many recorded transactions.
    pub checkpoint_every: usize,
    /// Stop issuing transactions once a violation latches.
    pub stop_on_violation: bool,
    /// Optional settled-prefix GC policy for the live checker.
    pub gc: Option<GcPolicy>,
}

impl Default for RecordOptions {
    fn default() -> Self {
        RecordOptions {
            checkpoint_every: 512,
            stop_on_violation: false,
            gc: None,
        }
    }
}

/// Outcome of a recorded (durable) streaming run.
#[derive(Debug)]
pub struct RecordOutcome {
    /// The live verification verdict.
    pub verdict: Result<Verdict, CheckError>,
    /// Transactions consumed by the verifier.
    pub checked_txns: usize,
    /// Committed transactions executed.
    pub committed: usize,
    /// First persistence error, if the sink failed mid-run.
    pub sink_error: Option<String>,
}

/// Executes `workload` against `db` — any freshly built [`DbBackend`] —
/// with live verification, recording the stream durably into a new store at
/// `dir`.
pub fn record_streaming(
    dir: impl AsRef<Path>,
    db: &dyn DbBackend,
    workload: &Workload,
    client: &ClientOptions,
    level: IsolationLevel,
    opts: &RecordOptions,
) -> Result<RecordOutcome, StoreError> {
    let store = MtcStore::create(
        &dir,
        &StreamMeta {
            level,
            num_keys: workload.num_keys,
        },
    )?;
    let mut builder = LiveVerifier::builder(level, workload.num_keys)
        .stop_on_violation(opts.stop_on_violation)
        .store(store, opts.checkpoint_every);
    if let Some(policy) = opts.gc {
        builder = builder.gc(policy);
    }
    let verifier = builder.build();
    let (_history, report) = ExecutionOptions::threaded()
        .client(*client)
        .verifier(&verifier)
        .run(db, workload);
    let outcome = verifier.finish();
    Ok(RecordOutcome {
        verdict: outcome.verdict,
        checked_txns: outcome.checked_txns,
        committed: report.committed,
        sink_error: outcome.sink_error,
    })
}

/// Outcome of resuming a crashed (or merely stopped) verification session.
#[derive(Debug)]
pub struct ResumeOutcome {
    /// The final verdict over the logged stream.
    pub verdict: Result<Verdict, CheckError>,
    /// Intact transactions found in the log.
    pub logged_txns: usize,
    /// Log index verification resumed from (0 = replayed from scratch).
    pub resumed_from: u64,
    /// True iff a checkpoint was used (vs. a scratch replay).
    pub from_checkpoint: bool,
    /// True iff the log ended in a torn frame (crash signature).
    pub torn_tail: bool,
}

/// Recovers the store at `dir` and finishes verification: newest intact
/// checkpoint plus replay of the logged tail (scratch replay if no usable
/// checkpoint exists). The verdict matches what the uninterrupted run would
/// have reported over the logged prefix.
pub fn resume_verification(dir: impl AsRef<Path>) -> Result<ResumeOutcome, StoreError> {
    let recovery = recover(&dir)?;
    let from_checkpoint = recovery.snapshot.is_some();
    let mut checker = match recovery.snapshot.clone() {
        Some(snapshot) => IncrementalChecker::resume(snapshot),
        None => {
            IncrementalChecker::new(recovery.meta.level).with_init_keys(0..recovery.meta.num_keys)
        }
    };
    for txn in recovery.tail() {
        let _ = checker.push(txn.clone());
    }
    Ok(ResumeOutcome {
        verdict: checker.finish(),
        logged_txns: recovery.txns.len(),
        resumed_from: recovery.resume_from,
        from_checkpoint,
        torn_tail: recovery.torn_tail,
    })
}

/// Rebuilds the complete logged history from the store at `dir` and runs
/// `checker` on it — the offline replay-from-log path, usable with every
/// checker of the harness (MTC batch/streaming/sharded and the baselines).
pub fn replay_verify(dir: impl AsRef<Path>, checker: Checker) -> Result<VerifyOutcome, StoreError> {
    let recovery = recover(&dir)?;
    Ok(verify(checker, &recovery.to_history()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtc_dbsim::{Database, DbConfig, FaultKind, FaultSpec, IsolationMode};
    use mtc_workload::{generate_mt_workload, Distribution, MtWorkloadSpec};
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mtc_runner_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec(seed: u64) -> MtWorkloadSpec {
        MtWorkloadSpec {
            sessions: 3,
            txns_per_session: 60,
            num_keys: 8,
            distribution: Distribution::Uniform,
            read_only_fraction: 0.2,
            two_key_fraction: 0.5,
            seed,
        }
    }

    #[test]
    fn record_then_resume_and_replay_agree() {
        let dir = tmpdir("rrr");
        let workload = generate_mt_workload(&spec(23));
        let db = Database::new(DbConfig::correct(IsolationMode::Serializable, 8));
        let out = record_streaming(
            &dir,
            &db,
            &workload,
            &ClientOptions::default(),
            IsolationLevel::Serializability,
            &RecordOptions {
                checkpoint_every: 40,
                ..RecordOptions::default()
            },
        )
        .unwrap();
        assert!(out.sink_error.is_none());
        assert!(out.verdict.as_ref().unwrap().is_satisfied());

        let resumed = resume_verification(&dir).unwrap();
        assert_eq!(resumed.logged_txns, out.checked_txns);
        assert!(resumed.from_checkpoint, "checkpoints were written");
        assert!(resumed.resumed_from > 0);
        assert!(resumed.verdict.unwrap().is_satisfied());

        for checker in [
            Checker::MtcSer,
            Checker::MtcSerIncremental,
            Checker::MtcSerSharded,
        ] {
            let replayed = replay_verify(&dir, checker).unwrap();
            assert!(
                !replayed.violated,
                "{}: {}",
                checker.label(),
                replayed.detail
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulty_recorded_run_resumes_to_the_same_violation() {
        let dir = tmpdir("faulty");
        let workload = generate_mt_workload(&MtWorkloadSpec {
            num_keys: 4,
            txns_per_session: 120,
            ..spec(7)
        });
        let config = DbConfig::correct(IsolationMode::Snapshot, 4)
            .with_latency(
                std::time::Duration::from_micros(200),
                std::time::Duration::from_micros(100),
            )
            .with_faults(vec![FaultSpec::new(FaultKind::SkipWriteValidation, 0.6)], 7);
        let out = record_streaming(
            &dir,
            &Database::new(config),
            &workload,
            &ClientOptions::default(),
            IsolationLevel::SnapshotIsolation,
            &RecordOptions {
                checkpoint_every: 30,
                stop_on_violation: true,
                ..RecordOptions::default()
            },
        )
        .unwrap();
        let live = out.verdict.unwrap();
        assert!(live.is_violated());

        let resumed = resume_verification(&dir).unwrap();
        assert_eq!(resumed.verdict.unwrap(), live);
        let replayed = replay_verify(&dir, Checker::MtcSiIncremental).unwrap();
        assert!(replayed.violated, "{}", replayed.detail);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
