//! Tabular experiment reports.
//!
//! Every experiment produces a [`Table`]: a titled grid of columns and rows
//! that can be printed as aligned text (for the terminal), as TSV (for
//! re-plotting the paper's figures) or written to a CSV file under
//! `target/experiments/`.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// A single experiment result table.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table title (e.g. `"fig7a_ser_verification_by_distribution"`).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows; each row has one cell per column.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and columns.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Panics if the arity does not match the columns.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row arity does not match table {:?}",
            self.title
        );
        self.rows.push(row);
    }

    /// Convenience: appends a row of displayable values.
    pub fn push<T: ToString>(&mut self, row: &[T]) {
        self.push_row(row.iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as tab-separated values (header included).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = writeln!(out, "{}", self.columns.join("\t"));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join("\t"));
        }
        out
    }

    /// Renders the table with padded, aligned columns for terminal output.
    pub fn to_aligned(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.columns, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Writes the table as `<dir>/<title>.csv` and returns the path.
    pub fn write_csv(&self, dir: impl AsRef<Path>) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir.as_ref())?;
        let path = dir.as_ref().join(format!("{}.csv", self.title));
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.columns.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        fs::write(&path, out)?;
        Ok(path)
    }
}

/// Formats a duration in seconds with three significant decimals (the unit
/// used on the paper's time axes).
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

/// Formats a byte count as mebibytes (the unit of the paper's memory axes).
pub fn mib(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn tsv_and_aligned_rendering() {
        let mut t = Table::new("demo", &["x", "time_s"]);
        t.push(&["1", "0.5"]);
        t.push(&["20", "1.25"]);
        let tsv = t.to_tsv();
        assert!(tsv.starts_with("# demo\n"));
        assert!(tsv.contains("x\ttime_s"));
        assert!(tsv.contains("20\t1.25"));
        let aligned = t.to_aligned();
        assert!(aligned.contains("== demo =="));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(&["only one"]);
    }

    #[test]
    fn csv_writing() {
        let mut t = Table::new("csv_demo", &["a", "b"]);
        t.push(&[1, 2]);
        let dir = std::env::temp_dir().join("mtc_runner_report_test");
        let path = t.write_csv(&dir).unwrap();
        let content = fs::read_to_string(&path).unwrap();
        assert!(content.contains("a,b"));
        assert!(content.contains("1,2"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.5000");
        assert_eq!(mib(1024 * 1024), "1.00");
    }
}
