//! Elle-style workloads: list-append and read-write registers
//! (Section V-F2 of the paper).
//!
//! The effectiveness comparison of Figures 13 and 14 tests databases with the
//! two Jepsen/Elle workload families:
//!
//! * **list append** — every object holds a list; transactions either append
//!   a unique element to a list or read the whole list. Reading a list of
//!   `n` elements reveals the version order of the corresponding `n`
//!   appends, which is what makes Elle's write-write inference possible.
//! * **read-write registers** — plain reads and *blind* writes of registers
//!   (no RMW pattern), with a configurable maximum transaction length.
//!
//! Templates are generated here; `mtc-dbsim` executes them (registers against
//! the versioned store, appends against the list store) and
//! `mtc-baselines::elle` infers dependencies from the resulting histories.

use crate::dist::{Distribution, KeySampler};
use mtc_history::Key;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The two Elle workload families.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ElleWorkloadKind {
    /// Append-to-list plus whole-list reads.
    ListAppend,
    /// Blind writes and reads of registers.
    ReadWriteRegister,
}

impl ElleWorkloadKind {
    /// Label used in reports ("append" / "wr").
    pub fn label(&self) -> &'static str {
        match self {
            ElleWorkloadKind::ListAppend => "append",
            ElleWorkloadKind::ReadWriteRegister => "wr",
        }
    }
}

/// One operation of an Elle-style transaction template.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ElleOpTemplate {
    /// Append a fresh unique element to the list at `key`.
    Append(Key),
    /// Read the whole list at `key`.
    ReadList(Key),
    /// Blind-write a fresh unique value to the register at `key`.
    WriteRegister(Key),
    /// Read the register at `key`.
    ReadRegister(Key),
}

impl ElleOpTemplate {
    /// The key the operation touches.
    pub fn key(&self) -> Key {
        match *self {
            ElleOpTemplate::Append(k)
            | ElleOpTemplate::ReadList(k)
            | ElleOpTemplate::WriteRegister(k)
            | ElleOpTemplate::ReadRegister(k) => k,
        }
    }

    /// True for mutating operations.
    pub fn is_mutation(&self) -> bool {
        matches!(
            self,
            ElleOpTemplate::Append(_) | ElleOpTemplate::WriteRegister(_)
        )
    }
}

/// A transaction template of an Elle workload.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ElleTxnTemplate {
    /// Operations in program order.
    pub ops: Vec<ElleOpTemplate>,
}

/// A complete Elle-style workload.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ElleWorkload {
    /// Which family the workload belongs to.
    pub kind: ElleWorkloadKind,
    /// Per-session transaction templates.
    pub sessions: Vec<Vec<ElleTxnTemplate>>,
    /// Number of objects.
    pub num_keys: u64,
    /// Maximum operations per transaction used during generation.
    pub max_txn_len: u32,
}

impl ElleWorkload {
    /// Total number of transaction templates.
    pub fn txn_count(&self) -> usize {
        self.sessions.iter().map(Vec::len).sum()
    }
}

/// Parameters of the Elle workload generators.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ElleWorkloadSpec {
    /// Which family to generate.
    pub kind: ElleWorkloadKind,
    /// Number of client sessions.
    pub sessions: u32,
    /// Transactions per session.
    pub txns_per_session: u32,
    /// Maximum operations per transaction (the x-axis of Figure 13).
    pub max_txn_len: u32,
    /// Number of objects (the paper uses 10 to increase contention).
    pub num_keys: u64,
    /// Object-access distribution (the paper uses "exponential").
    pub distribution: Distribution,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ElleWorkloadSpec {
    fn default() -> Self {
        ElleWorkloadSpec {
            kind: ElleWorkloadKind::ListAppend,
            sessions: 10,
            txns_per_session: 300,
            max_txn_len: 4,
            num_keys: 10,
            distribution: Distribution::Exponential { lambda: 10.0 },
            seed: 0x454c4c45, // "ELLE"
        }
    }
}

/// Generates an Elle-style workload.
pub fn generate_elle_workload(spec: &ElleWorkloadSpec) -> ElleWorkload {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let sampler = KeySampler::new(spec.num_keys, spec.distribution);
    let mut sessions = Vec::with_capacity(spec.sessions as usize);
    for _ in 0..spec.sessions {
        let mut txns = Vec::with_capacity(spec.txns_per_session as usize);
        for _ in 0..spec.txns_per_session {
            let len = rng.gen_range(1..=spec.max_txn_len.max(1)) as usize;
            let mut ops = Vec::with_capacity(len);
            for _ in 0..len {
                let key = Key(sampler.sample(&mut rng));
                let mutate = rng.gen_bool(0.5);
                let op = match (spec.kind, mutate) {
                    (ElleWorkloadKind::ListAppend, true) => ElleOpTemplate::Append(key),
                    (ElleWorkloadKind::ListAppend, false) => ElleOpTemplate::ReadList(key),
                    (ElleWorkloadKind::ReadWriteRegister, true) => {
                        ElleOpTemplate::WriteRegister(key)
                    }
                    (ElleWorkloadKind::ReadWriteRegister, false) => {
                        ElleOpTemplate::ReadRegister(key)
                    }
                };
                ops.push(op);
            }
            txns.push(ElleTxnTemplate { ops });
        }
        sessions.push(txns);
    }
    ElleWorkload {
        kind: spec.kind,
        sessions,
        num_keys: spec.num_keys,
        max_txn_len: spec.max_txn_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_workload_contains_only_list_ops() {
        let w = generate_elle_workload(&ElleWorkloadSpec::default());
        assert_eq!(w.kind, ElleWorkloadKind::ListAppend);
        assert_eq!(w.txn_count(), 3000);
        for t in w.sessions.iter().flatten() {
            assert!(!t.ops.is_empty());
            assert!(t.ops.len() <= 4);
            for op in &t.ops {
                assert!(matches!(
                    op,
                    ElleOpTemplate::Append(_) | ElleOpTemplate::ReadList(_)
                ));
            }
        }
    }

    #[test]
    fn register_workload_contains_only_register_ops() {
        let spec = ElleWorkloadSpec {
            kind: ElleWorkloadKind::ReadWriteRegister,
            max_txn_len: 8,
            ..ElleWorkloadSpec::default()
        };
        let w = generate_elle_workload(&spec);
        for t in w.sessions.iter().flatten() {
            assert!(t.ops.len() <= 8);
            for op in &t.ops {
                assert!(matches!(
                    op,
                    ElleOpTemplate::WriteRegister(_) | ElleOpTemplate::ReadRegister(_)
                ));
            }
        }
    }

    #[test]
    fn keys_respect_the_key_space() {
        let w = generate_elle_workload(&ElleWorkloadSpec::default());
        for t in w.sessions.iter().flatten() {
            for op in &t.ops {
                assert!(op.key().raw() < 10);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = ElleWorkloadSpec::default();
        assert_eq!(generate_elle_workload(&spec), generate_elle_workload(&spec));
    }

    #[test]
    fn labels() {
        assert_eq!(ElleWorkloadKind::ListAppend.label(), "append");
        assert_eq!(ElleWorkloadKind::ReadWriteRegister.label(), "wr");
    }

    #[test]
    fn mutation_detection() {
        assert!(ElleOpTemplate::Append(Key(1)).is_mutation());
        assert!(ElleOpTemplate::WriteRegister(Key(1)).is_mutation());
        assert!(!ElleOpTemplate::ReadList(Key(1)).is_mutation());
        assert!(!ElleOpTemplate::ReadRegister(Key(1)).is_mutation());
    }
}
